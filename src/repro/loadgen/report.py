"""Saturation search and the ``BENCH_load.json`` artifact.

The knee of an open-loop system is where offered and achieved rate part
ways: below it the system completes what arrives (achieved tracks
offered, latency is flat-ish); above it the queue grows without bound
and tail latency is a function of run length, not the system.  The
search steps the offered rate geometrically and declares saturation at
the first step that breaks any of

* the declared SLO (when one is given),
* the achieved/offered ratio floor (default 95%), or
* the ``pool_saturation`` early-warning budget (default: any event).

``BENCH_load.json`` is the standing artifact all future perf PRs gate
against: per-op-kind p50/p95/p99 at the target rate, achieved vs.
offered, error counts, the saturation section, and the workload's trace
digest (which pins *what* was measured).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.loadgen.driver import LoadResult
from repro.loadgen.slo import SLO, SLOOutcome
from repro.loadgen.workload import OP_KINDS, Workload
from repro.util.tables import render_table

SCHEMA = "repro.loadgen/v1"

#: Achieved/offered floor below which a step counts as saturated.
ACHIEVED_RATIO_FLOOR = 0.95


@dataclass(frozen=True)
class SaturationStep:
    rate: float
    result: LoadResult
    slo_outcome: SLOOutcome | None
    ok: bool
    reason: str  # "" when ok

    def to_dict(self) -> dict:
        return {
            "rate": self.rate,
            "achieved_rate": round(self.result.achieved_rate, 2),
            "achieved_ratio": round(self.result.achieved_ratio, 4),
            "p99_ms": round(self.result.percentile(99.0) * 1e3, 3),
            "errors": self.result.error_total,
            "pool_saturation_events": self.result.pool_saturation_count,
            "ok": self.ok,
            "reason": self.reason,
        }


@dataclass
class SaturationReport:
    """Outcome of one stepped rate ramp."""

    knee_rate: float | None  # highest rate that still passed
    breaking_rate: float | None  # first rate that failed (None: none did)
    reason: str  # why the breaking rate failed ("" if search exhausted)
    steps: list[SaturationStep] = field(default_factory=list)

    @property
    def saturated(self) -> bool:
        return self.breaking_rate is not None

    def to_dict(self) -> dict:
        return {
            "knee_rate": self.knee_rate,
            "breaking_rate": self.breaking_rate,
            "reason": self.reason,
            "steps": [step.to_dict() for step in self.steps],
        }


def saturation_search(
    run_at: Callable[[float], LoadResult],
    *,
    start_rate: float,
    growth: float = 1.6,
    max_steps: int = 8,
    slo: SLO | None = None,
    achieved_ratio_floor: float = ACHIEVED_RATIO_FLOOR,
    pool_saturation_budget: int = 0,
) -> SaturationReport:
    """Step the offered rate up until something gives.

    *run_at* performs one run at the given rate and returns its
    :class:`LoadResult` -- the caller closes over the target, workload
    and per-step duration.  Steps grow geometrically from *start_rate*
    by *growth*; the ramp stops at the first failing step (the knee is
    the previous one) or after *max_steps* all-passing steps.
    """
    if start_rate <= 0:
        raise ValueError(f"start_rate must be > 0, got {start_rate}")
    if growth <= 1.0:
        raise ValueError(f"growth must be > 1, got {growth}")
    if max_steps < 1:
        raise ValueError(f"max_steps must be >= 1, got {max_steps}")

    steps: list[SaturationStep] = []
    knee: float | None = None
    rate = float(start_rate)
    for _ in range(max_steps):
        result = run_at(rate)
        outcome = slo.evaluate(result) if slo is not None else None
        reasons = []
        if result.achieved_ratio < achieved_ratio_floor:
            reasons.append(
                f"achieved {result.achieved_ratio:.1%} of offered "
                f"(< {achieved_ratio_floor:.0%})"
            )
        if result.pool_saturation_count > pool_saturation_budget:
            reasons.append(
                f"{result.pool_saturation_count} pool_saturation events "
                f"(> {pool_saturation_budget})"
            )
        if outcome is not None and not outcome.ok:
            reasons.append(outcome.summary())
        ok = not reasons
        step = SaturationStep(
            rate=rate, result=result, slo_outcome=outcome,
            ok=ok, reason="; ".join(reasons),
        )
        steps.append(step)
        if not ok:
            return SaturationReport(
                knee_rate=knee, breaking_rate=rate,
                reason=step.reason, steps=steps,
            )
        knee = rate
        rate = rate * growth
    return SaturationReport(
        knee_rate=knee, breaking_rate=None, reason="", steps=steps,
    )


# ---------------------------------------------------------------------------
# artifact
# ---------------------------------------------------------------------------


def _op_summary(result: LoadResult, kind: str) -> dict:
    hist = result.histograms[kind]
    count = hist.count
    return {
        "count": count,
        "errors": result.errors.get(kind, 0),
        "mean_ms": round(hist.sum / count * 1e3, 3) if count else 0.0,
        "p50_ms": round(hist.percentile(50.0) * 1e3, 3) if count else 0.0,
        "p95_ms": round(hist.percentile(95.0) * 1e3, 3) if count else 0.0,
        "p99_ms": round(hist.percentile(99.0) * 1e3, 3) if count else 0.0,
    }


def build_report(
    result: LoadResult,
    workload: Workload,
    *,
    target: str,
    workers: int,
    arrival: str = "uniform",
    slo_outcome: SLOOutcome | None = None,
    saturation: SaturationReport | None = None,
    smoke: bool = False,
) -> dict:
    """Assemble the BENCH_load.json document for one measured run."""
    combined = result.combined()
    ops = {
        kind: _op_summary(result, kind)
        for kind in OP_KINDS
        if result.counts.get(kind) or result.errors.get(kind)
    }
    return {
        "schema": SCHEMA,
        "config": {
            "target": target,
            "rate": result.offered_rate,
            "duration": result.duration,
            "workers": workers,
            "arrival": arrival,
            "seed": workload.seed,
            "workload": workload.spec.to_dict(),
            "trace_digest": workload.trace_digest(),
            "smoke": smoke,
        },
        "totals": {
            "dispatched": result.dispatched,
            "completed": result.completed,
            "errors": result.error_total,
            "span_s": round(result.span, 4),
            "offered_rate": round(result.offered_rate, 2),
            "achieved_rate": round(result.achieved_rate, 2),
            "achieved_ratio": round(result.achieved_ratio, 4),
            "p50_ms": round(combined.percentile(50.0) * 1e3, 3),
            "p95_ms": round(combined.percentile(95.0) * 1e3, 3),
            "p99_ms": round(combined.percentile(99.0) * 1e3, 3),
        },
        "ops": ops,
        "slo": slo_outcome.to_dict() if slo_outcome is not None else None,
        "saturation": {
            "pool_saturation_events": result.pool_saturation_count,
            "events": dict(result.saturation_events),
            "counters": {
                name: value
                for name, value in result.saturation_counters.items()
                if value
            },
            "search": saturation.to_dict() if saturation is not None else None,
        },
    }


#: Required key paths, the schema contract ``validate_report`` enforces
#: (the CI smoke profile gates on shape, never on absolute numbers).
_REQUIRED_TOTALS = (
    "dispatched", "completed", "errors", "offered_rate", "achieved_rate",
    "achieved_ratio", "p50_ms", "p95_ms", "p99_ms",
)
_REQUIRED_OP_KEYS = (
    "count", "errors", "mean_ms", "p50_ms", "p95_ms", "p99_ms",
)


def validate_report(report: dict) -> list[str]:
    """Structural check of a BENCH_load.json document.

    Returns a list of problems (empty == valid); kept dependency-free so
    the CI smoke job can call it against the published artifact.
    """
    problems: list[str] = []
    if report.get("schema") != SCHEMA:
        problems.append(
            f"schema is {report.get('schema')!r}, expected {SCHEMA!r}"
        )
    config = report.get("config")
    if not isinstance(config, dict):
        problems.append("missing config section")
    else:
        for key in ("target", "rate", "duration", "seed", "workload",
                    "trace_digest"):
            if key not in config:
                problems.append(f"config.{key} missing")
    totals = report.get("totals")
    if not isinstance(totals, dict):
        problems.append("missing totals section")
    else:
        for key in _REQUIRED_TOTALS:
            if key not in totals:
                problems.append(f"totals.{key} missing")
    ops = report.get("ops")
    if not isinstance(ops, dict) or not ops:
        problems.append("ops section missing or empty")
    else:
        for kind, summary in ops.items():
            if kind not in OP_KINDS:
                problems.append(f"ops has unknown kind {kind!r}")
                continue
            for key in _REQUIRED_OP_KEYS:
                if key not in summary:
                    problems.append(f"ops.{kind}.{key} missing")
    saturation = report.get("saturation")
    if not isinstance(saturation, dict):
        problems.append("missing saturation section")
    elif "pool_saturation_events" not in saturation:
        problems.append("saturation.pool_saturation_events missing")
    return problems


def render_report(report: dict) -> str:
    """Human-readable tables for the CLI and bench output."""
    totals = report["totals"]
    config = report["config"]
    rows = []
    for kind in OP_KINDS:
        summary = report["ops"].get(kind)
        if summary is None:
            continue
        rows.append([
            kind,
            summary["count"],
            summary["errors"],
            f"{summary['mean_ms']:.2f}",
            f"{summary['p50_ms']:.2f}",
            f"{summary['p95_ms']:.2f}",
            f"{summary['p99_ms']:.2f}",
        ])
    rows.append([
        "all", totals["completed"], totals["errors"], "",
        f"{totals['p50_ms']:.2f}",
        f"{totals['p95_ms']:.2f}",
        f"{totals['p99_ms']:.2f}",
    ])
    lines = [
        render_table(
            ["op", "count", "errors", "mean ms", "p50 ms", "p95 ms",
             "p99 ms"],
            rows,
            title=(
                f"LOAD: {config['target']} @ {config['rate']:g} ops/s "
                f"for {config['duration']:g}s (seed {config['seed']})"
            ),
        ),
        (
            f"offered {totals['offered_rate']:g} ops/s, achieved "
            f"{totals['achieved_rate']:g} ops/s "
            f"({totals['achieved_ratio']:.1%})"
        ),
    ]
    slo = report.get("slo")
    if slo is not None:
        verdict = "OK" if slo["ok"] else "VIOLATED"
        lines.append(
            f"SLO {slo['expr']}: measured {slo['measured_ms']:.1f}ms "
            f"-> {verdict}"
        )
    saturation = report["saturation"]
    lines.append(
        f"saturation: {saturation['pool_saturation_events']} "
        f"pool_saturation event(s)"
        + (
            "; counters " + ", ".join(
                f"{k}={v:g}" for k, v in saturation["counters"].items()
            )
            if saturation.get("counters")
            else ""
        )
    )
    search = saturation.get("search")
    if search is not None:
        step_rows = [
            [
                f"{s['rate']:g}",
                f"{s['achieved_rate']:g}",
                f"{s['achieved_ratio']:.1%}",
                f"{s['p99_ms']:.1f}",
                s["pool_saturation_events"],
                "pass" if s["ok"] else "FAIL",
            ]
            for s in search["steps"]
        ]
        lines.append(
            render_table(
                ["rate", "achieved", "ratio", "p99 ms", "pool sat", "verdict"],
                step_rows,
                title="Saturation search",
            )
        )
        if search["breaking_rate"] is not None:
            lines.append(
                f"saturation point: knee at {search['knee_rate']} ops/s, "
                f"breaks at {search['breaking_rate']:g} ops/s "
                f"({search['reason']})"
            )
        else:
            lines.append(
                f"no saturation found up to {search['steps'][-1]['rate']:g} "
                f"ops/s (knee >= {search['knee_rate']:g})"
            )
    return "\n".join(lines)
