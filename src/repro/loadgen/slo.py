"""Declarative latency SLOs: ``[op:]pQQ<THRESHOLD[@RATE]``.

An SLO is a falsifiable sentence about a run: "the 99th percentile of
(get) latency stays under 250 ms at 200 ops/s".  The grammar mirrors
how operators write them::

    p99<250ms            # all ops combined
    get:p95<40ms         # one op kind
    p99<1.5s@200         # with the rate it is promised at

The rate clause is advisory for a single run (the driver already fixes
the offered rate) but anchors the saturation search: the knee is the
highest stepped rate at which the SLO still holds.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.loadgen.workload import OP_KINDS

_SLO_RE = re.compile(
    r"^(?:(?P<op>[a-z]+):)?"
    r"p(?P<q>\d+(?:\.\d+)?)"
    r"\s*<\s*"
    r"(?P<value>\d+(?:\.\d+)?)\s*(?P<unit>ms|s|us)"
    r"(?:\s*@\s*(?P<rate>\d+(?:\.\d+)?))?$"
)

_UNIT_S = {"us": 1e-6, "ms": 1e-3, "s": 1.0}


@dataclass(frozen=True)
class SLO:
    """One latency objective; ``op=None`` means all kinds combined."""

    quantile: float  # e.g. 99.0
    threshold_s: float
    rate: float | None = None
    op: str | None = None

    def __post_init__(self) -> None:
        if not 0.0 < self.quantile <= 100.0:
            raise ValueError(
                f"quantile must be in (0, 100], got {self.quantile}"
            )
        if self.threshold_s <= 0:
            raise ValueError(
                f"threshold must be positive, got {self.threshold_s}"
            )
        if self.op is not None and self.op not in OP_KINDS:
            raise ValueError(
                f"unknown op kind {self.op!r} (expected one of {OP_KINDS})"
            )

    @classmethod
    def parse(cls, text: str) -> "SLO":
        match = _SLO_RE.match(text.strip().lower())
        if match is None:
            raise ValueError(
                f"cannot parse SLO {text!r} "
                "(expected e.g. 'p99<250ms', 'get:p95<40ms', 'p99<1s@200')"
            )
        return cls(
            quantile=float(match.group("q")),
            threshold_s=(
                float(match.group("value")) * _UNIT_S[match.group("unit")]
            ),
            rate=float(match.group("rate")) if match.group("rate") else None,
            op=match.group("op"),
        )

    def expr(self) -> str:
        """Canonical text form (round-trips through :meth:`parse`)."""
        prefix = f"{self.op}:" if self.op else ""
        quantile = (
            f"{self.quantile:g}"
        )
        threshold = f"{self.threshold_s * 1e3:g}ms"
        suffix = f"@{self.rate:g}" if self.rate is not None else ""
        return f"{prefix}p{quantile}<{threshold}{suffix}"

    def evaluate(self, result) -> "SLOOutcome":
        """Judge one :class:`~repro.loadgen.driver.LoadResult`."""
        measured = result.percentile(self.quantile, kind=self.op)
        return SLOOutcome(
            slo=self,
            measured_s=measured,
            ok=measured < self.threshold_s,
        )


@dataclass(frozen=True)
class SLOOutcome:
    slo: SLO
    measured_s: float
    ok: bool

    def to_dict(self) -> dict:
        return {
            "expr": self.slo.expr(),
            "quantile": self.slo.quantile,
            "op": self.slo.op,
            "threshold_ms": round(self.slo.threshold_s * 1e3, 3),
            "measured_ms": round(self.measured_s * 1e3, 3),
            "rate": self.slo.rate,
            "ok": self.ok,
        }

    def summary(self) -> str:
        verdict = "OK" if self.ok else "VIOLATED"
        return (
            f"SLO {self.slo.expr()}: measured "
            f"{self.measured_s * 1e3:.1f}ms -> {verdict}"
        )
