"""Open-loop load driver: latency measured from *intended* send time.

The classic closed-loop bench (issue, wait, issue again) commits
coordinated omission: when the system stalls, the client stops offering
load, so the stall shows up as *fewer samples* instead of *slow
samples* and the percentiles lie.  This driver is open-loop:

* the full arrival schedule (seeded Poisson process at the target rate)
  is fixed before the run starts;
* a dispatcher thread releases each operation at its intended time onto
  an **unbounded** per-worker queue -- it never blocks on the system
  under test, so offered load keeps arriving during a stall;
* each operation's latency is ``completion - intended_send``, which
  charges queueing delay (the open-loop signature of saturation) to the
  operation that suffered it.

Operations are routed to workers by tenant hash, so each tenant's
stream stays ordered (a get never races its own file's delete) while
tenants run concurrently -- the session model real multi-tenant traffic
follows.  Each worker records into private
:class:`~repro.obs.metrics.LatencyHistogram` instances (no shared lock
on the hot path) which are merged when the run drains.
"""

from __future__ import annotations

import queue
import threading
import time
import zlib
from dataclasses import dataclass, field

from repro.loadgen.workload import OP_KINDS, Operation, Workload
from repro.obs.events import EventLog, get_events
from repro.obs.metrics import LatencyHistogram, MetricsRegistry
from repro.util.rng import derive_rng

#: Scheduling lead: the dispatcher anchors t0 this far in the future so
#: worker threads are parked on their queues before the first arrival.
_START_LEAD_S = 0.05

#: Counter families whose growth during a run lands in the saturation
#: section (overload shed on either side of the wire, burned retries).
SATURATION_COUNTERS = (
    "net_server_shed_total",
    "net_client_shed_total",
    "gateway_shed_total",
    "retry_budget_exhausted_total",
)


class LoadTarget:
    """Minimal surface the driver drives: apply one traced operation.

    Concrete targets translate the four op kinds onto a specific stack
    (in-process distributor, fleet gateway object, gateway wire client).
    ``prepare``/``close`` bracket a run; both default to no-ops.
    """

    name = "target"

    def prepare(self, workload: Workload) -> None:
        """Register the workload's tenants (before the setup puts)."""

    def apply(self, op: Operation) -> None:
        raise NotImplementedError

    def close(self) -> None:
        pass


class DistributorTarget(LoadTarget):
    """Drive a :class:`~repro.core.distributor.CloudDataDistributor`."""

    name = "distributor"

    def __init__(self, distributor, password: str = "load-pw") -> None:
        self.distributor = distributor
        self.password = password
        self.level = None  # pinned by prepare() from the workload spec

    def prepare(self, workload: Workload) -> None:
        self.level = workload.spec.privacy_level
        for tenant in workload.tenants:
            self.distributor.register_client(tenant)
            self.distributor.add_password(tenant, self.password, self.level)

    def apply(self, op: Operation) -> None:
        d, pw = self.distributor, self.password
        if op.kind == "put":
            d.upload_file(
                op.tenant, pw, op.filename, op.payload(), self.level
            )
        elif op.kind == "get":
            d.get_file(op.tenant, pw, op.filename)
        elif op.kind == "update":
            d.update_chunk(op.tenant, pw, op.filename, op.serial, op.payload())
        elif op.kind == "delete":
            d.remove_file(op.tenant, pw, op.filename)
        else:
            raise ValueError(f"unknown op kind {op.kind!r}")


class GatewayTarget(LoadTarget):
    """Drive a :class:`~repro.fleet.gateway.FleetGateway` in-process."""

    name = "gateway"

    def __init__(self, gateway, password: str = "load-pw") -> None:
        self.gateway = gateway
        self.password = password
        self.level = None

    def prepare(self, workload: Workload) -> None:
        self.level = workload.spec.privacy_level
        for tenant in workload.tenants:
            self.gateway.register_tenant(tenant)
            self.gateway.add_tenant_password(tenant, self.password, self.level)

    def apply(self, op: Operation) -> None:
        g, pw = self.gateway, self.password
        if op.kind == "put":
            g.upload_file(
                op.tenant, pw, op.filename, op.payload(), self.level
            )
        elif op.kind == "get":
            g.get_file(op.tenant, pw, op.filename)
        elif op.kind == "update":
            g.update_chunk(op.tenant, pw, op.filename, op.serial, op.payload())
        elif op.kind == "delete":
            g.remove_file(op.tenant, pw, op.filename)
        else:
            raise ValueError(f"unknown op kind {op.kind!r}")


class GatewayClientTarget(LoadTarget):
    """Drive a gateway over its JSON-lines wire, one client per worker.

    :class:`~repro.net.gateway.GatewayClient` is a blocking
    one-connection client, so each driver worker gets its own (created
    lazily, thread-local) -- the gateway server sees N concurrent tenant
    connections, admission control included.  Tenant registration is an
    admin operation not exposed on the wire; ``prepare`` takes the
    underlying gateway object.
    """

    name = "gateway-wire"

    def __init__(
        self, host: str, port: int, gateway=None, password: str = "load-pw",
        request_timeout: float = 30.0,
    ) -> None:
        self.host = host
        self.port = port
        self.gateway = gateway
        self.password = password
        self.level = None
        self.request_timeout = request_timeout
        self._local = threading.local()
        self._clients: list = []
        self._clients_lock = threading.Lock()

    def prepare(self, workload: Workload) -> None:
        self.level = workload.spec.privacy_level
        if self.gateway is None:
            return
        for tenant in workload.tenants:
            self.gateway.register_tenant(tenant)
            self.gateway.add_tenant_password(tenant, self.password, self.level)

    def _client(self):
        client = getattr(self._local, "client", None)
        if client is None:
            from repro.net.gateway import GatewayClient

            client = GatewayClient(
                self.host, self.port, request_timeout=self.request_timeout
            )
            self._local.client = client
            with self._clients_lock:
                self._clients.append(client)
        return client

    def apply(self, op: Operation) -> None:
        client, pw = self._client(), self.password
        if op.kind == "put":
            client.upload_file(
                op.tenant, pw, op.filename, op.payload(), self.level
            )
        elif op.kind == "get":
            client.get_file(op.tenant, pw, op.filename)
        elif op.kind == "update":
            client.update_chunk(
                op.tenant, pw, op.filename, op.serial, op.payload()
            )
        elif op.kind == "delete":
            client.remove_file(op.tenant, pw, op.filename)
        else:
            raise ValueError(f"unknown op kind {op.kind!r}")

    def close(self) -> None:
        with self._clients_lock:
            clients, self._clients = self._clients, []
        for client in clients:
            client.close()


class ThrottledTarget(LoadTarget):
    """Wrap a target with a fixed per-operation service floor.

    With *delay* seconds of sleep per op and W workers the wrapped
    target's capacity is exactly ``W / delay`` ops/s -- a known knee the
    saturation-search tests (and the smoke profile) can assert against
    without depending on machine speed.
    """

    name = "throttled"

    def __init__(self, inner: LoadTarget, delay: float) -> None:
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        self.inner = inner
        self.delay = delay
        self.name = f"throttled({inner.name})"

    def prepare(self, workload: Workload) -> None:
        self.inner.prepare(workload)

    def apply(self, op: Operation) -> None:
        if self.delay:
            time.sleep(self.delay)
        self.inner.apply(op)

    def close(self) -> None:
        self.inner.close()


@dataclass(frozen=True)
class DriverConfig:
    """One run's offered load shape.

    ``arrival`` picks the schedule: ``"uniform"`` spaces arrivals exactly
    ``1/rate`` apart (the offered rate is exact -- what the regression
    gate wants), ``"poisson"`` draws seeded exponential gaps (bursty,
    realistic -- what saturation behaves like in the field).
    """

    rate: float  # target arrival rate, ops/s
    duration: float  # schedule length, seconds
    workers: int = 8
    seed: int = 0  # arrival-process seed (trace has its own)
    arrival: str = "uniform"

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"rate must be > 0, got {self.rate}")
        if self.duration <= 0:
            raise ValueError(f"duration must be > 0, got {self.duration}")
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.arrival not in ("uniform", "poisson"):
            raise ValueError(
                f"arrival must be 'uniform' or 'poisson', got {self.arrival!r}"
            )


@dataclass
class LoadResult:
    """Aggregated outcome of one open-loop run."""

    offered_rate: float
    duration: float  # scheduled seconds
    span: float  # first intended send -> last completion
    dispatched: int
    completed: int
    errors: dict[str, int]
    counts: dict[str, int]
    histograms: dict[str, LatencyHistogram]
    saturation_events: dict[str, int] = field(default_factory=dict)
    saturation_counters: dict[str, float] = field(default_factory=dict)

    @property
    def achieved_rate(self) -> float:
        return self.completed / self.span if self.span > 0 else 0.0

    @property
    def achieved_ratio(self) -> float:
        return self.achieved_rate / self.offered_rate if self.offered_rate else 0.0

    @property
    def error_total(self) -> int:
        return sum(self.errors.values())

    def combined(self) -> LatencyHistogram:
        """All op kinds merged into one histogram."""
        out = LatencyHistogram()
        for hist in self.histograms.values():
            out.merge_from(hist)
        return out

    def percentile(self, q: float, kind: str | None = None) -> float:
        hist = self.combined() if kind is None else self.histograms[kind]
        return hist.percentile(q)

    @property
    def pool_saturation_count(self) -> int:
        return self.saturation_events.get("pool_saturation", 0)


class _Worker(threading.Thread):
    """Drains one queue; keeps private per-kind histograms and counts."""

    def __init__(self, target: LoadTarget, inbox: "queue.Queue") -> None:
        super().__init__(daemon=True)
        self.target = target
        self.inbox = inbox
        self.hists = {kind: LatencyHistogram() for kind in OP_KINDS}
        self.errors = {kind: 0 for kind in OP_KINDS}
        self.counts = {kind: 0 for kind in OP_KINDS}
        self.last_completion = 0.0

    def run(self) -> None:
        while True:
            item = self.inbox.get()
            if item is None:
                return
            intended, op = item
            try:
                self.target.apply(op)
            except Exception:
                # A failed request still consumed the user's time; its
                # latency counts, and the failure is tallied separately.
                self.errors[op.kind] += 1
            done = time.perf_counter()
            self.hists[op.kind].observe(max(0.0, done - intended))
            self.counts[op.kind] += 1
            self.last_completion = max(self.last_completion, done)


def run_setup(target: LoadTarget, workload: Workload) -> None:
    """Register tenants and store the initial file population (untimed)."""
    target.prepare(workload)
    for op in workload.setup:
        target.apply(op)


def run_load(
    target: LoadTarget,
    workload: Workload,
    config: DriverConfig,
    *,
    events: EventLog | None = None,
    metrics: MetricsRegistry | None = None,
) -> LoadResult:
    """Offer ``workload.operations`` open-loop at ``config.rate``.

    The schedule covers ``config.duration`` seconds of Poisson arrivals
    (seeded -- the *timing* jitter is reproducible too); the trace is
    consumed in order and truncated to whichever runs out first, the
    schedule or the operations.  ``events`` (default: the process-wide
    log) is watched for ``pool_saturation`` and shed narration during
    the run; ``metrics``, when given, contributes before/after deltas of
    the overload counter families to the result.
    """
    events = events if events is not None else get_events()
    rng = derive_rng(config.seed)

    # Fixed arrival schedule, before anything runs.
    gap = 1.0 / config.rate
    offsets: list[float] = []
    if config.arrival == "uniform":
        # Multiplied, not accumulated: summing 1/rate drifts by an ulp
        # and silently drops the final arrival of the schedule.
        n = min(int(config.rate * config.duration + 1e-9),
                len(workload.operations))
        offsets = [(i + 1) * gap for i in range(n)]
    else:
        t = 0.0
        while len(offsets) < len(workload.operations):
            t += float(rng.exponential(gap))
            if t > config.duration:
                break
            offsets.append(t)
    schedule = list(zip(offsets, workload.operations))

    workers = [
        _Worker(target, queue.Queue()) for _ in range(config.workers)
    ]
    for worker in workers:
        worker.start()

    # Event watch: count by name, chaining any previously installed hook.
    event_counts: dict[str, int] = {}
    counts_lock = threading.Lock()
    previous_hook = events.on_event
    watched = {"pool_saturation", "journal_recovery"}

    def _watch(record: dict) -> None:
        name = record.get("event")
        if name in watched:
            with counts_lock:
                event_counts[name] = event_counts.get(name, 0) + 1
        if previous_hook is not None:
            previous_hook(record)

    events.on_event = _watch
    counters_before = {
        name: metrics.sum_counter(name) for name in SATURATION_COUNTERS
    } if metrics is not None else {}

    t0 = time.perf_counter() + _START_LEAD_S
    try:
        for offset, op in schedule:
            intended = t0 + offset
            delay = intended - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            # Tenant-hash routing keeps each tenant's stream ordered
            # (crc32: stable across processes, unlike str.__hash__).
            inbox = workers[
                zlib.crc32(op.tenant.encode()) % len(workers)
            ].inbox
            inbox.put((intended, op))
        for worker in workers:
            worker.inbox.put(None)
        for worker in workers:
            worker.join()
    finally:
        events.on_event = previous_hook

    saturation_counters = {
        name: metrics.sum_counter(name) - counters_before[name]
        for name in counters_before
    } if metrics is not None else {}

    histograms = {kind: LatencyHistogram() for kind in OP_KINDS}
    errors = {kind: 0 for kind in OP_KINDS}
    counts = {kind: 0 for kind in OP_KINDS}
    last_completion = t0
    for worker in workers:
        for kind in OP_KINDS:
            histograms[kind].merge_from(worker.hists[kind])
            errors[kind] += worker.errors[kind]
            counts[kind] += worker.counts[kind]
        last_completion = max(last_completion, worker.last_completion)

    completed = sum(counts.values())
    return LoadResult(
        offered_rate=config.rate,
        duration=config.duration,
        span=max(last_completion - t0, 1e-9),
        dispatched=len(schedule),
        completed=completed,
        errors=errors,
        counts=counts,
        histograms=histograms,
        saturation_events=dict(event_counts),
        saturation_counters=saturation_counters,
    )
