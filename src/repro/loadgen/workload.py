"""Deterministic multi-tenant workload synthesis.

A load number is only comparable to last week's if the two runs issued
the same operations -- so the synthesizer is a pure function of its
seed: one :class:`numpy.random.Generator` drives every draw in a fixed
order, and the resulting trace is byte-identical across runs, machines
and Python versions (``trace_digest`` asserts it).

The shape follows the realistic-load arguments in PAPERS.md (iPrivacy's
end-to-end latency point, Dhinakaran et al.'s skewed parallel mining
traffic): a population of tenants with zipf-skewed request share, each
owning a set of files whose popularity is itself zipfian, and a
configurable put/get/update/delete mix.  The synthesizer tracks the live
file set as it emits operations, so the trace is *valid by
construction* -- a get never targets a deleted file, a put never
collides with a live name -- and any error a run does produce is the
system's, not the workload's.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.util.rng import derive_rng
from repro.workloads.files import random_bytes

#: Operation kinds, in the order mix weights are drawn.
OP_KINDS = ("get", "put", "update", "delete")

#: A tenant never drops below this many live files: deletes retarget to
#: puts near the floor so the population cannot die out mid-trace.
MIN_LIVE_FILES = 2

#: Bounded-rejection budget for zipf rank draws; past it the draw falls
#: back to the head rank (still deterministic, negligibly more skewed).
_ZIPF_ATTEMPTS = 64


@dataclass(frozen=True)
class OpMix:
    """Relative operation weights (normalized at draw time)."""

    get: float = 0.70
    put: float = 0.15
    update: float = 0.10
    delete: float = 0.05

    def weights(self) -> tuple[float, ...]:
        raw = (self.get, self.put, self.update, self.delete)
        if any(w < 0 for w in raw):
            raise ValueError(f"mix weights must be >= 0, got {raw}")
        total = sum(raw)
        if total <= 0:
            raise ValueError("mix weights must not all be zero")
        return tuple(w / total for w in raw)

    def to_dict(self) -> dict:
        return {
            "get": self.get, "put": self.put,
            "update": self.update, "delete": self.delete,
        }


@dataclass(frozen=True)
class WorkloadSpec:
    """Knobs describing the synthetic population and its traffic."""

    tenants: int = 4
    files_per_tenant: int = 12
    mean_file_size: int = 8192
    size_jitter: float = 0.5  # sizes uniform in mean*(1 +/- jitter)
    zipf_alpha: float = 1.2  # file popularity skew (> 1)
    tenant_alpha: float = 1.1  # tenant request-share skew (> 1)
    mix: OpMix = field(default_factory=OpMix)
    privacy_level: int = 2

    def __post_init__(self) -> None:
        if self.tenants < 1:
            raise ValueError(f"tenants must be >= 1, got {self.tenants}")
        if self.files_per_tenant < MIN_LIVE_FILES:
            raise ValueError(
                f"files_per_tenant must be >= {MIN_LIVE_FILES}, "
                f"got {self.files_per_tenant}"
            )
        if self.mean_file_size < 1:
            raise ValueError(
                f"mean_file_size must be >= 1, got {self.mean_file_size}"
            )
        if not 0.0 <= self.size_jitter < 1.0:
            raise ValueError(
                f"size_jitter must be in [0, 1), got {self.size_jitter}"
            )
        if self.zipf_alpha <= 1.0 or self.tenant_alpha <= 1.0:
            raise ValueError(
                "zipf_alpha and tenant_alpha must be > 1 for a proper "
                f"Zipf, got {self.zipf_alpha} / {self.tenant_alpha}"
            )
        self.mix.weights()  # validate eagerly

    def to_dict(self) -> dict:
        return {
            "tenants": self.tenants,
            "files_per_tenant": self.files_per_tenant,
            "mean_file_size": self.mean_file_size,
            "size_jitter": self.size_jitter,
            "zipf_alpha": self.zipf_alpha,
            "tenant_alpha": self.tenant_alpha,
            "mix": self.mix.to_dict(),
            "privacy_level": self.privacy_level,
        }


@dataclass(frozen=True)
class Operation:
    """One traced operation; payload bytes are re-derived from the seed.

    Payloads are not materialized in the trace -- a million-op trace
    would not fit in memory -- but ``payload_seed`` pins them, so two
    runs of the same trace write identical bytes.
    """

    index: int
    kind: str  # one of OP_KINDS
    tenant: str
    filename: str
    size: int = 0  # payload bytes (put/update only)
    payload_seed: int = 0
    serial: int = 0  # chunk serial (update only)

    def payload(self) -> bytes:
        if self.size <= 0:
            return b""
        return random_bytes(self.size, seed=self.payload_seed)

    def trace_line(self) -> str:
        return (
            f"{self.index} {self.kind} {self.tenant} {self.filename} "
            f"{self.size} {self.payload_seed} {self.serial}"
        )


@dataclass(frozen=True)
class Workload:
    """A synthesized trace: setup puts plus the timed operation stream."""

    spec: WorkloadSpec
    seed: int
    setup: tuple[Operation, ...]
    operations: tuple[Operation, ...]

    @property
    def tenants(self) -> tuple[str, ...]:
        return tuple(
            f"t{i}" for i in range(self.spec.tenants)
        )

    def trace_digest(self) -> str:
        """SHA-256 over the canonical trace -- the determinism witness."""
        digest = hashlib.sha256()
        for op in self.setup:
            digest.update(op.trace_line().encode())
            digest.update(b"\n")
        digest.update(b"--\n")
        for op in self.operations:
            digest.update(op.trace_line().encode())
            digest.update(b"\n")
        return digest.hexdigest()


def _zipf_rank(rng, alpha: float, n: int) -> int:
    """A zipf(alpha) rank in [0, n), by bounded rejection.

    ``Generator.zipf`` samples the unbounded law; draws past the live
    set are rejected and redrawn so the in-range mass keeps its shape
    (a modulo fold would alias tail mass onto arbitrary ranks).
    """
    if n <= 1:
        return 0
    for _ in range(_ZIPF_ATTEMPTS):
        rank = int(rng.zipf(alpha)) - 1
        if rank < n:
            return rank
    return 0


def _draw_size(rng, spec: WorkloadSpec) -> int:
    lo = spec.mean_file_size * (1.0 - spec.size_jitter)
    hi = spec.mean_file_size * (1.0 + spec.size_jitter)
    return max(1, int(lo + (hi - lo) * rng.random()))


def synthesize(spec: WorkloadSpec, n_ops: int, seed: int = 0) -> Workload:
    """Generate *n_ops* operations (plus setup puts) from *seed*.

    Every tenant starts with ``files_per_tenant`` live files (the setup
    puts).  Each timed operation draws a tenant (zipf over tenants), a
    kind (mix weights), and -- for get/update/delete -- a live file by
    zipf rank over the tenant's popularity-ordered list.  New files are
    inserted at a drawn rank, so popularity churns the way real corpora
    do instead of freezing the launch-day hot set.
    """
    if n_ops < 0:
        raise ValueError(f"n_ops must be >= 0, got {n_ops}")
    rng = derive_rng(seed)
    tenants = [f"t{i}" for i in range(spec.tenants)]
    weights = [1.0 / (r + 1) ** spec.tenant_alpha for r in range(len(tenants))]
    total_w = sum(weights)
    tenant_weights = [w / total_w for w in weights]

    live: dict[str, list[str]] = {t: [] for t in tenants}
    created: dict[str, int] = {t: 0 for t in tenants}
    index = 0

    def next_seed() -> int:
        return int(rng.integers(0, 2**63 - 1))

    def make_put(tenant: str) -> Operation:
        nonlocal index
        name = f"{tenant}-f{created[tenant]}"
        created[tenant] += 1
        rank = int(rng.integers(0, len(live[tenant]) + 1))
        live[tenant].insert(rank, name)
        op = Operation(
            index=index, kind="put", tenant=tenant, filename=name,
            size=_draw_size(rng, spec), payload_seed=next_seed(),
        )
        index += 1
        return op

    setup: list[Operation] = []
    for tenant in tenants:
        for _ in range(spec.files_per_tenant):
            setup.append(make_put(tenant))

    mix_weights = spec.mix.weights()
    operations: list[Operation] = []
    for _ in range(n_ops):
        tenant = tenants[
            int(rng.choice(len(tenants), p=tenant_weights))
        ]
        kind = OP_KINDS[int(rng.choice(len(OP_KINDS), p=mix_weights))]
        pool = live[tenant]
        if kind == "delete" and len(pool) <= MIN_LIVE_FILES:
            kind = "put"  # keep the population alive
        if kind == "put":
            operations.append(make_put(tenant))
            continue
        rank = _zipf_rank(rng, spec.zipf_alpha, len(pool))
        filename = pool[rank]
        if kind == "get":
            op = Operation(
                index=index, kind="get", tenant=tenant, filename=filename
            )
        elif kind == "update":
            op = Operation(
                index=index, kind="update", tenant=tenant, filename=filename,
                size=_draw_size(rng, spec), payload_seed=next_seed(),
                serial=0,
            )
        else:  # delete
            pool.pop(rank)
            op = Operation(
                index=index, kind="delete", tenant=tenant, filename=filename
            )
        index += 1
        operations.append(op)

    return Workload(
        spec=spec, seed=seed,
        setup=tuple(setup), operations=tuple(operations),
    )
