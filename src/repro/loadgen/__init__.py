"""Open-loop load harness: trace-driven workloads with latency SLOs.

The ROADMAP's "millions of users" claim is only as good as its
measurement.  This package makes it measurable:

* :mod:`repro.loadgen.workload` -- a seeded, deterministic synthesizer
  producing a multi-tenant operation trace (zipfian file popularity,
  configurable put/get/update/delete mix);
* :mod:`repro.loadgen.driver` -- an open-loop driver that schedules the
  trace at a target arrival rate and records every operation's latency
  from its *intended* send time, so coordinated omission cannot hide
  stalls behind a blocked client;
* :mod:`repro.loadgen.slo` -- declarative latency SLOs
  (``p99<250ms@200``) evaluated against a run;
* :mod:`repro.loadgen.report` -- stepwise saturation search and the
  ``BENCH_load.json`` artifact the perf regression gate reads.

See ``docs/load_testing.md`` for the workload model and semantics.
"""

from repro.loadgen.driver import (
    DistributorTarget,
    DriverConfig,
    GatewayClientTarget,
    GatewayTarget,
    LoadResult,
    LoadTarget,
    ThrottledTarget,
    run_load,
    run_setup,
)
from repro.loadgen.report import (
    build_report,
    render_report,
    saturation_search,
    validate_report,
)
from repro.loadgen.slo import SLO, SLOOutcome
from repro.loadgen.workload import (
    Operation,
    OpMix,
    Workload,
    WorkloadSpec,
    synthesize,
)

__all__ = [
    "SLO",
    "SLOOutcome",
    "DistributorTarget",
    "DriverConfig",
    "GatewayClientTarget",
    "GatewayTarget",
    "LoadResult",
    "LoadTarget",
    "Operation",
    "OpMix",
    "ThrottledTarget",
    "Workload",
    "WorkloadSpec",
    "build_report",
    "render_report",
    "run_load",
    "run_setup",
    "saturation_search",
    "synthesize",
    "validate_report",
]
