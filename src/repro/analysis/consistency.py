"""Deployment consistency verification.

The distributor's metadata and the providers' object stores can drift:
blobs silently lost (§III-A's failure modes), garbage left behind by a
provider that was down during a delete, or corruption at rest.  The
checker cross-audits the two sides without touching payload bytes (HEAD
requests only) and reports every discrepancy so operators can drive
repair (`repair_file`) or garbage collection.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.distributor import CloudDataDistributor
from repro.core.errors import ProviderError
from repro.core.virtual_id import shard_key, snapshot_key


@dataclass(frozen=True)
class ShardIssue:
    virtual_id: int
    shard_index: int
    provider: str
    problem: str  # "missing" | "unreachable"


@dataclass
class ConsistencyReport:
    shards_checked: int = 0
    snapshots_checked: int = 0
    missing: list[ShardIssue] = field(default_factory=list)
    orphans: dict[str, list[str]] = field(default_factory=dict)
    unreachable_providers: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.missing and not any(self.orphans.values())

    def summary(self) -> str:
        orphan_count = sum(len(v) for v in self.orphans.values())
        return (
            f"{self.shards_checked} shards + {self.snapshots_checked} "
            f"snapshots checked: {len(self.missing)} missing, "
            f"{orphan_count} orphan object(s), "
            f"{len(self.unreachable_providers)} provider(s) unreachable"
        )


def verify_deployment(distributor: CloudDataDistributor) -> ConsistencyReport:
    """Cross-audit metadata against provider contents.

    * every shard and snapshot referenced by the Chunk Table must exist at
      its recorded provider (``missing`` otherwise);
    * every object at a provider must be referenced by the tables
      (``orphans`` otherwise -- eligible for garbage collection);
    * unreachable providers are reported separately (their objects can be
      neither confirmed nor condemned).
    """
    report = ConsistencyReport()
    expected: dict[str, set[str]] = {
        name: set() for name in distributor.registry.names()
    }
    for _, entry in distributor.chunk_table:
        for shard_index, table_index in enumerate(entry.provider_indices):
            name = distributor.provider_table.get(table_index).name
            expected[name].add(shard_key(entry.virtual_id, shard_index))
        if entry.snapshot_index is not None:
            name = distributor.provider_table.get(entry.snapshot_index).name
            expected[name].add(snapshot_key(entry.virtual_id))

    for name in distributor.registry.names():
        provider = distributor.registry.get(name).provider
        try:
            present = set(provider.keys())
        except ProviderError:
            report.unreachable_providers.append(name)
            continue
        for key in sorted(expected[name]):
            is_snapshot = key.startswith("S")
            if is_snapshot:
                report.snapshots_checked += 1
            else:
                report.shards_checked += 1
            if key not in present:
                if is_snapshot:
                    vid = int(key[1:])
                    shard_index = -1
                else:
                    stem, _, shard = key.partition(".")
                    vid, shard_index = int(stem), int(shard)
                report.missing.append(
                    ShardIssue(
                        virtual_id=vid,
                        shard_index=shard_index,
                        provider=name,
                        problem="missing",
                    )
                )
        orphans = sorted(present - expected[name])
        if orphans:
            report.orphans[name] = orphans
    return report


def collect_garbage(
    distributor: CloudDataDistributor, report: ConsistencyReport | None = None
) -> int:
    """Delete orphan objects found by :func:`verify_deployment`.

    Returns the number of objects removed.  Safe: only removes keys that
    no table references at the moment of the (re)scan.
    """
    report = report or verify_deployment(distributor)
    removed = 0
    for name, keys in report.orphans.items():
        provider = distributor.registry.get(name).provider
        for key in keys:
            try:
                provider.delete(key)
                removed += 1
            except ProviderError:
                continue
    return removed
