"""Client-exposure analysis: how much of a client's data could any one
provider (or collusion of k providers) ever see?

The paper's whole premise is bounding per-provider exposure
("Distribution ... minimize[s] the risk associated with information
leakage by any provider", Section I).  These functions compute that bound
from a live deployment's metadata, giving operators the number the paper
argues about.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

from repro.core.distributor import CloudDataDistributor


@dataclass(frozen=True)
class ProviderExposure:
    """One provider's view of one client's corpus."""

    provider: str
    shard_count: int
    shard_bytes: int
    chunk_coverage: float  # fraction of the client's chunks it holds a shard of
    byte_share: float  # its shard bytes / client's total stored shard bytes


@dataclass(frozen=True)
class ExposureReport:
    client: str
    total_chunks: int
    total_shard_bytes: int
    per_provider: tuple[ProviderExposure, ...]

    @property
    def max_byte_share(self) -> float:
        """The paper's headline bound: the largest single-provider share."""
        return max((p.byte_share for p in self.per_provider), default=0.0)

    @property
    def max_chunk_coverage(self) -> float:
        return max((p.chunk_coverage for p in self.per_provider), default=0.0)

    @property
    def providers_used(self) -> int:
        return sum(1 for p in self.per_provider if p.shard_count > 0)


def client_exposure(
    distributor: CloudDataDistributor, client: str
) -> ExposureReport:
    """Per-provider exposure of *client*'s stored data.

    Computed purely from distributor metadata (chunk table + stripe
    geometry); no provider traffic.
    """
    entry = distributor.client_table.get(client)
    shard_counts: dict[str, int] = {}
    shard_bytes: dict[str, int] = {}
    chunks_touched: dict[str, set[int]] = {}
    total_bytes = 0
    for ref in entry.chunk_refs:
        chunk = distributor.chunk_table.get(ref.chunk_index)
        state = distributor._chunk_state.get(chunk.virtual_id)
        if state is not None:
            shard_size = state.stripe.shard_size
        else:
            # Unknown-codec quarantine: the stripe never deserialized, but
            # the preserved raw tuple still carries the shard size — enough
            # for a byte-share bound.
            shard_size = int(distributor._codec_quarantine[chunk.virtual_id][4])
        for table_index in chunk.provider_indices:
            name = distributor.provider_table.get(table_index).name
            shard_counts[name] = shard_counts.get(name, 0) + 1
            shard_bytes[name] = shard_bytes.get(name, 0) + shard_size
            chunks_touched.setdefault(name, set()).add(chunk.virtual_id)
            total_bytes += shard_size
    n_chunks = len(entry.chunk_refs)
    per_provider = []
    for name in distributor.registry.names():
        count = shard_counts.get(name, 0)
        per_provider.append(
            ProviderExposure(
                provider=name,
                shard_count=count,
                shard_bytes=shard_bytes.get(name, 0),
                chunk_coverage=(
                    len(chunks_touched.get(name, ())) / n_chunks if n_chunks else 0.0
                ),
                byte_share=(
                    shard_bytes.get(name, 0) / total_bytes if total_bytes else 0.0
                ),
            )
        )
    per_provider.sort(key=lambda p: (-p.shard_bytes, p.provider))
    return ExposureReport(
        client=client,
        total_chunks=n_chunks,
        total_shard_bytes=total_bytes,
        per_provider=tuple(per_provider),
    )


def collusion_exposure(
    distributor: CloudDataDistributor, client: str, k: int
) -> float:
    """Worst-case byte share visible to the best collusion of *k* providers.

    Exact for small fleets (exhaustive over k-subsets); byte shares are
    additive across providers because shards are disjoint.
    """
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    report = client_exposure(distributor, client)
    shares = [p.byte_share for p in report.per_provider if p.byte_share > 0]
    if k >= len(shares):
        return sum(shares)
    return max(
        sum(subset) for subset in combinations(shares, k)
    ) if k else 0.0


def exposure_rows(report: ExposureReport) -> list[list[object]]:
    """Rows for ASCII rendering of an exposure report."""
    return [
        [
            p.provider,
            p.shard_count,
            p.shard_bytes,
            f"{p.chunk_coverage:.1%}",
            f"{p.byte_share:.1%}",
        ]
        for p in report.per_provider
    ]
