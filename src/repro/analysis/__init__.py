"""Deployment analysis: exposure bounds, analytic availability, and
metadata/provider consistency verification."""

from repro.analysis.availability import (
    file_availability,
    mttdl_ratio,
    stripe_availability,
)
from repro.analysis.consistency import (
    ConsistencyReport,
    ShardIssue,
    collect_garbage,
    verify_deployment,
)
from repro.analysis.exposure import (
    ExposureReport,
    ProviderExposure,
    client_exposure,
    collusion_exposure,
    exposure_rows,
)

__all__ = [
    "file_availability",
    "mttdl_ratio",
    "stripe_availability",
    "ConsistencyReport",
    "ShardIssue",
    "collect_garbage",
    "verify_deployment",
    "ExposureReport",
    "ProviderExposure",
    "client_exposure",
    "collusion_exposure",
    "exposure_rows",
]
