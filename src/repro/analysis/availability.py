"""Analytic availability of RAID-coded stripes.

Closed-form companion to the A4 simulation: given each provider being
independently unavailable with probability *p*, the probability that a
stripe (and hence a chunk, and a file of many chunks) is readable.
"""

from __future__ import annotations

from math import comb

from repro.raid.striping import RaidLevel


def stripe_availability(level: RaidLevel, width: int, p_down: float) -> float:
    """P(stripe readable) with i.i.d. per-provider down-probability.

    A stripe of ``width`` members with ``m`` parity shards survives up to
    ``m`` simultaneous losses (RAID-1 survives ``width - 1``); readable
    iff the number of down members is within the tolerance.
    """
    if not 0.0 <= p_down <= 1.0:
        raise ValueError(f"p_down must be in [0, 1], got {p_down}")
    k, m = level.shard_counts(width)
    tolerance = width - 1 if level is RaidLevel.RAID1 else m
    return float(
        sum(
            comb(width, j) * p_down**j * (1 - p_down) ** (width - j)
            for j in range(tolerance + 1)
        )
    )


def file_availability(
    level: RaidLevel, width: int, p_down: float, n_chunks: int
) -> float:
    """P(whole file readable): every chunk's stripe must be readable.

    Conservative independence approximation -- real stripes share
    providers, which *correlates* their failures and makes the true file
    availability at least this value when stripes overlap completely.
    """
    if n_chunks < 0:
        raise ValueError(f"n_chunks must be >= 0, got {n_chunks}")
    return stripe_availability(level, width, p_down) ** n_chunks


def mttdl_ratio(level_a: RaidLevel, level_b: RaidLevel, width: int, p_down: float) -> float:
    """Unavailability ratio of two levels (how many times fewer failed
    reads *level_a* suffers than *level_b* at the same width)."""
    ua = 1.0 - stripe_availability(level_a, width, p_down)
    ub = 1.0 - stripe_availability(level_b, width, p_down)
    if ua == 0:
        return float("inf")
    return ub / ua
