"""Analytic availability of erasure-coded stripes.

Closed-form companion to the A4 simulation: given each provider being
independently unavailable with probability *p*, the probability that a
stripe (and hence a chunk, and a file of many chunks) is readable.

The math is codec-agnostic: any maximum-distance-separable code with
``k`` data and ``m`` parity shards survives up to ``m`` simultaneous
losses, so everything reduces to :func:`mds_availability`.  The public
functions accept a :class:`~repro.raid.codecs.CodecSpec`, a codec spec
string (``"rs(6,3)"``), or a legacy :class:`~repro.raid.striping.RaidLevel`.
"""

from __future__ import annotations

from math import comb

from repro.raid.codecs import CodecSpec
from repro.raid.striping import RaidLevel

CodecLike = "CodecSpec | RaidLevel | str"


def mds_availability(k: int, m: int, p_down: float) -> float:
    """P(stripe readable) for an MDS code with *k* data + *m* parity shards.

    A stripe of ``k + m`` members is readable iff at most ``m`` of them
    are simultaneously down (each independently with probability
    ``p_down``).  RAID-1 fits the same formula with ``k = 1``,
    ``m = width - 1``.
    """
    if k < 1 or m < 0:
        raise ValueError(f"need k >= 1 and m >= 0, got k={k}, m={m}")
    if not 0.0 <= p_down <= 1.0:
        raise ValueError(f"p_down must be in [0, 1], got {p_down}")
    width = k + m
    return float(
        sum(
            comb(width, j) * p_down**j * (1 - p_down) ** (width - j)
            for j in range(m + 1)
        )
    )


def _shard_counts(codec: "CodecSpec | RaidLevel | str", width: int | None) -> tuple[int, int]:
    """(k, m) for *codec*, using *width* for open raid families."""
    spec = CodecSpec.coerce(codec)
    resolved = spec.instantiate(width)
    return resolved.k, resolved.m


def stripe_availability(
    codec: "CodecSpec | RaidLevel | str", width: int | None, p_down: float
) -> float:
    """P(stripe readable) with i.i.d. per-provider down-probability.

    ``codec`` may be a RaidLevel (``width`` then sizes the stripe, as
    before), or any codec spec -- ``"rs(6,3)"`` carries its own width, so
    ``width`` may be ``None`` for the fixed-width families.
    """
    k, m = _shard_counts(codec, width)
    return mds_availability(k, m, p_down)


def file_availability(
    codec: "CodecSpec | RaidLevel | str",
    width: int | None,
    p_down: float,
    n_chunks: int,
) -> float:
    """P(whole file readable): every chunk's stripe must be readable.

    Conservative independence approximation -- real stripes share
    providers, which *correlates* their failures and makes the true file
    availability at least this value when stripes overlap completely.
    """
    if n_chunks < 0:
        raise ValueError(f"n_chunks must be >= 0, got {n_chunks}")
    return stripe_availability(codec, width, p_down) ** n_chunks


def mttdl_ratio(
    codec_a: "CodecSpec | RaidLevel | str",
    codec_b: "CodecSpec | RaidLevel | str",
    width: int | None,
    p_down: float,
) -> float:
    """Unavailability ratio of two codecs (how many times fewer failed
    reads *codec_a* suffers than *codec_b* at the same width)."""
    ua = 1.0 - stripe_availability(codec_a, width, p_down)
    ub = 1.0 - stripe_availability(codec_b, width, p_down)
    if ua == 0:
        return float("inf")
    return ub / ua
