"""Asyncio client for the chunk-server wire protocol.

The threaded :class:`~repro.net.remote.RemoteProvider` burns a thread per
in-flight exchange; a front-end that fans one logical request out to
thousands of chunk servers (the regime :class:`AsyncChunkServer` exists
for) wants the mirror image on the client side -- many idle connections
multiplexed on one event loop.  :class:`AsyncChunkClient` speaks the same
frames to either server flavor.

Pool-staleness semantics are deliberately *identical* to the threaded
client: a reused pooled connection that dies mid-exchange (the classic
server-restart pattern) is reclassified through
:func:`repro.net.pool.classify_stale` into
:class:`~repro.net.pool.StaleConnectionError` and redialed for free,
without consuming retry budget.  Both transports route through the one
shared classifier so the rule cannot drift apart again (it briefly did:
an earlier async prototype counted parked-socket deaths as server
failures, tripping backoff on every restart).
"""

from __future__ import annotations

import asyncio
import socket
import zlib
from contextlib import asynccontextmanager
from dataclasses import dataclass
from typing import AsyncIterator

from repro.core.errors import ProviderError, ProviderUnavailableError
from repro.net.pool import StaleConnectionError, classify_stale
from repro.net.protocol import (
    HEADER,
    MAGIC,
    MAX_PAYLOAD,
    VERSION,
    Frame,
    OpCode,
    ProtocolError,
    Status,
    decode_batch_results,
    decode_keys,
    encode_frame,
    encode_keys,
    encode_multi_put,
    error_for_status,
)
from repro.providers.base import blob_checksum


async def read_frame_async(reader: asyncio.StreamReader) -> Frame | None:
    """Asyncio twin of :func:`repro.net.protocol.read_frame`.

    Returns ``None`` on clean EOF between frames; raises
    :class:`ProtocolError` on a mid-frame close or a malformed header.
    Shared by :class:`AsyncChunkClient` and
    :class:`~repro.net.async_server.AsyncChunkServer`.
    """
    try:
        raw = await reader.readexactly(HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between frames
        raise ProtocolError(
            f"connection closed mid-frame "
            f"({len(exc.partial)}/{HEADER.size} bytes)"
        )
    magic, version, code, key_len, payload_len, crc = HEADER.unpack(raw)
    if magic != MAGIC:
        raise ProtocolError(f"bad magic {magic!r}")
    if version != VERSION:
        raise ProtocolError(f"unsupported protocol version {version}")
    if payload_len > MAX_PAYLOAD:
        raise ProtocolError(f"payload length {payload_len} exceeds cap")
    try:
        body = await reader.readexactly(key_len + payload_len)
    except asyncio.IncompleteReadError:
        raise ProtocolError("connection closed mid-frame (body)")
    key_bytes, payload = body[:key_len], body[key_len:]
    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
        raise ProtocolError(f"payload CRC mismatch for key {key_bytes!r}")
    return Frame(code=code, key=key_bytes.decode("utf-8"), payload=payload)


@dataclass
class AsyncLease:
    """One checked-out connection plus how it was obtained.

    Mirror of :class:`~repro.net.pool.Lease`: ``fresh`` is False when the
    connection was reused from the idle stack and may have died while
    parked.
    """

    reader: asyncio.StreamReader
    writer: asyncio.StreamWriter
    fresh: bool


class AsyncConnectionPool:
    """Stack of reusable stream pairs to ``(host, port)``.

    The asyncio analog of :class:`~repro.net.pool.ConnectionPool`, with
    the same return-on-clean-exit / close-on-error discipline: a
    connection that failed mid-exchange is never reused because its
    stream position can no longer be trusted.  Single event loop only --
    there is no lock because every checkout happens on the loop.
    """

    def __init__(
        self,
        host: str,
        port: int,
        size: int = 4,
        connect_timeout: float = 2.0,
    ) -> None:
        if size < 1:
            raise ValueError(f"pool size must be >= 1, got {size}")
        self.host = host
        self.port = port
        self.size = size
        self.connect_timeout = connect_timeout
        self._idle: list[tuple[asyncio.StreamReader, asyncio.StreamWriter]] = []
        self._closed = False

    async def _connect(
        self,
    ) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(self.host, self.port),
            timeout=self.connect_timeout,
        )
        sock = writer.get_extra_info("socket")
        if sock is not None:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return reader, writer

    @asynccontextmanager
    async def lease(self) -> AsyncIterator[AsyncLease]:
        """Borrow a connection for one exchange; see :class:`AsyncLease`."""
        if self._closed:
            raise RuntimeError("connection pool is closed")
        pair = self._idle.pop() if self._idle else None
        fresh = pair is None
        if pair is None:
            pair = await self._connect()
        reader, writer = pair
        try:
            yield AsyncLease(reader=reader, writer=writer, fresh=fresh)
        except BaseException:
            writer.close()
            raise
        if not self._closed and len(self._idle) < self.size:
            self._idle.append(pair)
        else:
            writer.close()

    def discard_idle(self) -> None:
        """Drop every idle connection (e.g. after the server restarted)."""
        idle, self._idle = self._idle, []
        for _, writer in idle:
            writer.close()

    def close(self) -> None:
        self._closed = True
        self.discard_idle()

    @property
    def idle_count(self) -> int:
        return len(self._idle)


class AsyncChunkClient:
    """Event-loop client speaking the chunk-server frame protocol.

    Covers the data-plane subset (`ping`/`put`/`get`/`delete`/`keys` and
    the MULTI batch forms); error statuses translate into the same
    :mod:`repro.core.errors` hierarchy the threaded client raises.  Retry
    shape matches :meth:`RemoteProvider._with_retries` where it matters:
    stale reused connections redial for free (``pool.size + 1`` budget),
    real transport failures burn bounded backoff attempts.
    """

    def __init__(
        self,
        name: str,
        host: str,
        port: int,
        *,
        pool_size: int = 4,
        attempts: int = 3,
        backoff: float = 0.05,
        op_timeout: float = 5.0,
    ) -> None:
        if attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {attempts}")
        self.name = name
        self.host = host
        self.port = port
        self.attempts = attempts
        self.backoff = backoff
        self.op_timeout = op_timeout
        self.pool = AsyncConnectionPool(host, port, size=pool_size)

    async def _exchange(
        self, op: OpCode, key: str = "", payload: bytes = b""
    ) -> Frame:
        async with self.pool.lease() as leased:
            try:
                leased.writer.write(encode_frame(op, key=key, payload=payload))
                await asyncio.wait_for(
                    leased.writer.drain(), timeout=self.op_timeout
                )
                frame = await asyncio.wait_for(
                    read_frame_async(leased.reader), timeout=self.op_timeout
                )
                if frame is None:
                    raise ProtocolError(
                        "server closed connection before responding"
                    )
                return frame
            except (OSError, ProtocolError) as exc:
                # TimeoutError is an OSError subclass on 3.11, so wait_for
                # expiry lands here too.  Shared stale-vs-real rule: see
                # repro.net.pool.classify_stale.
                raise classify_stale(exc, leased.fresh) from exc

    async def _with_retries(self, make_exchange):
        """Run *make_exchange()* (a fresh coroutine per call) with retries.

        A :class:`StaleConnectionError` discards the idle stack and
        redials immediately without consuming an attempt -- the same free
        redial the threaded client grants, via the same classifier.
        """
        last_exc: Exception | None = None
        stale_budget = self.pool.size + 1
        attempt = 0
        while True:
            try:
                return await make_exchange()
            except StaleConnectionError as exc:
                self.pool.discard_idle()
                if stale_budget > 0:
                    stale_budget -= 1
                    continue  # immediate redial; no attempt consumed
                last_exc = exc
                attempt += 1
            except (OSError, ProtocolError) as exc:
                last_exc = exc
                attempt += 1
            if attempt >= self.attempts:
                break
            await asyncio.sleep(self.backoff * (2 ** (attempt - 1)))
            self.pool.discard_idle()
        raise ProviderUnavailableError(
            f"provider {self.name!r} at {self.host}:{self.port} unreachable "
            f"after {self.attempts} attempt(s): {last_exc}"
        ) from last_exc

    async def _request(
        self, op: OpCode, key: str = "", payload: bytes = b""
    ) -> Frame:
        frame = await self._with_retries(
            lambda: self._exchange(op, key=key, payload=payload)
        )
        if frame.code != Status.OK:
            raise error_for_status(
                frame.code, frame.payload.decode("utf-8", "replace")
            )
        return frame

    # -- operations ----------------------------------------------------------

    async def ping(self) -> bool:
        frame = await self._request(OpCode.PING, payload=b"ping")
        return frame.payload == b"ping"  # server echoes the payload

    async def put(self, key: str, data: bytes) -> None:
        frame = await self._request(OpCode.PUT, key=key, payload=data)
        echoed = frame.payload.decode("utf-8", "replace")
        if echoed != blob_checksum(data):
            raise ProtocolError(
                f"checksum echo mismatch from provider {self.name!r} "
                f"for key {key!r}"
            )

    async def get(self, key: str) -> bytes:
        frame = await self._request(OpCode.GET, key=key)
        return frame.payload

    async def delete(self, key: str) -> None:
        await self._request(OpCode.DELETE, key=key)

    async def keys(self) -> list[str]:
        frame = await self._request(OpCode.KEYS)
        return decode_keys(frame.payload)

    async def put_many(
        self, items: list[tuple[str, bytes]]
    ) -> list[ProviderError | None]:
        if not items:
            return []
        frame = await self._request(
            OpCode.MULTI_PUT, payload=encode_multi_put(items)
        )
        results = decode_batch_results(frame.payload)
        return [
            None
            if status == Status.OK
            else error_for_status(status, body.decode("utf-8", "replace"))
            for status, body in results
        ]

    async def get_many(self, keys: list[str]) -> list["bytes | ProviderError"]:
        if not keys:
            return []
        frame = await self._request(
            OpCode.MULTI_GET, payload=encode_keys(keys)
        )
        results = decode_batch_results(frame.payload)
        return [
            body
            if status == Status.OK
            else error_for_status(status, body.decode("utf-8", "replace"))
            for status, body in results
        ]

    def close(self) -> None:
        self.pool.close()
