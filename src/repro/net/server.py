"""Threaded chunk server: fronts any ``CloudProvider`` backend over TCP.

"The main tasks of Cloud Providers are: storing chunks of data, responding
to a query by providing the desired data, and removing chunks when asked"
(Section IV-B).  A :class:`ChunkServer` is exactly that entity as a network
process: it binds a localhost TCP port, accepts one thread per connection,
and answers the wire protocol of :mod:`repro.net.protocol` by delegating to
its backend -- so the same in-memory or on-disk store used in-process can
also be reached the way a real provider would be.

Backend exceptions are translated into wire status codes (never into a
dropped connection), so a remote client can distinguish "no such object"
from "object corrupted" from "server gone".
"""

from __future__ import annotations

import itertools
import json
import logging
import queue
import select
import socket
import threading
import time
from dataclasses import dataclass, field

from repro.net.protocol import (
    HEADER,
    STREAM_OPS,
    Frame,
    OpCode,
    ProtocolError,
    Status,
    decode_deadline_request,
    decode_keys,
    decode_multi_put,
    decode_traced_request,
    encode_batch_results,
    encode_frame,
    encode_keys,
    encode_retry_hint,
    encode_stat,
    encode_stream_count,
    encode_traced_response,
    frame_segments,
    read_frame,
    send_frame,
    sendmsg_all,
    status_for_error,
)
from repro.obs.metrics import MetricsRegistry, get_metrics
from repro.obs.trace import Tracer, get_tracer
from repro.providers.base import CloudProvider, blob_checksum
from repro.util.deadline import Deadline, check_deadline, deadline_scope
from repro.util.rng import SeedLike, derive_rng

log = logging.getLogger(__name__)


@dataclass
class WireFaults:
    """Wire-level fault injection for a :class:`ChunkServer`.

    Where :class:`~repro.providers.chaos.ChaosProvider` faults the storage
    *semantics*, these hooks fault the *transport*: the backend has already
    executed the request (or not), and the failure happens on the way back
    to the client -- exactly the ambiguity real networks produce.

    * ``stall_rate`` / ``stall_s`` -- the response is delayed ``stall_s``
      seconds (exercises client socket timeouts);
    * ``drop_rate`` -- the connection is closed without answering (the
      client cannot tell whether the request executed);
    * ``corrupt_rate`` -- the response frame's CRC field is flipped, so the
      client detects a damaged frame and must retry.

    Draws are seeded, so a server's fault schedule is reproducible for a
    fixed request sequence.  Counters record what was injected.

    ``key_prefix`` scopes the faults to requests whose (innermost) key
    starts with the prefix -- the chaos drills use the fleet's
    ``fleet/<shard>/`` namespace prefixes to stall exactly one shard's
    traffic over a shared physical fleet.  Draws always advance regardless
    of the key, so a fixed seed yields the same schedule whether or not a
    prefix filters the injection.
    """

    stall_rate: float = 0.0
    stall_s: float = 0.05
    drop_rate: float = 0.0
    corrupt_rate: float = 0.0
    seed: SeedLike = None
    key_prefix: str = ""

    def __post_init__(self) -> None:
        for attr in ("stall_rate", "drop_rate", "corrupt_rate"):
            value = getattr(self, attr)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{attr} must be in [0, 1], got {value}")
        if self.stall_s < 0:
            raise ValueError(f"stall_s must be >= 0, got {self.stall_s}")
        self._rng = derive_rng(self.seed)
        self._lock = threading.Lock()
        self.injected: dict[str, int] = {"stall": 0, "drop": 0, "corrupt": 0}

    def draw(self, key: str = "") -> str | None:
        """Advance the schedule one response; returns the fault to inject."""
        with self._lock:
            r_stall = float(self._rng.random())
            r_drop = float(self._rng.random())
            r_corrupt = float(self._rng.random())
            fault = None
            if r_drop < self.drop_rate:
                fault = "drop"
            elif r_corrupt < self.corrupt_rate:
                fault = "corrupt"
            elif r_stall < self.stall_rate:
                fault = "stall"
            if fault is not None and self.key_prefix and not key.startswith(
                self.key_prefix
            ):
                fault = None  # out of scope; draws advanced all the same
            if fault is not None:
                self.injected[fault] += 1
            return fault


@dataclass
class StreamSession:
    """Per-connection stream-upload state (see ``OpCode.STREAM_PUT``).

    ``staged`` holds keys written by the currently-open (uncommitted)
    stream window; STREAM_END empties it, and a connection that dies with
    keys still staged gets them rolled back (deleted) by the server.
    """

    id: int
    open: bool = False
    staged: list[str] = field(default_factory=list)


class RequestEngine:
    """Wire-request dispatch shared by the threaded and asyncio servers.

    Everything between "a decoded request frame arrived" and "these are
    the response frames" lives here -- envelope unwrapping, backend
    serialization, error-to-status translation, stream sessions -- so
    :class:`ChunkServer` and
    :class:`~repro.net.async_server.AsyncChunkServer` answer every request
    byte-identically and cannot drift apart.  Subclasses own the
    networking (threads vs. an event loop) and call :meth:`_init_engine`
    once, then :meth:`_dispatch_multi` per request.
    """

    def _init_engine(
        self,
        backend: CloudProvider,
        metrics: MetricsRegistry | None,
        tracer: Tracer | None,
    ) -> None:
        self.backend = backend
        self.metrics = metrics if metrics is not None else get_metrics()
        self.tracer = tracer if tracer is not None else get_tracer()
        # Serializes backend access: connection handlers run concurrently
        # but the wrapped backends make no thread-safety promises.
        self._backend_lock = threading.Lock()
        # key -> id of the *latest* stream session that staged it (guarded
        # by the backend lock).  Rollback only deletes keys still owned by
        # the dying session, so a client retry that re-staged the same keys
        # over a new connection cannot lose data to the old connection's
        # late rollback.
        self._stream_owners: dict[str, int] = {}
        self._session_ids = itertools.count(1)

    def _new_session(self) -> StreamSession:
        return StreamSession(id=next(self._session_ids))

    @staticmethod
    def _fault_key(frame: Frame) -> str:
        """The innermost request key, for prefix-scoped fault injection."""
        try:
            inner = frame
            while inner.code in (OpCode.DEADLINE, OpCode.TRACED):
                if inner.code == OpCode.DEADLINE:
                    _, inner = decode_deadline_request(inner.payload)
                else:
                    _, inner = decode_traced_request(inner.payload)
            return inner.key
        except Exception:  # noqa: BLE001 - malformed envelope, no scoping
            return frame.key

    def _dispatch_multi(
        self, frame: Frame, session: StreamSession
    ) -> list[tuple[Status, str, bytes]]:
        """Route one request frame to its response frame *list*.

        Every op answers exactly one frame except STREAM_GET, whose
        response is a count header followed by one frame per key.
        """
        if frame.code == OpCode.STREAM_GET:
            return self._dispatch_stream_get(frame)
        if frame.code in STREAM_OPS:
            return [self._dispatch_stream(frame, session)]
        return [self._dispatch(frame)]

    def _dispatch(self, frame: Frame) -> tuple[Status, str, bytes]:
        """Run one request against the backend; never raises."""
        if frame.code == OpCode.DEADLINE:
            return self._dispatch_deadline(frame)
        if frame.code == OpCode.TRACED:
            return self._dispatch_traced(frame)
        if frame.code in STREAM_OPS:
            # Only reachable via an envelope (bare stream frames route
            # through _dispatch_multi): a multi-frame stream response
            # cannot nest inside a single envelope response.
            message = (
                f"stream op {OpCode(frame.code).name} cannot ride inside "
                "a TRACED/DEADLINE envelope"
            )
            return Status.BAD_REQUEST, frame.key, message.encode("utf-8")
        op_label = (
            OpCode(frame.code).name
            if frame.code in OpCode._value2member_map_
            else f"{frame.code:#x}"
        )
        t0 = time.perf_counter()
        try:
            # The span is a shared no-op unless this request arrived inside
            # a TRACED envelope (which opened the server-side trace).
            with self.tracer.span("server.backend", op=op_label):
                with self._backend_lock:
                    # Re-check after any wait for the backend lock: the
                    # budget may have drained while this request queued.
                    check_deadline(f"server {op_label}")
                    result = self._handle(frame)
        except Exception as exc:  # noqa: BLE001 - must answer, not crash
            result = status_for_error(exc), frame.key, str(exc).encode("utf-8")
        if result[0] == Status.DEADLINE_EXCEEDED:
            self.metrics.counter(
                "net_server_deadline_exceeded_total", op=op_label
            ).inc()
        self.metrics.counter(
            "net_server_requests_total",
            op=op_label,
            status=Status(result[0]).name,
        ).inc()
        self.metrics.histogram(
            "net_server_request_seconds", op=op_label
        ).observe(time.perf_counter() - t0)
        return result

    def _dispatch_deadline(self, frame: Frame) -> tuple[Status, str, bytes]:
        """Unwrap a DEADLINE envelope and serve the inner request under it.

        The wire carries only the remaining budget (milliseconds); it is
        re-anchored against this process's monotonic clock here.  The
        response is the inner response frame directly -- a deadline has
        nothing to report back -- so error semantics and the TRACED
        nesting both work unchanged underneath.
        """
        try:
            budget_ms, inner = decode_deadline_request(frame.payload)
        except Exception as exc:  # noqa: BLE001 - must answer, not crash
            return status_for_error(exc), frame.key, str(exc).encode("utf-8")
        if budget_ms <= 0:
            self.metrics.counter(
                "net_server_deadline_exceeded_total", op="DEADLINE"
            ).inc()
            return (
                Status.DEADLINE_EXCEEDED,
                inner.key,
                b"deadline expired before the server started",
            )
        with deadline_scope(Deadline.after(budget_ms / 1000.0)):
            return self._dispatch(inner)

    def _dispatch_traced(self, frame: Frame) -> tuple[Status, str, bytes]:
        """Unwrap a TRACED envelope: trace the inner request, ship spans back.

        The envelope answers OK whenever it was decodable; the inner
        response frame (nested in the payload) carries the operation's
        real status, so error semantics match the untraced path exactly.
        """
        try:
            context, inner = decode_traced_request(frame.payload)
        except Exception as exc:  # noqa: BLE001 - must answer, not crash
            return status_for_error(exc), frame.key, str(exc).encode("utf-8")
        op_label = (
            OpCode(inner.code).name
            if inner.code in OpCode._value2member_map_
            else f"{inner.code:#x}"
        )
        with self.tracer.serve_remote(
            context, f"server.{op_label}", backend=self.backend.name
        ):
            status, key, payload = self._dispatch(inner)
        records = self.tracer.drain_remote(context.partition(":")[0])
        return Status.OK, "", encode_traced_response(
            json.dumps(records).encode("utf-8"),
            encode_frame(status, key=key, payload=payload),
        )

    def _dispatch_stream(
        self, frame: Frame, session: StreamSession
    ) -> tuple[Status, str, bytes]:
        """Serve one STREAM_PUT/STREAM_SEG/STREAM_END frame; never raises.

        Accounting is deliberately lighter than :meth:`_dispatch`'s: a
        stream window produces one frame per shard, so per-frame latency
        histograms would dominate the served work.  Segments get a
        request counter; the open/commit frames bound the session anyway.
        """
        op_label = OpCode(frame.code).name
        try:
            with self._backend_lock:
                check_deadline(f"server {op_label}")
                result = self._handle_stream(frame, session)
        except Exception as exc:  # noqa: BLE001 - must answer, not crash
            result = status_for_error(exc), frame.key, str(exc).encode("utf-8")
        self.metrics.counter(
            "net_server_requests_total",
            op=op_label,
            status=Status(result[0]).name,
        ).inc()
        return result

    def _handle_stream(
        self, frame: Frame, session: StreamSession
    ) -> tuple[Status, str, bytes]:
        op = frame.code
        if op == OpCode.STREAM_PUT:
            if session.open:
                raise ProtocolError("stream session already open")
            session.open = True
            return Status.OK, "", b""
        if not session.open:
            raise ProtocolError(
                f"{OpCode(op).name} without an open stream session "
                "(send STREAM_PUT first)"
            )
        if op == OpCode.STREAM_SEG:
            self.backend.put(frame.key, frame.payload)
            session.staged.append(frame.key)
            self._stream_owners[frame.key] = session.id
            return Status.OK, frame.key, blob_checksum(frame.payload).encode()
        # STREAM_END: commit -- staged keys stop being rollback candidates.
        count = len(session.staged)
        for key in session.staged:
            if self._stream_owners.get(key) == session.id:
                del self._stream_owners[key]
        session.staged.clear()
        session.open = False
        return Status.OK, "", encode_stream_count(count)

    def _dispatch_stream_get(
        self, frame: Frame
    ) -> list[tuple[Status, str, bytes]]:
        """Answer STREAM_GET: a count header frame, then one frame per key.

        Objects are fetched one at a time and never joined into an
        aggregate payload, so the response list holds exactly the window
        the client asked for and nothing bigger.
        """
        t0 = time.perf_counter()
        try:
            keys = decode_keys(frame.payload)
        except Exception as exc:  # noqa: BLE001 - must answer, not crash
            return [(status_for_error(exc), frame.key, str(exc).encode("utf-8"))]
        responses: list[tuple[Status, str, bytes]] = [
            (Status.OK, "", encode_stream_count(len(keys)))
        ]
        with self.tracer.span("server.backend", op="STREAM_GET"):
            with self._backend_lock:
                for key in keys:
                    try:
                        check_deadline("STREAM_GET item")
                        responses.append(
                            (Status.OK, key, self.backend.get(key))
                        )
                    except Exception as exc:  # noqa: BLE001 - per-item verdicts
                        responses.append(
                            (status_for_error(exc), key, str(exc).encode("utf-8"))
                        )
        self.metrics.counter(
            "net_server_requests_total", op="STREAM_GET", status="OK"
        ).inc()
        self.metrics.histogram(
            "net_server_request_seconds", op="STREAM_GET"
        ).observe(time.perf_counter() - t0)
        return responses

    def _rollback_stream(self, session: StreamSession) -> None:
        """Delete segments staged by a session that died before STREAM_END.

        This is what makes a mid-stream sender crash leave no partial
        window behind.  Only keys still owned by this session are touched:
        a retry may have re-staged (and even committed) the same keys over
        a new connection, and that data must survive this cleanup.
        """
        if not session.staged:
            session.open = False
            return
        with self._backend_lock:
            keys = [
                key
                for key in session.staged
                if self._stream_owners.get(key) == session.id
            ]
            for key in keys:
                del self._stream_owners[key]
            for key in keys:
                try:
                    self.backend.delete(key)
                except Exception:  # noqa: BLE001 - best-effort cleanup
                    log.debug(
                        "stream rollback: could not delete %r",
                        key,
                        exc_info=True,
                    )
        session.staged.clear()
        session.open = False
        if keys:
            self.metrics.counter("net_server_stream_rollbacks_total").inc()
            log.warning(
                "chunk server %r rolled back %d uncommitted stream segment(s)",
                self.backend.name,
                len(keys),
            )

    def _handle(self, frame: Frame) -> tuple[Status, str, bytes]:
        op = frame.code
        if op == OpCode.PING:
            return Status.OK, "", frame.payload  # echo
        if op == OpCode.PUT:
            self.backend.put(frame.key, frame.payload)
            # Checksum echo: the client verifies the server stored exactly
            # the bytes it sent.
            return Status.OK, frame.key, blob_checksum(frame.payload).encode()
        if op == OpCode.GET:
            return Status.OK, frame.key, self.backend.get(frame.key)
        if op == OpCode.DELETE:
            self.backend.delete(frame.key)
            return Status.OK, frame.key, b""
        if op == OpCode.HEAD:
            return Status.OK, frame.key, encode_stat(self.backend.head(frame.key))
        if op == OpCode.KEYS:
            return Status.OK, "", encode_keys(self.backend.keys())
        if op == OpCode.MULTI_PUT:
            # One frame, many objects.  Item failures become per-item
            # statuses -- the batch always answers, so the client can tell
            # "shard 3 failed" apart from "the whole provider is dark".
            results: list[tuple[int, bytes]] = []
            for key, data in decode_multi_put(frame.payload):
                # A long batch must not outlive its caller: bail between
                # items once the propagated budget is gone (items already
                # stored stay stored -- same ambiguity as a dropped reply).
                check_deadline("MULTI_PUT item")
                try:
                    self.backend.put(key, data)
                    results.append(
                        (int(Status.OK), blob_checksum(data).encode())
                    )
                except Exception as exc:  # noqa: BLE001 - per-item verdicts
                    results.append(
                        (int(status_for_error(exc)), str(exc).encode("utf-8"))
                    )
            return Status.OK, "", encode_batch_results(results)
        if op == OpCode.MULTI_GET:
            results = []
            for key in decode_keys(frame.payload):
                check_deadline("MULTI_GET item")
                try:
                    results.append((int(Status.OK), self.backend.get(key)))
                except Exception as exc:  # noqa: BLE001 - per-item verdicts
                    results.append(
                        (int(status_for_error(exc)), str(exc).encode("utf-8"))
                    )
            return Status.OK, "", encode_batch_results(results)
        raise ProtocolError(f"unknown op code {op:#x}")


class ChunkServer(RequestEngine):
    """TCP front-end for one provider backend.

    Usable as a context manager; ``port=0`` (the default) binds an
    ephemeral port, readable from :attr:`port` after :meth:`start`.

    Admission control: instead of one unbounded thread per connection, a
    bounded pool of ``max_workers`` threads serves connections popped from
    a bounded accept queue of ``accept_queue`` slots.  When both are full
    the server *sheds*: the new connection is answered with a single
    ``RESOURCE_EXHAUSTED`` frame carrying a retry-after hint and closed,
    rather than accepted-and-stalled -- the client learns immediately that
    it should back off, and the server's memory/thread footprint stays
    bounded no matter the offered load.
    """

    def __init__(
        self,
        backend: CloudProvider,
        host: str = "127.0.0.1",
        port: int = 0,
        wire_faults: WireFaults | None = None,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        max_workers: int = 32,
        accept_queue: int = 64,
        shed_retry_after: float = 0.1,
    ) -> None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if accept_queue < 1:
            raise ValueError(f"accept_queue must be >= 1, got {accept_queue}")
        if shed_retry_after < 0:
            raise ValueError(
                f"shed_retry_after must be >= 0, got {shed_retry_after}"
            )
        self._init_engine(backend, metrics, tracer)
        self.wire_faults = wire_faults
        self.host = host
        self.max_workers = max_workers
        self.shed_retry_after = shed_retry_after
        self._requested_port = port
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._workers: list[threading.Thread] = []
        self._conn_queue: queue.Queue[socket.socket | None] = queue.Queue(
            maxsize=accept_queue
        )
        self._connections: set[socket.socket] = set()
        self._state_lock = threading.Lock()
        self._running = False
        self.requests_served = 0
        self.requests_shed = 0

    # -- lifecycle ---------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (only meaningful after :meth:`start`)."""
        if self._listener is None:
            return self._requested_port
        return self._listener.getsockname()[1]

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    @property
    def running(self) -> bool:
        return self._running

    def start(self) -> "ChunkServer":
        """Bind the port and begin accepting connections in the background."""
        if self._running:
            raise RuntimeError(f"chunk server {self.backend.name!r} already running")
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self._requested_port))
        listener.listen()
        self._listener = listener
        self._running = True
        self._workers = [
            threading.Thread(
                target=self._worker_loop,
                name=f"chunk-worker-{self.backend.name}-{i}",
                daemon=True,
            )
            for i in range(self.max_workers)
        ]
        for worker in self._workers:
            worker.start()
        self._accept_thread = threading.Thread(
            target=self._accept_loop,
            name=f"chunk-server-{self.backend.name}",
            daemon=True,
        )
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        """Stop accepting, sever live connections, release the port."""
        if not self._running:
            return
        self._running = False
        listener, self._listener = self._listener, None
        if listener is not None:
            port = listener.getsockname()[1]
            # A plain close() does not wake a thread blocked in accept();
            # shutdown() does on Linux, and the self-connection covers
            # platforms where it does not.
            try:
                listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                socket.create_connection((self.host, port), timeout=0.2).close()
            except OSError:
                pass
            listener.close()
        with self._state_lock:
            connections = list(self._connections)
            self._connections.clear()
        for conn in connections:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            conn.close()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
            self._accept_thread = None
        # Wake every worker with a sentinel, then drain whatever the accept
        # loop queued but no worker reached (those sockets are already
        # severed above; close() here releases the descriptors).
        for _ in self._workers:
            self._conn_queue.put(None)
        for worker in self._workers:
            worker.join(timeout=5.0)
        self._workers = []
        while True:
            try:
                leftover = self._conn_queue.get_nowait()
            except queue.Empty:
                break
            if leftover is not None:
                leftover.close()

    def __enter__(self) -> "ChunkServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- serving -----------------------------------------------------------

    def _accept_loop(self) -> None:
        listener = self._listener
        while self._running and listener is not None:
            try:
                conn, _peer = listener.accept()
            except OSError:
                break  # listener closed by stop()
            with self._state_lock:
                if not self._running:
                    conn.close()
                    break
                self._connections.add(conn)
            try:
                self._conn_queue.put_nowait(conn)
            except queue.Full:
                with self._state_lock:
                    self._connections.discard(conn)
                self._shed(conn)
                continue
            self.metrics.gauge("net_server_accept_queue_depth").set(
                self._conn_queue.qsize()
            )

    def _worker_loop(self) -> None:
        while True:
            conn = self._conn_queue.get()
            if conn is None:
                return  # stop() sentinel
            self.metrics.gauge("net_server_accept_queue_depth").set(
                self._conn_queue.qsize()
            )
            try:
                self._serve_connection(conn)
            except Exception:  # noqa: BLE001 -- a pooled worker must survive
                log.exception(
                    "chunk server %r connection handler failed",
                    self.backend.name,
                )

    def _shed(self, conn: socket.socket) -> None:
        """Refuse a connection at admission: one shed frame, then close.

        The client gets a definitive "overloaded, come back in ~N seconds"
        instead of a socket that accepts requests and never answers them.
        """
        self.requests_shed += 1
        self.metrics.counter("net_server_shed_total").inc()
        hint = encode_retry_hint(
            self.shed_retry_after,
            f"server {self.backend.name!r} overloaded: accept queue full",
        )
        try:
            conn.settimeout(1.0)
            send_frame(conn, Status.RESOURCE_EXHAUSTED, payload=hint.encode())
        except OSError:
            pass
        finally:
            conn.close()

    def _serve_connection(self, conn: socket.socket) -> None:
        session = self._new_session()
        rfile = None
        try:
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            # Buffered reader: a frame otherwise costs two recv() syscalls
            # (header, body); buffering coalesces them, which is what keeps
            # one-frame-per-shard streaming cheap.
            rfile = conn.makefile("rb")
            bytes_in = self.metrics.counter(
                "net_server_wire_bytes_total", direction="in"
            )
            bytes_out = self.metrics.counter(
                "net_server_wire_bytes_total", direction="out"
            )
            # STREAM_SEG acks held back for coalescing: a stream window is
            # one tiny frame per shard, and a send syscall per ack would
            # dominate the served work.  Acks are appended here and flushed
            # -- in FIFO order, before any other response -- once the
            # socket has no more input ready (a sender blocked on its ack
            # window stops sending, so the idle check can never deadlock)
            # or the backlog hits the client's ack window.
            held_acks: list[bytes | memoryview] = []
            held_count = 0
            while self._running:
                try:
                    frame = read_frame(rfile)
                except ProtocolError as exc:
                    # Can't trust the stream position any more: answer if
                    # possible, then hang up.
                    try:
                        if held_acks:
                            sendmsg_all(conn, held_acks)
                            held_acks = []
                        send_frame(conn, Status.BAD_REQUEST, payload=str(exc).encode())
                    except OSError:
                        pass
                    return
                if frame is None:
                    return  # clean EOF
                bytes_in.inc(
                    HEADER.size + len(frame.key.encode()) + len(frame.payload)
                )
                responses = self._dispatch_multi(frame, session)
                bytes_out.inc(
                    sum(
                        HEADER.size + len(key.encode()) + len(payload)
                        for _, key, payload in responses
                    )
                )
                fault = (
                    self.wire_faults.draw(self._fault_key(frame))
                    if self.wire_faults is not None
                    else None
                )
                if fault == "drop":
                    # The backend already executed the request; the client
                    # never hears about it (ambiguous-outcome failure).
                    return
                if fault == "stall":
                    time.sleep(self.wire_faults.stall_s)
                if (
                    frame.code == OpCode.STREAM_SEG
                    and fault is None
                    and len(responses) == 1
                ):
                    status, key, payload = responses[0]
                    held_acks.extend(
                        frame_segments(status, key=key, payload=payload)
                    )
                    held_count += 1
                    self.requests_served += 1
                    if held_count < 64 and select.select(
                        [conn], [], [], 0
                    )[0]:
                        continue  # more input pending: keep coalescing
                    sendmsg_all(conn, held_acks)
                    held_acks = []
                    held_count = 0
                    continue
                if held_acks:
                    sendmsg_all(conn, held_acks)
                    held_acks = []
                    held_count = 0
                if fault == "corrupt":
                    status, key, payload = responses[0]
                    raw = bytearray(encode_frame(status, key=key, payload=payload))
                    raw[10] ^= 0xFF  # flip one CRC byte: detectable damage
                    conn.sendall(bytes(raw))
                    responses = responses[1:]
                if len(responses) == 1:
                    status, key, payload = responses[0]
                    send_frame(conn, status, key=key, payload=payload)
                else:
                    # Multi-frame answers (STREAM_GET) ship as one
                    # scatter-gather send instead of a syscall per frame.
                    segments: list[bytes | memoryview] = []
                    for status, key, payload in responses:
                        segments.extend(
                            frame_segments(status, key=key, payload=payload)
                        )
                    sendmsg_all(conn, segments)
                self.requests_served += 1
        except ProtocolError as exc:
            # Response-path framing failure (e.g. an aggregate MULTI_GET or
            # traced payload over MAX_PAYLOAD).  encode_frame raises before
            # any bytes hit the wire, so a small error frame is still in
            # sync -- answer it, then hang up, instead of letting the
            # exception kill a pooled worker.
            try:
                send_frame(
                    conn, Status.INTERNAL, payload=str(exc).encode("utf-8")
                )
            except OSError:
                pass
        except OSError:
            pass  # peer vanished / we are shutting down
        finally:
            self._rollback_stream(session)
            if rfile is not None:
                try:
                    rfile.close()
                except OSError:
                    pass
            with self._state_lock:
                self._connections.discard(conn)
            conn.close()
