"""``RemoteProvider``: the full ``CloudProvider`` contract over a socket.

The distributor never learns it is talking across a network: a
``RemoteProvider`` keyed into the registry behaves exactly like the
in-process backends -- same methods, same exception types -- but every
operation becomes a framed request to a :class:`~repro.net.server.ChunkServer`.

Failure handling mirrors a production object-store client:

* per-operation socket timeouts (a hung server cannot wedge the distributor);
* bounded exponential-backoff retries on *transport* failures (refused
  connection, reset, timeout) -- retried operations are idempotent at the
  chunk layer because ``put`` overwrites and ``get``/``head``/``keys`` read;
* wire error statuses translated back into the :mod:`repro.core.errors`
  hierarchy, so RAID degraded reads and repair treat a dead server exactly
  like a dead simulated provider.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

from repro.core.errors import (
    BlobCorruptedError,
    DeadlineExceeded,
    ProviderError,
    ProviderUnavailableError,
    ResourceExhaustedError,
)
from repro.net.pool import ConnectionPool, StaleConnectionError, classify_stale
from repro.net.protocol import (
    HEADER,
    MAX_BUDGET_MS,
    Frame,
    OpCode,
    ProtocolError,
    Status,
    decode_batch_results,
    decode_keys,
    decode_stat,
    decode_stream_count,
    decode_traced_response,
    encode_deadline_request,
    encode_frame,
    encode_keys,
    encode_multi_put_parts,
    encode_traced_request,
    error_for_status,
    frame_segments,
    frame_segments_multi,
    read_frame,
    recv_frame,
    sendmsg_all,
)
from repro.net.resilience import current_retry_budget
from repro.util.deadline import Deadline, current_deadline
from repro.obs.events import EventLog, get_events
from repro.obs.metrics import MetricsRegistry, get_metrics
from repro.obs.trace import Tracer, get_tracer
from repro.providers.base import BlobStat, CloudProvider, blob_checksum

#: Soft cap on one MULTI_PUT/MULTI_GET frame's payload.  Oversized batches
#: are split into several frames *pipelined* on one connection (all requests
#: written before the responses are read), so splitting costs no extra
#: round-trips.  Well under protocol.MAX_PAYLOAD so per-item framing
#: overhead can never push a frame over the hard limit.
BATCH_BYTES = 32 * 1024 * 1024

#: Cap on items per batch frame, bounding server-side decode allocations.
BATCH_ITEMS = 1024

#: Max unacknowledged STREAM_SEG frames in flight during a stream session.
#: Acks are tiny (~100 bytes), so this bounds the server's ack backlog to a
#: few kilobytes -- far below any socket buffer -- while still letting the
#: sender run a full window ahead of the receiver.
STREAM_ACK_WINDOW = 64

#: STREAM_SEG frames coalesced into one sendmsg() call.  Segments are tiny
#: (a shard of one PL-sized chunk), so a syscall per frame would dominate
#: the wire phase; batching keeps the send path at ~one syscall per ack
#: window.  Must not exceed STREAM_ACK_WINDOW or the ack drain between
#: batches could not keep the in-flight count bounded.
STREAM_SEND_BATCH = STREAM_ACK_WINDOW


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff for transport-level failures.

    Attempt *i* (0-based) sleeps ``min(max_delay, base_delay * 2**i)``
    before retrying; after *attempts* total tries the operation fails with
    :class:`ProviderUnavailableError`.
    """

    attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")

    def delay(self, attempt: int) -> float:
        return min(self.max_delay, self.base_delay * (2**attempt))


class RemoteProvider(CloudProvider):
    """Socket-backed provider client with pooling, timeouts and retries."""

    def __init__(
        self,
        name: str,
        host: str,
        port: int,
        *,
        op_timeout: float = 10.0,
        connect_timeout: float = 2.0,
        retry: RetryPolicy | None = None,
        pool_size: int = 4,
        failfast_window: float = 0.0,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        events: EventLog | None = None,
    ) -> None:
        super().__init__(name)
        if op_timeout <= 0:
            raise ValueError(f"op_timeout must be positive, got {op_timeout}")
        if failfast_window < 0:
            raise ValueError(
                f"failfast_window must be >= 0, got {failfast_window}"
            )
        self.host = host
        self.port = port
        self.op_timeout = op_timeout
        self.retry = retry or RetryPolicy()
        self.failfast_window = failfast_window
        self.metrics = metrics if metrics is not None else get_metrics()
        self.tracer = tracer if tracer is not None else get_tracer()
        self.events = events if events is not None else get_events()
        self._down_until = 0.0
        # Whether the server understands TRACED envelopes: None until the
        # first traced exchange answers, then cached for the connection's
        # lifetime (a pre-telemetry server never starts understanding it
        # mid-flight, and a rolling upgrade recreates the provider).
        self._server_traced: bool | None = None
        # Same tri-state for the DEADLINE envelope (an older server bounces
        # it with BAD_REQUEST "unknown op code"; we then stop sending it).
        self._server_deadline: bool | None = None
        # And for the STREAM_* ops: an older server bounces every stream
        # frame the same way, and the client falls back to MULTI_PUT /
        # MULTI_GET batches for this provider's lifetime.
        self._server_stream: bool | None = None
        self.pool = ConnectionPool(
            host, port, size=pool_size, connect_timeout=connect_timeout,
            metrics=self.metrics, events=self.events,
        )

    # -- transport ---------------------------------------------------------

    def _trace_context(self) -> str | None:
        """The active trace context, unless the server is known untraced."""
        if self._server_traced is False:
            return None
        return self.tracer.wire_context()

    def _unwrap_traced(self, frame: Frame) -> Frame | None:
        """Inner frame of a TRACED response; ``None`` on server downgrade.

        An old server answers a TRACED envelope with BAD_REQUEST ("unknown
        op code") and keeps the connection in sync, so ``None`` tells the
        caller to resend plainly on the same socket.  Any shipped span
        records are grafted into the active trace here.
        """
        if frame.code == Status.BAD_REQUEST and b"unknown op code" in frame.payload:
            return None
        if frame.code != Status.OK:
            return frame  # envelope-level error; surfaces like any other
        records, inner = decode_traced_response(frame.payload)
        if records:
            self.tracer.attach_remote(records)
        return inner

    @staticmethod
    def _classify(exc: Exception, fresh: bool) -> Exception:
        """A transport failure on a *reused* socket is pool staleness.

        The server may have restarted since the socket was parked; the
        failure says nothing about its current health, so it is re-raised
        as :class:`StaleConnectionError` -- redialed for free by
        ``_with_retries`` instead of burning retry budget or feeding
        false negatives to circuit breakers and health monitors.  The
        rule itself lives in :func:`repro.net.pool.classify_stale`, shared
        with the asyncio client so the two paths cannot drift.
        """
        return classify_stale(exc, fresh)

    def _check_deadline(self, what: str) -> Deadline | None:
        """Ambient deadline, checked (and counted) before starting I/O."""
        deadline = current_deadline()
        if deadline is not None and deadline.expired:
            self.metrics.counter(
                "net_client_deadline_exceeded_total", provider=self.name
            ).inc()
            deadline.check(what)  # raises DeadlineExceeded
        return deadline

    def _op_timeout(self, deadline: Deadline | None) -> float:
        """Socket timeout for one exchange: op_timeout capped by the budget."""
        if deadline is None:
            return self.op_timeout
        return deadline.timeout(cap=self.op_timeout)

    @staticmethod
    def _wrap_deadline(deadline: Deadline, frame_bytes: bytes) -> bytes:
        """Nest a complete frame inside a DEADLINE envelope frame."""
        budget_ms = max(1, min(MAX_BUDGET_MS, int(deadline.remaining() * 1000)))
        return encode_frame(
            OpCode.DEADLINE,
            payload=encode_deadline_request(budget_ms, frame_bytes),
        )

    @staticmethod
    def _deadline_bounced(frame: Frame) -> bool:
        """An old server answered the DEADLINE envelope with unknown-op."""
        return (
            frame.code == Status.BAD_REQUEST
            and b"unknown op code" in frame.payload
        )

    def _exchange(self, op: OpCode, key: str, payload: bytes) -> Frame:
        """One framed request/response on a pooled connection.

        The request may ride inside up to two envelopes, outermost first:
        DEADLINE (remaining budget) wrapping TRACED (trace context) wrapping
        the operation.  Either envelope downgrades independently when an
        older server bounces it with BAD_REQUEST "unknown op code" -- the
        stream stays in sync, so the request is resent one layer thinner on
        the same socket and the verdict is cached for this provider.
        """
        deadline = self._check_deadline(f"net.{op.name}")
        context = self._trace_context()
        send_deadline = deadline is not None and self._server_deadline is not False
        send_traced = context is not None
        with self.pool.lease(op=op.name) as leased:
            sock = leased.sock
            try:
                sock.settimeout(self._op_timeout(deadline))
                while True:
                    if send_traced or send_deadline:
                        # Envelope nesting needs the inner frame as one
                        # buffer; only enveloped sends pay the join.
                        frame_bytes = encode_frame(op, key=key, payload=payload)
                        if send_traced:
                            frame_bytes = encode_frame(
                                OpCode.TRACED,
                                payload=encode_traced_request(
                                    context, frame_bytes
                                ),
                            )
                        if send_deadline:
                            frame_bytes = self._wrap_deadline(
                                deadline, frame_bytes
                            )
                        sock.sendall(frame_bytes)
                    else:
                        # Bare sends go scatter-gather: header + payload
                        # view, no O(payload) copy.
                        sendmsg_all(
                            sock, frame_segments(op, key=key, payload=payload)
                        )
                    frame = recv_frame(sock)
                    if frame is None:
                        raise ProtocolError(
                            "server closed connection before responding"
                        )
                    if send_deadline and self._deadline_bounced(frame):
                        self._server_deadline = False
                        send_deadline = False
                        continue  # resend without the DEADLINE envelope
                    if send_deadline:
                        self._server_deadline = True
                    if send_traced:
                        inner = self._unwrap_traced(frame)
                        if inner is None:
                            self._server_traced = False
                            send_traced = False
                            continue  # resend without the TRACED envelope
                        self._server_traced = True
                        return inner
                    return frame
            except (OSError, ProtocolError) as exc:
                raise self._classify(exc, leased.fresh) from exc

    @staticmethod
    def _join_payload(payload) -> bytes:
        """Materialize a parts-list payload (envelope paths need one buffer)."""
        if isinstance(payload, list):
            return b"".join(payload)
        return payload

    @staticmethod
    def _payload_len(payload) -> int:
        if isinstance(payload, list):
            return sum(len(part) for part in payload)
        return len(payload)

    def _exchange_pipelined(
        self, requests: list[tuple[OpCode, str, bytes]]
    ) -> list[Frame]:
        """Pipeline several frames on one pooled connection.

        Every request is written before any response is read, so N frames
        cost one round-trip of latency instead of N.  Safe for the batch
        ops because their requests and responses are never both large
        (MULTI_PUT answers small status lists, MULTI_GET asks with small
        key lists), so the two directions cannot deadlock on full socket
        buffers.

        A request payload may be a list of buffer parts (see
        :func:`~repro.net.protocol.encode_multi_put_parts`); bare windows
        send the parts scatter-gather, enveloped windows join them.
        """
        deadline = self._check_deadline(f"net.{requests[0][0].name}")
        context = self._trace_context()
        send_deadline = deadline is not None and self._server_deadline is not False
        send_traced = context is not None
        with self.pool.lease(op=requests[0][0].name) as leased:
            sock = leased.sock
            try:
                sock.settimeout(self._op_timeout(deadline))
                while True:
                    if send_traced or send_deadline:
                        # Envelope nesting needs each inner frame as one
                        # buffer; only enveloped windows pay the joins.
                        for op, key, payload in requests:
                            frame_bytes = encode_frame(
                                op, key=key, payload=self._join_payload(payload)
                            )
                            if send_traced:
                                frame_bytes = encode_frame(
                                    OpCode.TRACED,
                                    payload=encode_traced_request(
                                        context, frame_bytes
                                    ),
                                )
                            if send_deadline:
                                frame_bytes = self._wrap_deadline(
                                    deadline, frame_bytes
                                )
                            sock.sendall(frame_bytes)
                    else:
                        # Bare windows go out as one scatter-gather list:
                        # small per-frame headers plus views of the callers'
                        # buffers, never a joined aggregate.
                        segments: list[bytes | memoryview] = []
                        for op, key, payload in requests:
                            if isinstance(payload, list):
                                segments.extend(
                                    frame_segments_multi(op, key, payload)
                                )
                            else:
                                segments.extend(
                                    frame_segments(op, key=key, payload=payload)
                                )
                        sendmsg_all(sock, segments)
                    frames: list[Frame] = []
                    deadline_bounced = False
                    traced_bounced = False
                    for _ in requests:
                        frame = recv_frame(sock)
                        if frame is None:
                            raise ProtocolError(
                                "server closed connection before responding"
                            )
                        if send_deadline and self._deadline_bounced(frame):
                            deadline_bounced = True
                            continue
                        if send_traced:
                            inner = self._unwrap_traced(frame)
                            if inner is None:
                                traced_bounced = True
                            else:
                                frames.append(inner)
                        else:
                            frames.append(frame)
                    # Old server: every envelope bounced but the stream is
                    # in sync -- replay the whole window one layer thinner
                    # on this same socket (idempotent at this layer).
                    if deadline_bounced:
                        self._server_deadline = False
                        send_deadline = False
                        continue
                    if send_deadline:
                        self._server_deadline = True
                    if traced_bounced:
                        self._server_traced = False
                        send_traced = False
                        continue
                    if send_traced:
                        self._server_traced = True
                    return frames
            except (OSError, ProtocolError) as exc:
                raise self._classify(exc, leased.fresh) from exc

    def _with_retries(self, exchange):
        """Run *exchange* under the retry budget and circuit breaker.

        Application-level error statuses (NOT_FOUND, CORRUPTED, ...) are
        definitive answers from a live server and are never retried; only
        connection failures, timeouts and malformed frames are.

        A :class:`StaleConnectionError` -- a *reused* pooled socket died
        while parked, typically because the server restarted -- is not a
        failure verdict at all: the remaining idle sockets are discarded
        and the exchange redials immediately, without consuming a retry
        attempt, sleeping, or (when the free redials are themselves
        exhausted, which needs a genuinely flapping server) opening the
        circuit any earlier than a plain transport failure would.

        With ``failfast_window > 0`` the client acts as a circuit breaker:
        after the retry budget is exhausted, further operations fail
        immediately for that many seconds instead of re-dialing a server
        known to be down -- a RAID degraded read over hundreds of chunks
        then pays the retry cost once, not once per chunk.

        Two cross-cutting limits bound the loop further when ambient scopes
        are active: an ambient :class:`~repro.net.resilience.RetryBudget`
        (shared by every hop of one logical request -- once it is spent,
        *no* hop retries any more, stopping retry storms at the source),
        and the ambient deadline (no sleep ever extends past it).  A
        ``RESOURCE_EXHAUSTED`` answer -- the server shed us at admission --
        is retried like a transport failure but honours the server's
        retry-after hint with jitter instead of our own backoff curve.
        """
        if self.failfast_window > 0 and time.monotonic() < self._down_until:
            raise ProviderUnavailableError(
                f"provider {self.name!r} at {self.host}:{self.port} "
                f"failing fast (circuit open)"
            )
        last_exc: Exception | None = None
        # One free redial per idle socket the pool could have handed us,
        # plus the one that failed: after discard_idle every subsequent
        # checkout dials fresh, so this bound is never hit by a healthy
        # restarted server -- only by a genuinely flapping one.
        stale_budget = self.pool.size + 1
        attempt = 0
        retry_after: float | None = None
        while True:
            retry_after = None
            try:
                result = exchange()
            except StaleConnectionError as exc:
                self.pool.discard_idle()
                self.metrics.counter(
                    "net_client_stale_connections_total", provider=self.name
                ).inc()
                if stale_budget > 0:
                    stale_budget -= 1
                    continue  # immediate redial; no budget consumed
                last_exc = exc
                attempt += 1
            except (OSError, ProtocolError) as exc:
                last_exc = exc
                attempt += 1
            else:
                shed = self._find_shed(result)
                if shed is None:
                    self._down_until = 0.0
                    return result
                # The server refused us at admission and closed the socket;
                # drop parked siblings (they are dead too) and back off for
                # roughly the hinted interval before trying again.
                self.pool.discard_idle()
                self.metrics.counter(
                    "net_client_shed_total", provider=self.name
                ).inc()
                last_exc = shed
                retry_after = shed.retry_after
                attempt += 1
            if attempt >= self.retry.attempts:
                break
            budget = current_retry_budget()
            if budget is not None and not budget.try_spend():
                self.metrics.counter(
                    "net_client_retry_budget_exhausted_total",
                    provider=self.name,
                ).inc()
                break
            self.metrics.counter(
                "net_client_retries_total", provider=self.name
            ).inc()
            if retry_after is not None:
                # Jitter the hint upward so a crowd of shed clients does
                # not return in one synchronized thundering herd.
                delay = retry_after * random.uniform(1.0, 1.5)
            else:
                delay = self.retry.delay(attempt - 1)
            deadline = current_deadline()
            if deadline is not None and deadline.remaining() <= delay:
                self.metrics.counter(
                    "net_client_deadline_exceeded_total", provider=self.name
                ).inc()
                raise DeadlineExceeded(
                    f"deadline expires before the next retry of provider "
                    f"{self.name!r} (backoff {delay:.3f}s)"
                ) from last_exc
            time.sleep(delay)
            # The server may have restarted; pre-restart sockets would
            # fail again and burn the remaining attempts.
            self.pool.discard_idle()
        if self.failfast_window > 0:
            self._down_until = time.monotonic() + self.failfast_window
            self.metrics.counter(
                "net_client_circuit_open_total", provider=self.name
            ).inc()
            self.events.emit(
                "circuit_open",
                level="warning",
                provider=self.name,
                window_s=self.failfast_window,
                error=str(last_exc),
            )
        if isinstance(last_exc, ResourceExhaustedError):
            raise last_exc  # keep the typed shed verdict (and its hint)
        raise ProviderUnavailableError(
            f"provider {self.name!r} at {self.host}:{self.port} unreachable "
            f"after {self.retry.attempts} attempt(s): {last_exc}"
        ) from last_exc

    @staticmethod
    def _find_shed(result) -> ResourceExhaustedError | None:
        """The shed verdict, if any frame of *result* was RESOURCE_EXHAUSTED.

        Stream exchanges return non-Frame shapes (``None`` on downgrade,
        per-item tuples on success), so anything without a status code is
        simply not a shed verdict.
        """
        frames = result if isinstance(result, list) else [result]
        for frame in frames:
            if getattr(frame, "code", None) == Status.RESOURCE_EXHAUSTED:
                error = error_for_status(
                    frame.code, frame.payload.decode("utf-8", "replace")
                )
                assert isinstance(error, ResourceExhaustedError)
                return error
        return None

    def _account(self, op: OpCode, sent: int, received: int, t0: float) -> None:
        """Per-opcode request count, wire bytes and latency for one exchange."""
        self.metrics.counter(
            "net_client_requests_total", op=op.name, provider=self.name
        ).inc()
        self.metrics.counter(
            "net_client_wire_bytes_total", direction="out"
        ).inc(sent)
        self.metrics.counter(
            "net_client_wire_bytes_total", direction="in"
        ).inc(received)
        self.metrics.histogram(
            "net_client_request_seconds", op=op.name
        ).observe(time.perf_counter() - t0)

    def _request(self, op: OpCode, key: str = "", payload: bytes = b"") -> Frame:
        """Exchange one frame with transport retries; raises on error status."""
        t0 = time.perf_counter()
        # The span is active while _exchange reads wire_context(), so
        # server-side spans shipped back parent under this net span.
        with self.tracer.span(f"net.{op.name}", provider=self.name):
            frame = self._with_retries(lambda: self._exchange(op, key, payload))
        self._account(
            op,
            sent=HEADER.size + len(key.encode()) + len(payload),
            received=HEADER.size + len(frame.key.encode()) + len(frame.payload),
            t0=t0,
        )
        if frame.code != Status.OK:
            if frame.code == Status.DEADLINE_EXCEEDED:
                self.metrics.counter(
                    "net_client_deadline_exceeded_total", provider=self.name
                ).inc()
            raise error_for_status(
                frame.code, frame.payload.decode("utf-8", "replace")
            )
        return frame

    def _request_batches(
        self, requests: list[tuple[OpCode, str, bytes]]
    ) -> list[Frame]:
        """Pipelined batch frames with transport retries.

        Retrying replays the whole window -- idempotent at this layer
        because PUT overwrites whole objects and GET reads.
        """
        t0 = time.perf_counter()
        with self.tracer.span(
            f"net.{requests[0][0].name}",
            provider=self.name,
            frames=len(requests),
        ):
            frames = self._with_retries(
                lambda: self._exchange_pipelined(requests)
            )
        for (op, key, payload), frame in zip(requests, frames):
            self.metrics.counter(
                "net_client_requests_total", op=op.name, provider=self.name
            ).inc()
            self.metrics.counter(
                "net_client_wire_bytes_total", direction="out"
            ).inc(HEADER.size + len(key.encode()) + self._payload_len(payload))
            self.metrics.counter(
                "net_client_wire_bytes_total", direction="in"
            ).inc(HEADER.size + len(frame.key.encode()) + len(frame.payload))
        # One latency sample per pipelined window (not per frame): the
        # frames share one round-trip, and N identical samples would skew
        # the histogram.
        self.metrics.histogram(
            "net_client_request_seconds", op=requests[0][0].name
        ).observe(time.perf_counter() - t0)
        for frame in frames:
            if frame.code != Status.OK:
                if frame.code == Status.DEADLINE_EXCEEDED:
                    self.metrics.counter(
                        "net_client_deadline_exceeded_total",
                        provider=self.name,
                    ).inc()
                raise error_for_status(
                    frame.code, frame.payload.decode("utf-8", "replace")
                )
        return frames

    def ping(self) -> float:
        """Round-trip one empty frame; returns the wall-clock seconds."""
        started = time.perf_counter()
        self._request(OpCode.PING, payload=b"ping")
        return time.perf_counter() - started

    def reset_circuit(self) -> None:
        """Forget a fail-fast verdict (e.g. the server is known restarted)."""
        self._down_until = 0.0

    def close(self) -> None:
        """Release every pooled connection."""
        self.pool.close()

    def __enter__(self) -> "RemoteProvider":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- CloudProvider interface -------------------------------------------

    def put(self, key: str, data: bytes) -> None:
        frame = self._request(OpCode.PUT, key=key, payload=bytes(data))
        echoed = frame.payload.decode("utf-8", "replace")
        if echoed != blob_checksum(data):
            # The transport CRC passed but the server stored something else:
            # end-to-end write verification failed.
            raise BlobCorruptedError(
                f"checksum echo mismatch from provider {self.name!r} "
                f"for key {key!r}"
            )

    def get(self, key: str) -> bytes:
        return self._request(OpCode.GET, key=key).payload

    def put_many(
        self, items: list[tuple[str, bytes]]
    ) -> list[ProviderError | None]:
        """Store many objects in one MULTI_PUT round-trip per batch frame.

        Transport failure raises (the whole window is in doubt); per-item
        backend failures come back as exceptions in the result list, so a
        partially failed batch still tells the caller exactly which shards
        need failover.
        """
        if not items:
            return []
        batches = self._split_batches(items, lambda item: len(item[1]))
        requests = [
            (OpCode.MULTI_PUT, "", encode_multi_put_parts(batch))
            for batch in batches
        ]
        frames = self._request_batches(requests)
        outcomes: list[ProviderError | None] = []
        for batch, frame in zip(batches, frames):
            results = decode_batch_results(frame.payload)
            if len(results) != len(batch):
                raise ProtocolError(
                    f"MULTI_PUT answered {len(results)} results for "
                    f"{len(batch)} items"
                )
            for (key, data), (status, body) in zip(batch, results):
                if status != Status.OK:
                    outcomes.append(
                        error_for_status(status, body.decode("utf-8", "replace"))
                    )
                elif body.decode("utf-8", "replace") != blob_checksum(data):
                    outcomes.append(
                        BlobCorruptedError(
                            f"checksum echo mismatch from provider "
                            f"{self.name!r} for key {key!r}"
                        )
                    )
                else:
                    outcomes.append(None)
        return outcomes

    def get_many(self, keys: list[str]) -> list["bytes | ProviderError"]:
        """Fetch many objects in one MULTI_GET round-trip per batch frame."""
        if not keys:
            return []
        batches = self._split_batches(keys, len)
        requests = [
            (OpCode.MULTI_GET, "", encode_keys(batch)) for batch in batches
        ]
        frames = self._request_batches(requests)
        outcomes: list[bytes | ProviderError] = []
        for batch, frame in zip(batches, frames):
            results = decode_batch_results(frame.payload)
            if len(results) != len(batch):
                raise ProtocolError(
                    f"MULTI_GET answered {len(results)} results for "
                    f"{len(batch)} keys"
                )
            for status, body in results:
                if status != Status.OK:
                    outcomes.append(
                        error_for_status(status, body.decode("utf-8", "replace"))
                    )
                else:
                    outcomes.append(body)
        return outcomes

    def _exchange_stream_put(self, items: list[tuple[str, bytes]]):
        """One stream-upload session (open, segments, commit) on a lease.

        Segments are pipelined behind the open frame with a sliding window
        of at most :data:`STREAM_ACK_WINDOW` unacknowledged frames, so a
        whole window costs ~1 round-trip of latency while the ack backlog
        stays bounded.  Returns per-item ``(status, body)`` pairs; the shed
        frame when the server refused us at admission (``_with_retries``
        turns that into hinted backoff); or ``None`` when the server
        predates streams -- every frame bounced BAD_REQUEST "unknown op
        code" with the connection drained and in sync, and the caller
        falls back to MULTI_PUT.
        """
        deadline = self._check_deadline("net.STREAM_PUT")
        with self.pool.lease(op="STREAM_PUT") as leased:
            sock = leased.sock
            try:
                sock.settimeout(self._op_timeout(deadline))
                rfile = sock.makefile("rb")
                try:
                    sent = 0
                    acked = 0
                    downgraded = False
                    shed: Frame | None = None
                    session_error: Frame | None = None
                    results: list[tuple[int, bytes]] = []

                    def read_ack() -> None:
                        nonlocal acked, downgraded, shed, session_error
                        frame = read_frame(rfile)
                        if frame is None:
                            raise ProtocolError(
                                "server closed connection mid-stream"
                            )
                        index = acked  # 0 = open ack, 1..N = segments, N+1 = end
                        acked += 1
                        if frame.code == Status.RESOURCE_EXHAUSTED:
                            shed = frame
                        elif (
                            frame.code == Status.BAD_REQUEST
                            and b"unknown op code" in frame.payload
                        ):
                            downgraded = True
                        elif 1 <= index <= len(items):
                            results.append((int(frame.code), frame.payload))
                        elif frame.code != Status.OK and session_error is None:
                            session_error = frame

                    sendmsg_all(sock, frame_segments(OpCode.STREAM_PUT))
                    sent += 1
                    batch: list[bytes | memoryview] = []
                    batched = 0
                    for key, data in items:
                        if downgraded or shed is not None:
                            break
                        batch.extend(
                            frame_segments(
                                OpCode.STREAM_SEG, key=key, payload=data
                            )
                        )
                        batched += 1
                        if batched >= STREAM_SEND_BATCH:
                            sendmsg_all(sock, batch)
                            sent += batched
                            batch.clear()
                            batched = 0
                            while sent - acked > STREAM_ACK_WINDOW:
                                read_ack()
                    if batched and not downgraded and shed is None:
                        sendmsg_all(sock, batch)
                        sent += batched
                        batch.clear()
                    if not downgraded and shed is None:
                        sendmsg_all(sock, frame_segments(OpCode.STREAM_END))
                        sent += 1
                    # Drain every outstanding ack so the connection is back
                    # in sync (a shed server closed it already; stop there).
                    while acked < sent and shed is None:
                        read_ack()
                    if shed is not None:
                        return shed
                    if downgraded:
                        return None
                    if session_error is not None:
                        raise error_for_status(
                            session_error.code,
                            session_error.payload.decode("utf-8", "replace"),
                        )
                    if len(results) != len(items):
                        raise ProtocolError(
                            f"stream session answered {len(results)} segment "
                            f"acks for {len(items)} segments"
                        )
                    return results
                finally:
                    rfile.close()
            except (OSError, ProtocolError) as exc:
                raise self._classify(exc, leased.fresh) from exc

    def _exchange_stream_get(self, keys: list[str]):
        """One STREAM_GET exchange: count header, then one frame per key.

        Returns the per-key frames; the shed frame on admission refusal;
        or ``None`` on old-server downgrade (caller falls back to
        MULTI_GET).
        """
        deadline = self._check_deadline("net.STREAM_GET")
        with self.pool.lease(op="STREAM_GET") as leased:
            sock = leased.sock
            try:
                sock.settimeout(self._op_timeout(deadline))
                sendmsg_all(
                    sock,
                    frame_segments(
                        OpCode.STREAM_GET, payload=encode_keys(keys)
                    ),
                )
                rfile = sock.makefile("rb")
                try:
                    header = read_frame(rfile)
                    if header is None:
                        raise ProtocolError(
                            "server closed connection before responding"
                        )
                    if header.code == Status.RESOURCE_EXHAUSTED:
                        return header
                    if (
                        header.code == Status.BAD_REQUEST
                        and b"unknown op code" in header.payload
                    ):
                        return None
                    if header.code != Status.OK:
                        raise error_for_status(
                            header.code,
                            header.payload.decode("utf-8", "replace"),
                        )
                    count = decode_stream_count(header.payload)
                    if count != len(keys):
                        raise ProtocolError(
                            f"STREAM_GET answered {count} frames for "
                            f"{len(keys)} keys"
                        )
                    frames: list[Frame] = []
                    for _ in range(count):
                        frame = read_frame(rfile)
                        if frame is None:
                            raise ProtocolError(
                                "server closed connection mid-stream"
                            )
                        frames.append(frame)
                    return frames
                finally:
                    rfile.close()
            except (OSError, ProtocolError) as exc:
                raise self._classify(exc, leased.fresh) from exc

    def put_stream(
        self, items: list[tuple[str, bytes]]
    ) -> list[ProviderError | None]:
        """Store many objects over one stream session (frame per shard).

        Same contract as :meth:`put_many` -- per-item outcomes, checksum
        echoes verified -- but neither side ever materializes the window
        into one aggregate buffer.  Falls back to :meth:`put_many`
        transparently when the server predates the stream ops.
        """
        if not items:
            return []
        if self._server_stream is False:
            return self.put_many(items)
        t0 = time.perf_counter()
        with self.tracer.span(
            "net.STREAM_PUT", provider=self.name, frames=len(items)
        ):
            result = self._with_retries(
                lambda: self._exchange_stream_put(items)
            )
        if result is None:
            self._server_stream = False
            return self.put_many(items)
        self._server_stream = True
        self._account(
            OpCode.STREAM_PUT,
            sent=sum(
                HEADER.size + len(key.encode()) + len(data)
                for key, data in items
            )
            + 2 * HEADER.size,
            received=sum(
                HEADER.size + len(key.encode()) + len(body)
                for (key, _), (_, body) in zip(items, result)
            )
            + 2 * HEADER.size,
            t0=t0,
        )
        outcomes: list[ProviderError | None] = []
        for (key, data), (status, body) in zip(items, result):
            if status != Status.OK:
                outcomes.append(
                    error_for_status(status, body.decode("utf-8", "replace"))
                )
            elif body.decode("utf-8", "replace") != blob_checksum(data):
                outcomes.append(
                    BlobCorruptedError(
                        f"checksum echo mismatch from provider "
                        f"{self.name!r} for key {key!r}"
                    )
                )
            else:
                outcomes.append(None)
        return outcomes

    def get_stream(self, keys: list[str]) -> list["bytes | ProviderError"]:
        """Fetch many objects as one frame per key (no aggregate payload).

        Same contract as :meth:`get_many`; falls back to it transparently
        when the server predates the stream ops.
        """
        if not keys:
            return []
        if self._server_stream is False:
            return self.get_many(keys)
        t0 = time.perf_counter()
        with self.tracer.span(
            "net.STREAM_GET", provider=self.name, frames=len(keys)
        ):
            frames = self._with_retries(
                lambda: self._exchange_stream_get(keys)
            )
        if frames is None:
            self._server_stream = False
            return self.get_many(keys)
        self._server_stream = True
        self._account(
            OpCode.STREAM_GET,
            sent=HEADER.size + sum(len(key.encode()) + 2 for key in keys) + 4,
            received=sum(
                HEADER.size + len(frame.key.encode()) + len(frame.payload)
                for frame in frames
            )
            + HEADER.size
            + 4,
            t0=t0,
        )
        outcomes: list[bytes | ProviderError] = []
        for frame in frames:
            if frame.code != Status.OK:
                outcomes.append(
                    error_for_status(
                        frame.code, frame.payload.decode("utf-8", "replace")
                    )
                )
            else:
                outcomes.append(frame.payload)
        return outcomes

    @staticmethod
    def _split_batches(items: list, weigh) -> list[list]:
        """Split *items* into frame-sized batches (bytes and count caps)."""
        batches: list[list] = []
        current: list = []
        current_bytes = 0
        for item in items:
            weight = weigh(item)
            if current and (
                current_bytes + weight > BATCH_BYTES
                or len(current) >= BATCH_ITEMS
            ):
                batches.append(current)
                current = []
                current_bytes = 0
            current.append(item)
            current_bytes += weight
        if current:
            batches.append(current)
        return batches

    def delete(self, key: str) -> None:
        self._request(OpCode.DELETE, key=key)

    def keys(self) -> list[str]:
        return decode_keys(self._request(OpCode.KEYS).payload)

    def head(self, key: str) -> BlobStat:
        frame = self._request(OpCode.HEAD, key=key)
        return decode_stat(key, frame.payload)
