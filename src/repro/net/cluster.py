"""Local chunk-server clusters: N socket providers in one process.

Tests, examples and benchmarks all need the same scaffolding -- start a
handful of :class:`ChunkServer` processes-worth of threads on localhost,
point a :class:`RemoteProvider` at each, and register them as a fleet the
distributor can stripe over.  :class:`LocalCluster` owns that lifecycle,
including killing and restarting individual servers to exercise the RAID
degraded-read and repair paths over a real transport.
"""

from __future__ import annotations

from repro.core.privacy import CostLevel, PrivacyLevel
from repro.net.remote import RemoteProvider, RetryPolicy
from repro.net.server import ChunkServer
from repro.providers.base import CloudProvider
from repro.providers.memory import InMemoryProvider
from repro.providers.registry import ProviderRegistry


class LocalCluster:
    """A fleet of localhost chunk servers plus their remote clients.

    ``backends`` defaults to in-memory stores named ``node0..node{n-1}``;
    pass explicit :class:`CloudProvider` instances (e.g. ``DiskProvider``)
    to persist across restarts.  ``server_cls`` picks the front-end --
    the threaded :class:`ChunkServer` (default) or the event-loop
    :class:`~repro.net.async_server.AsyncChunkServer`; both speak the
    same wire.  Usable as a context manager.
    """

    def __init__(
        self,
        count: int = 4,
        backends: list[CloudProvider] | None = None,
        *,
        host: str = "127.0.0.1",
        retry: RetryPolicy | None = None,
        op_timeout: float = 10.0,
        pool_size: int = 4,
        failfast_window: float = 0.0,
        server_cls: type = ChunkServer,
    ) -> None:
        if backends is not None:
            if not backends:
                raise ValueError("backends must be non-empty")
            self.backends = list(backends)
        else:
            if count < 1:
                raise ValueError(f"count must be >= 1, got {count}")
            self.backends = [InMemoryProvider(f"node{i}") for i in range(count)]
        self.host = host
        self.retry = retry or RetryPolicy(attempts=3, base_delay=0.02)
        self.op_timeout = op_timeout
        self.pool_size = pool_size
        self.failfast_window = failfast_window
        self.server_cls = server_cls
        self.servers: list = []
        self.providers: list[RemoteProvider] = []
        self._ports: list[int] = []

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "LocalCluster":
        """Bind every server and connect a remote client to each."""
        if self.servers:
            raise RuntimeError("cluster already started")
        try:
            for backend in self.backends:
                server = self.server_cls(backend, host=self.host).start()
                self.servers.append(server)
                self._ports.append(server.port)
                self.providers.append(
                    RemoteProvider(
                        backend.name,
                        self.host,
                        server.port,
                        retry=self.retry,
                        op_timeout=self.op_timeout,
                        pool_size=self.pool_size,
                        failfast_window=self.failfast_window,
                    )
                )
        except BaseException:
            self.stop()
            raise
        return self

    def stop(self) -> None:
        """Close every client and stop every server."""
        for provider in self.providers:
            provider.close()
        for server in self.servers:
            server.stop()
        self.servers.clear()
        self.providers.clear()
        self._ports.clear()

    def __enter__(self) -> "LocalCluster":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- fault injection ---------------------------------------------------

    def kill_server(self, index: int) -> None:
        """Stop one server (its backend keeps its objects); clients start
        failing with :class:`ProviderUnavailableError` after retries."""
        self.servers[index].stop()
        self.providers[index].pool.discard_idle()

    def restart_server(self, index: int) -> None:
        """Bring a killed server back on its original port."""
        server = self.servers[index]
        if server.running:
            raise RuntimeError(f"server {index} is still running")
        # Revive with the dead server's own class, so mixed fleets
        # (threaded + async front-ends) restart into the same shape.
        revived = type(server)(
            server.backend, host=self.host, port=self._ports[index]
        ).start()
        self.servers[index] = revived
        self.providers[index].reset_circuit()

    # -- registry ----------------------------------------------------------

    def build_registry(
        self,
        privacy_level: PrivacyLevel | int = PrivacyLevel.PRIVATE,
        cost_level: CostLevel | int = CostLevel.CHEAP,
    ) -> ProviderRegistry:
        """Register every remote provider into a fresh registry.

        All nodes get the same PL/CL -- localhost chunk servers are peers;
        heterogeneous fleets can register the providers themselves.
        """
        if not self.providers:
            raise RuntimeError("cluster is not started")
        registry = ProviderRegistry()
        for provider in self.providers:
            registry.register(provider, privacy_level, cost_level)
        return registry
