"""Gateway server: the fleet's tenant-facing API over TCP.

Where :class:`~repro.net.server.ChunkServer` speaks the chunk-level binary
protocol providers need, the gateway speaks a request/response protocol at
tenant granularity: newline-delimited JSON objects, one request per line,
file payloads base64-encoded.  The server is a thin shim -- every request
maps 1:1 onto a :class:`~repro.fleet.gateway.FleetGateway` method, so all
authentication, quota and routing behaviour is identical whether the
gateway is reached in-process or over the wire.

Errors travel as ``{"ok": false, "error": "<ExceptionName>", "message":
...}`` and are re-raised client-side as the matching
:mod:`repro.core.errors` type when one exists.
"""

from __future__ import annotations

import base64
import json
import logging
import queue
import socket
import threading

from repro.core import errors as core_errors
from repro.core.errors import (
    DeadlineExceeded,
    ReproError,
    RequestTooLargeError,
    ResourceExhaustedError,
)
from repro.fleet.gateway import FleetGateway
from repro.util.deadline import Deadline, current_deadline, deadline_scope

log = logging.getLogger(__name__)

_MAX_LINE = 256 << 20  # refuse absurd frames rather than swallowing RAM


class GatewayProtocolError(ReproError):
    """Malformed gateway request/response."""


class GatewayTimeoutError(ReproError):
    """A gateway exchange timed out; the connection was recycled."""


def _encode(obj: dict) -> bytes:
    return (json.dumps(obj, sort_keys=True) + "\n").encode("utf-8")


def _read_line(sock_file, max_line: int = _MAX_LINE) -> dict | None:
    # Read one byte past the cap: a line of exactly max_line bytes is
    # legal, anything longer is a typed refusal rather than a silent
    # truncation (which would desync the JSON stream).
    line = sock_file.readline(max_line + 1)
    if not line:
        return None
    if len(line) > max_line:
        raise RequestTooLargeError(
            f"gateway request line exceeds {max_line} bytes"
        )
    try:
        return json.loads(line)
    except json.JSONDecodeError as exc:
        raise GatewayProtocolError(f"bad gateway frame: {exc}") from exc


class GatewayServer:
    """Serves a :class:`FleetGateway` over newline-delimited JSON/TCP.

    Admission control mirrors :class:`~repro.net.server.ChunkServer`: a
    bounded pool of ``max_workers`` threads serves connections popped from
    a bounded accept queue; once both are full, new connections get one
    ``ResourceExhaustedError`` payload (with a ``retry_after`` hint) and
    are closed instead of being accepted-and-stalled.
    """

    def __init__(
        self,
        gateway: FleetGateway,
        host: str = "127.0.0.1",
        port: int = 0,
        max_workers: int = 16,
        accept_queue: int = 32,
        shed_retry_after: float = 0.1,
        max_line: int = _MAX_LINE,
    ) -> None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if accept_queue < 1:
            raise ValueError(f"accept_queue must be >= 1, got {accept_queue}")
        if max_line < 1:
            raise ValueError(f"max_line must be >= 1, got {max_line}")
        self.gateway = gateway
        self.host = host
        self.max_workers = max_workers
        self.shed_retry_after = shed_retry_after
        self.max_line = max_line
        self._requested_port = port
        self._sock: socket.socket | None = None
        self._workers: list[threading.Thread] = []
        self._accept_thread: threading.Thread | None = None
        self._conn_queue: queue.Queue[socket.socket | None] = queue.Queue(
            maxsize=accept_queue
        )
        self._connections: set[socket.socket] = set()
        self._state_lock = threading.Lock()
        self._running = False
        self.requests_shed = 0

    @property
    def metrics(self):
        return self.gateway.metrics

    @property
    def port(self) -> int:
        if self._sock is None:
            raise RuntimeError("server is not running")
        return self._sock.getsockname()[1]

    def start(self) -> "GatewayServer":
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((self.host, self._requested_port))
        sock.listen(32)
        self._sock = sock
        self._running = True
        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"gateway-worker-{i}", daemon=True
            )
            for i in range(self.max_workers)
        ]
        for worker in self._workers:
            worker.start()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="gateway-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        self._running = False
        listener, self._sock = self._sock, None
        if listener is not None:
            port = listener.getsockname()[1]
            # close() alone does not wake a thread blocked in accept();
            # shutdown() does on Linux, and the self-connection covers
            # platforms where it does not.
            try:
                listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                socket.create_connection((self.host, port), timeout=0.2).close()
            except OSError:
                pass
            listener.close()
        with self._state_lock:
            connections = list(self._connections)
            self._connections.clear()
        for conn in connections:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            conn.close()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
            self._accept_thread = None
        for _ in self._workers:
            self._conn_queue.put(None)
        for worker in self._workers:
            worker.join(timeout=5.0)
        self._workers = []
        while True:
            try:
                leftover = self._conn_queue.get_nowait()
            except queue.Empty:
                break
            if leftover is not None:
                leftover.close()

    def __enter__(self) -> "GatewayServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def _accept_loop(self) -> None:
        listener = self._sock
        while self._running and listener is not None:
            try:
                conn, _ = listener.accept()
            except OSError:
                return  # socket closed by stop()
            with self._state_lock:
                if not self._running:
                    conn.close()
                    return
                self._connections.add(conn)
            try:
                self._conn_queue.put_nowait(conn)
            except queue.Full:
                with self._state_lock:
                    self._connections.discard(conn)
                self._shed(conn)
                continue
            self.metrics.gauge("gateway_accept_queue_depth").set(
                self._conn_queue.qsize()
            )

    def _worker_loop(self) -> None:
        while True:
            conn = self._conn_queue.get()
            if conn is None:
                return  # stop() sentinel
            self.metrics.gauge("gateway_accept_queue_depth").set(
                self._conn_queue.qsize()
            )
            try:
                self._serve_connection(conn)
            except Exception:  # noqa: BLE001 -- a pooled worker must survive
                log.exception("gateway connection handler failed")
            finally:
                with self._state_lock:
                    self._connections.discard(conn)

    def _shed(self, conn: socket.socket) -> None:
        """One typed refusal, then close -- never accept-and-stall."""
        self.requests_shed += 1
        self.metrics.counter("gateway_shed_total").inc()
        payload = {
            "ok": False,
            "error": "ResourceExhaustedError",
            "message": "gateway overloaded: accept queue full",
            "retry_after": self.shed_retry_after,
        }
        try:
            conn.settimeout(1.0)
            conn.sendall(_encode(payload))
        except OSError:
            pass
        finally:
            conn.close()

    def _serve_connection(self, conn: socket.socket) -> None:
        with conn, conn.makefile("rb") as reader:
            while True:
                try:
                    request = _read_line(reader, self.max_line)
                except (GatewayProtocolError, RequestTooLargeError) as exc:
                    # The stream position cannot be trusted past a bad or
                    # oversized line: answer with the typed error, then
                    # hang up.
                    try:
                        conn.sendall(_encode(_error_payload(exc)))
                    except OSError:
                        pass
                    return
                if request is None:
                    return
                response = self._respond(request)
                try:
                    conn.sendall(_encode(response))
                except OSError:
                    return

    def _respond(self, request: dict) -> dict:
        """Run one request under its propagated deadline; never raises."""
        try:
            deadline = None
            budget_ms = request.pop("deadline_ms", None)
            if budget_ms is not None:
                # Validate before converting: a malformed budget must come
                # back as a typed error payload, not an exception that
                # escapes into (and kills) a pooled worker thread.
                if isinstance(budget_ms, bool) or not isinstance(
                    budget_ms, (int, float)
                ):
                    raise GatewayProtocolError(
                        f"deadline_ms must be a number, "
                        f"got {type(budget_ms).__name__}"
                    )
                deadline = Deadline.after(max(int(budget_ms), 0) / 1000.0)
            if deadline is not None:
                deadline.check("gateway request")
            with deadline_scope(deadline):
                return self._handle(request)
        except ReproError as exc:
            if isinstance(exc, DeadlineExceeded):
                self.metrics.counter("gateway_deadline_exceeded_total").inc()
            return _error_payload(exc)
        except (ValueError, KeyError, TypeError) as exc:
            return _error_payload(exc)
        except Exception:  # noqa: BLE001 -- keep the server alive
            log.exception("gateway request failed")
            return {
                "ok": False,
                "error": "InternalError",
                "message": "internal gateway error",
            }

    def _handle(self, request: dict) -> dict:
        op = request.get("op")
        gw = self.gateway
        if op == "ping":
            return {"ok": True, "shards": gw.shard_ids}
        if op == "upload":
            receipt = gw.upload_file(
                request["tenant"],
                request["password"],
                request["filename"],
                base64.b64decode(request["data"]),
                int(request.get("level", 2)),
                misleading_fraction=float(request.get("misleading", 0.0)),
            )
            return {
                "ok": True,
                "chunks": receipt.chunk_count,
                "bytes": receipt.file_size,
            }
        if op == "get":
            data = gw.get_file(
                request["tenant"], request["password"], request["filename"]
            )
            return {"ok": True, "data": base64.b64encode(data).decode("ascii")}
        if op == "update":
            gw.update_chunk(
                request["tenant"],
                request["password"],
                request["filename"],
                int(request["serial"]),
                base64.b64decode(request["data"]),
            )
            return {"ok": True}
        if op == "remove":
            gw.remove_file(
                request["tenant"], request["password"], request["filename"]
            )
            return {"ok": True}
        if op == "list":
            names = gw.list_files(request["tenant"], request["password"])
            return {"ok": True, "files": names}
        if op == "usage":
            return {"ok": True, "usage": gw.tenant_usage(request["tenant"])}
        if op == "status":
            return {"ok": True, "status": gw.status()}
        raise GatewayProtocolError(f"unknown gateway op {op!r}")


def _error_payload(exc: Exception) -> dict:
    payload = {"ok": False, "error": type(exc).__name__, "message": str(exc)}
    retry_after = getattr(exc, "retry_after", None)
    if retry_after is not None:
        payload["retry_after"] = retry_after
    return payload


class GatewayClient:
    """Blocking client for :class:`GatewayServer` (one connection).

    Every exchange runs under a per-request socket timeout: the configured
    ``request_timeout`` capped by the ambient deadline's remaining budget
    (which is also propagated to the server as ``deadline_ms``).  After a
    timeout the response may still arrive later, which would desync the
    JSON stream -- so the connection is dropped and redialed lazily on the
    next call (reconnect-on-timeout) instead of being reused.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 30.0,
        request_timeout: float | None = None,
    ) -> None:
        self._host = host
        self._port = port
        self._connect_timeout = timeout
        self._request_timeout = (
            request_timeout if request_timeout is not None else timeout
        )
        self._sock: socket.socket | None = socket.create_connection(
            (host, port), timeout=timeout
        )
        self._reader = self._sock.makefile("rb")

    def close(self) -> None:
        if self._sock is None:
            return
        try:
            self._reader.close()
        finally:
            sock, self._sock = self._sock, None
            sock.close()

    def __enter__(self) -> "GatewayClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _drop_connection(self) -> None:
        """Discard a desynced/dead connection; the next call redials."""
        if self._sock is None:
            return
        try:
            self._reader.close()
        except OSError:
            pass
        sock, self._sock = self._sock, None
        try:
            sock.close()
        except OSError:
            pass

    def _ensure_connected(self) -> socket.socket:
        if self._sock is None:
            self._sock = socket.create_connection(
                (self._host, self._port), timeout=self._connect_timeout
            )
            self._reader = self._sock.makefile("rb")
        return self._sock

    def _call(self, request: dict) -> dict:
        deadline = current_deadline()
        timeout = self._request_timeout
        if deadline is not None:
            deadline.check("gateway call")
            timeout = deadline.timeout(cap=timeout)
            request = dict(request)
            request["deadline_ms"] = max(
                1, int(deadline.remaining() * 1000)
            )
        sock = self._ensure_connected()
        try:
            sock.settimeout(timeout)
            sock.sendall(_encode(request))
            response = _read_line(self._reader)
        except socket.timeout as exc:
            self._drop_connection()
            if deadline is not None and deadline.expired:
                raise DeadlineExceeded(
                    f"gateway call exceeded its deadline ({timeout:.3f}s "
                    f"budget)"
                ) from exc
            raise GatewayTimeoutError(
                f"gateway did not answer within {timeout:.3f}s"
            ) from exc
        except OSError as exc:
            self._drop_connection()
            raise GatewayProtocolError(
                f"gateway connection failed: {exc}"
            ) from exc
        except (GatewayProtocolError, RequestTooLargeError):
            # A malformed or oversized response line leaves the stream
            # position untrustworthy; reusing it would feed the next call
            # the tail of this one.
            self._drop_connection()
            raise
        if response is None:
            self._drop_connection()
            raise GatewayProtocolError("gateway closed the connection")
        if not response.get("ok"):
            error = _rebuild_error(response)
            if isinstance(error, ResourceExhaustedError):
                # The server shut the connection right after shedding us.
                self._drop_connection()
            raise error
        return response

    def ping(self) -> list[str]:
        return self._call({"op": "ping"})["shards"]

    def upload_file(
        self,
        tenant: str,
        password: str,
        filename: str,
        data: bytes,
        level: int,
        misleading_fraction: float = 0.0,
    ) -> dict:
        return self._call(
            {
                "op": "upload",
                "tenant": tenant,
                "password": password,
                "filename": filename,
                "data": base64.b64encode(data).decode("ascii"),
                "level": int(level),
                "misleading": misleading_fraction,
            }
        )

    def get_file(self, tenant: str, password: str, filename: str) -> bytes:
        response = self._call(
            {
                "op": "get",
                "tenant": tenant,
                "password": password,
                "filename": filename,
            }
        )
        return base64.b64decode(response["data"])

    def update_chunk(
        self,
        tenant: str,
        password: str,
        filename: str,
        serial: int,
        data: bytes,
    ) -> None:
        self._call(
            {
                "op": "update",
                "tenant": tenant,
                "password": password,
                "filename": filename,
                "serial": serial,
                "data": base64.b64encode(data).decode("ascii"),
            }
        )

    def remove_file(self, tenant: str, password: str, filename: str) -> None:
        self._call(
            {
                "op": "remove",
                "tenant": tenant,
                "password": password,
                "filename": filename,
            }
        )

    def list_files(self, tenant: str, password: str) -> list[str]:
        return self._call(
            {"op": "list", "tenant": tenant, "password": password}
        )["files"]

    def tenant_usage(self, tenant: str) -> dict:
        return self._call({"op": "usage", "tenant": tenant})["usage"]

    def status(self) -> dict:
        return self._call({"op": "status"})["status"]


def _rebuild_error(response: dict) -> Exception:
    """Map a wire error back onto the library's exception hierarchy."""
    name = response.get("error", "ReproError")
    message = response.get("message", "gateway error")
    if name == "ResourceExhaustedError":
        return ResourceExhaustedError(
            message, retry_after=response.get("retry_after")
        )
    if name == "ShardUnavailable":
        return core_errors.ShardUnavailable(
            message, retry_after=response.get("retry_after")
        )
    exc_type = getattr(core_errors, name, None)
    if isinstance(exc_type, type) and issubclass(exc_type, Exception):
        return exc_type(message)
    if name in ("ValueError", "KeyError", "TypeError"):
        return ValueError(message)
    return ReproError(f"{name}: {message}")
