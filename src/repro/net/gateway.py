"""Gateway server: the fleet's tenant-facing API over TCP.

Where :class:`~repro.net.server.ChunkServer` speaks the chunk-level binary
protocol providers need, the gateway speaks a request/response protocol at
tenant granularity: newline-delimited JSON objects, one request per line,
file payloads base64-encoded.  The server is a thin shim -- every request
maps 1:1 onto a :class:`~repro.fleet.gateway.FleetGateway` method, so all
authentication, quota and routing behaviour is identical whether the
gateway is reached in-process or over the wire.

Errors travel as ``{"ok": false, "error": "<ExceptionName>", "message":
...}`` and are re-raised client-side as the matching
:mod:`repro.core.errors` type when one exists.
"""

from __future__ import annotations

import base64
import json
import logging
import socket
import threading

from repro.core import errors as core_errors
from repro.core.errors import ReproError
from repro.fleet.gateway import FleetGateway

log = logging.getLogger(__name__)

_MAX_LINE = 256 << 20  # refuse absurd frames rather than swallowing RAM


class GatewayProtocolError(ReproError):
    """Malformed gateway request/response."""


def _encode(obj: dict) -> bytes:
    return (json.dumps(obj, sort_keys=True) + "\n").encode("utf-8")


def _read_line(sock_file) -> dict | None:
    line = sock_file.readline(_MAX_LINE)
    if not line:
        return None
    try:
        return json.loads(line)
    except json.JSONDecodeError as exc:
        raise GatewayProtocolError(f"bad gateway frame: {exc}") from exc


class GatewayServer:
    """Serves a :class:`FleetGateway` over newline-delimited JSON/TCP."""

    def __init__(
        self,
        gateway: FleetGateway,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.gateway = gateway
        self.host = host
        self._requested_port = port
        self._sock: socket.socket | None = None
        self._threads: list[threading.Thread] = []
        self._running = False

    @property
    def port(self) -> int:
        if self._sock is None:
            raise RuntimeError("server is not running")
        return self._sock.getsockname()[1]

    def start(self) -> "GatewayServer":
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((self.host, self._requested_port))
        sock.listen(32)
        self._sock = sock
        self._running = True
        accept = threading.Thread(
            target=self._accept_loop, name="gateway-accept", daemon=True
        )
        accept.start()
        self._threads.append(accept)
        return self

    def stop(self) -> None:
        self._running = False
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "GatewayServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def _accept_loop(self) -> None:
        while self._running and self._sock is not None:
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return  # socket closed by stop()
            worker = threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            )
            worker.start()
            self._threads.append(worker)

    def _serve_connection(self, conn: socket.socket) -> None:
        with conn, conn.makefile("rb") as reader:
            while True:
                try:
                    request = _read_line(reader)
                except GatewayProtocolError as exc:
                    conn.sendall(_encode(_error_payload(exc)))
                    return
                if request is None:
                    return
                try:
                    response = self._handle(request)
                except ReproError as exc:
                    response = _error_payload(exc)
                except (ValueError, KeyError, TypeError) as exc:
                    response = _error_payload(exc)
                except Exception:  # noqa: BLE001 -- keep the server alive
                    log.exception("gateway request failed")
                    response = {
                        "ok": False,
                        "error": "InternalError",
                        "message": "internal gateway error",
                    }
                try:
                    conn.sendall(_encode(response))
                except OSError:
                    return

    def _handle(self, request: dict) -> dict:
        op = request.get("op")
        gw = self.gateway
        if op == "ping":
            return {"ok": True, "shards": gw.shard_ids}
        if op == "upload":
            receipt = gw.upload_file(
                request["tenant"],
                request["password"],
                request["filename"],
                base64.b64decode(request["data"]),
                int(request.get("level", 2)),
                misleading_fraction=float(request.get("misleading", 0.0)),
            )
            return {
                "ok": True,
                "chunks": receipt.chunk_count,
                "bytes": receipt.file_size,
            }
        if op == "get":
            data = gw.get_file(
                request["tenant"], request["password"], request["filename"]
            )
            return {"ok": True, "data": base64.b64encode(data).decode("ascii")}
        if op == "update":
            gw.update_chunk(
                request["tenant"],
                request["password"],
                request["filename"],
                int(request["serial"]),
                base64.b64decode(request["data"]),
            )
            return {"ok": True}
        if op == "remove":
            gw.remove_file(
                request["tenant"], request["password"], request["filename"]
            )
            return {"ok": True}
        if op == "list":
            names = gw.list_files(request["tenant"], request["password"])
            return {"ok": True, "files": names}
        if op == "usage":
            return {"ok": True, "usage": gw.tenant_usage(request["tenant"])}
        if op == "status":
            return {"ok": True, "status": gw.status()}
        raise GatewayProtocolError(f"unknown gateway op {op!r}")


def _error_payload(exc: Exception) -> dict:
    return {"ok": False, "error": type(exc).__name__, "message": str(exc)}


class GatewayClient:
    """Blocking client for :class:`GatewayServer` (one connection)."""

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._reader = self._sock.makefile("rb")

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "GatewayClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _call(self, request: dict) -> dict:
        self._sock.sendall(_encode(request))
        response = _read_line(self._reader)
        if response is None:
            raise GatewayProtocolError("gateway closed the connection")
        if not response.get("ok"):
            raise _rebuild_error(response)
        return response

    def ping(self) -> list[str]:
        return self._call({"op": "ping"})["shards"]

    def upload_file(
        self,
        tenant: str,
        password: str,
        filename: str,
        data: bytes,
        level: int,
        misleading_fraction: float = 0.0,
    ) -> dict:
        return self._call(
            {
                "op": "upload",
                "tenant": tenant,
                "password": password,
                "filename": filename,
                "data": base64.b64encode(data).decode("ascii"),
                "level": int(level),
                "misleading": misleading_fraction,
            }
        )

    def get_file(self, tenant: str, password: str, filename: str) -> bytes:
        response = self._call(
            {
                "op": "get",
                "tenant": tenant,
                "password": password,
                "filename": filename,
            }
        )
        return base64.b64decode(response["data"])

    def update_chunk(
        self,
        tenant: str,
        password: str,
        filename: str,
        serial: int,
        data: bytes,
    ) -> None:
        self._call(
            {
                "op": "update",
                "tenant": tenant,
                "password": password,
                "filename": filename,
                "serial": serial,
                "data": base64.b64encode(data).decode("ascii"),
            }
        )

    def remove_file(self, tenant: str, password: str, filename: str) -> None:
        self._call(
            {
                "op": "remove",
                "tenant": tenant,
                "password": password,
                "filename": filename,
            }
        )

    def list_files(self, tenant: str, password: str) -> list[str]:
        return self._call(
            {"op": "list", "tenant": tenant, "password": password}
        )["files"]

    def tenant_usage(self, tenant: str) -> dict:
        return self._call({"op": "usage", "tenant": tenant})["usage"]

    def status(self) -> dict:
        return self._call({"op": "status"})["status"]


def _rebuild_error(response: dict) -> Exception:
    """Map a wire error back onto the library's exception hierarchy."""
    name = response.get("error", "ReproError")
    message = response.get("message", "gateway error")
    exc_type = getattr(core_errors, name, None)
    if isinstance(exc_type, type) and issubclass(exc_type, Exception):
        return exc_type(message)
    if name in ("ValueError", "KeyError", "TypeError"):
        return ValueError(message)
    return ReproError(f"{name}: {message}")
