"""Bounded pool of persistent client connections to one chunk server.

Opening a TCP connection per request would put connection setup on every
hot path; the pool keeps a small stack of idle sockets and hands them out
one request at a time.  It is thread-safe, which is what lets a single
:class:`~repro.net.remote.RemoteProvider` be driven concurrently by the
distributor's transport executor.
"""

from __future__ import annotations

import socket
import threading
from contextlib import contextmanager
from typing import Iterator


class ConnectionPool:
    """Stack of reusable sockets to ``(host, port)``.

    ``acquire()`` yields a connected socket; on clean exit the socket is
    returned for reuse (up to *size* idle sockets are retained), on error
    it is closed -- a connection that failed mid-request is never reused,
    because the stream position can no longer be trusted.
    """

    def __init__(
        self,
        host: str,
        port: int,
        size: int = 4,
        connect_timeout: float = 2.0,
    ) -> None:
        if size < 1:
            raise ValueError(f"pool size must be >= 1, got {size}")
        self.host = host
        self.port = port
        self.size = size
        self.connect_timeout = connect_timeout
        self._idle: list[socket.socket] = []
        self._lock = threading.Lock()
        self._closed = False

    def _connect(self) -> socket.socket:
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.connect_timeout
        )
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return sock

    @contextmanager
    def acquire(self) -> Iterator[socket.socket]:
        """Borrow a socket for one request/response exchange."""
        if self._closed:
            raise RuntimeError("connection pool is closed")
        with self._lock:
            sock = self._idle.pop() if self._idle else None
        if sock is None:
            sock = self._connect()
        try:
            yield sock
        except BaseException:
            sock.close()
            raise
        with self._lock:
            if not self._closed and len(self._idle) < self.size:
                self._idle.append(sock)
                return
        sock.close()

    def prewarm(self, count: int | None = None) -> int:
        """Open up to *count* (default: pool size) idle connections now.

        Pipelined batch exchanges ride one connection per in-flight
        request; pre-dialing moves the TCP setup cost off the first hot
        operation.  Returns how many connections were opened; dial
        failures stop the warm-up early (the pool stays usable -- the
        next ``acquire`` will surface the error to the caller).
        """
        target = self.size if count is None else min(count, self.size)
        opened = 0
        while True:
            with self._lock:
                if self._closed or len(self._idle) >= target:
                    return opened
            try:
                sock = self._connect()
            except OSError:
                return opened
            with self._lock:
                if not self._closed and len(self._idle) < self.size:
                    self._idle.append(sock)
                    opened += 1
                    continue
            sock.close()
            return opened

    def discard_idle(self) -> None:
        """Drop every idle socket (e.g. after the server restarted)."""
        with self._lock:
            idle, self._idle = self._idle, []
        for sock in idle:
            sock.close()

    def close(self) -> None:
        """Close the pool and every idle socket."""
        self._closed = True
        self.discard_idle()

    @property
    def idle_count(self) -> int:
        with self._lock:
            return len(self._idle)
