"""Bounded pool of persistent client connections to one chunk server.

Opening a TCP connection per request would put connection setup on every
hot path; the pool keeps a small stack of idle sockets and hands them out
one request at a time.  It is thread-safe, which is what lets a single
:class:`~repro.net.remote.RemoteProvider` be driven concurrently by the
distributor's transport executor.
"""

from __future__ import annotations

import socket
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from repro.obs.events import EventLog, get_events
from repro.obs.metrics import MetricsRegistry, get_metrics

#: Checkout wait (pop-or-dial seconds) above which the pool reports
#: saturation: the request had to dial a fresh connection (or the dial
#: itself crawled), which means the idle stack was empty under load.
SATURATION_THRESHOLD_S = 0.05


class StaleConnectionError(OSError):
    """A *reused* pooled socket failed before delivering a response.

    The classic cause is a server restart: every socket parked in the idle
    stack is silently dead, and the first request on each one fails even
    though the server is back up and a fresh dial would succeed.  Clients
    treat this as "redial now, for free" rather than a verdict about the
    server -- it must not burn retry budget, trip circuit breakers, or
    feed failure evidence to health monitors.
    """


def classify_stale(exc: Exception, fresh: bool) -> Exception:
    """Shared reclassification for transport failures on pooled sockets.

    A failure on a *reused* socket is pool staleness -- the park-then-die
    pattern -- and comes back as :class:`StaleConnectionError` so callers
    redial for free instead of burning retry budget.  A failure on a
    freshly dialed socket is returned unchanged: that one really is
    evidence about the server.  Both the threaded
    (:class:`~repro.net.remote.RemoteProvider`) and asyncio
    (:class:`~repro.net.async_client.AsyncChunkClient`) paths route
    through here so the semantics cannot drift apart.
    """
    if fresh or isinstance(exc, StaleConnectionError):
        return exc
    return StaleConnectionError(
        f"reused pooled connection failed mid-exchange: {exc}"
    )


@dataclass
class Lease:
    """One checked-out pool connection plus how it was obtained.

    ``fresh`` is True when the socket was dialed for this checkout; False
    means it was reused from the idle stack and may have died while parked
    (see :class:`StaleConnectionError`).
    """

    sock: socket.socket
    fresh: bool


class ConnectionPool:
    """Stack of reusable sockets to ``(host, port)``.

    ``acquire()`` yields a connected socket; on clean exit the socket is
    returned for reuse (up to *size* idle sockets are retained), on error
    it is closed -- a connection that failed mid-request is never reused,
    because the stream position can no longer be trusted.

    Checkout waits (idle pop or fresh dial) feed the
    ``net_pool_checkout_wait_seconds`` histogram; a wait above
    *saturation_threshold* additionally emits one warning-level
    ``pool_saturation`` structured-log event carrying the opcode that was
    kept waiting.
    """

    def __init__(
        self,
        host: str,
        port: int,
        size: int = 4,
        connect_timeout: float = 2.0,
        *,
        metrics: MetricsRegistry | None = None,
        events: EventLog | None = None,
        saturation_threshold: float = SATURATION_THRESHOLD_S,
    ) -> None:
        if size < 1:
            raise ValueError(f"pool size must be >= 1, got {size}")
        self.host = host
        self.port = port
        self.size = size
        self.connect_timeout = connect_timeout
        self.metrics = metrics if metrics is not None else get_metrics()
        self.events = events if events is not None else get_events()
        self.saturation_threshold = saturation_threshold
        self.label = f"{host}:{port}"
        self._idle: list[socket.socket] = []
        self._lock = threading.Lock()
        self._closed = False

    def _connect(self) -> socket.socket:
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.connect_timeout
        )
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return sock

    @contextmanager
    def acquire(self, op: str = "") -> Iterator[socket.socket]:
        """Borrow a socket for one request/response exchange.

        *op* names the wire operation waiting on the checkout, purely for
        telemetry -- it labels the saturation event when the wait crosses
        the threshold.
        """
        with self.lease(op=op) as leased:
            yield leased.sock

    @contextmanager
    def lease(self, op: str = "") -> Iterator[Lease]:
        """Like :meth:`acquire`, but the caller also learns *how* the
        socket was obtained (:attr:`Lease.fresh`).

        Transport-aware callers use this to tell a dead reused socket (a
        pool-staleness artifact, fixed by redialing) from a dead freshly
        dialed one (the server really is unreachable).
        """
        if self._closed:
            raise RuntimeError("connection pool is closed")
        t0 = time.perf_counter()
        with self._lock:
            sock = self._idle.pop() if self._idle else None
        fresh = sock is None
        if sock is None:
            sock = self._connect()
        wait = time.perf_counter() - t0
        self.metrics.histogram(
            "net_pool_checkout_wait_seconds", pool=self.label
        ).observe(wait)
        if wait > self.saturation_threshold:
            self.events.emit(
                "pool_saturation",
                level="warning",
                pool=self.label,
                op=op,
                wait_s=round(wait, 6),
            )
        try:
            yield Lease(sock=sock, fresh=fresh)
        except BaseException:
            sock.close()
            raise
        with self._lock:
            if not self._closed and len(self._idle) < self.size:
                self._idle.append(sock)
                return
        sock.close()

    def prewarm(self, count: int | None = None) -> int:
        """Open up to *count* (default: pool size) idle connections now.

        Pipelined batch exchanges ride one connection per in-flight
        request; pre-dialing moves the TCP setup cost off the first hot
        operation.  Returns how many connections were opened; dial
        failures stop the warm-up early (the pool stays usable -- the
        next ``acquire`` will surface the error to the caller).
        """
        target = self.size if count is None else min(count, self.size)
        opened = 0
        while True:
            with self._lock:
                if self._closed or len(self._idle) >= target:
                    return opened
            try:
                sock = self._connect()
            except OSError:
                return opened
            with self._lock:
                if not self._closed and len(self._idle) < self.size:
                    self._idle.append(sock)
                    opened += 1
                    continue
            sock.close()
            return opened

    def discard_idle(self) -> None:
        """Drop every idle socket (e.g. after the server restarted)."""
        with self._lock:
            idle, self._idle = self._idle, []
        for sock in idle:
            sock.close()

    def close(self) -> None:
        """Close the pool and every idle socket."""
        self._closed = True
        self.discard_idle()

    @property
    def idle_count(self) -> int:
        with self._lock:
            return len(self._idle)
