"""Asyncio chunk server: thousands of connections, one event loop.

The threaded :class:`~repro.net.server.ChunkServer` spends a worker thread
per *active* connection and sheds when its pool saturates -- fine for a
handful of distributors, but a fleet front-end in the paper's
"millions of users" regime is mostly *idle* connections, and parking a
thread (or an accept-queue slot) per idle socket caps connection count at
the thread budget.  :class:`AsyncChunkServer` multiplexes every connection
on one asyncio event loop, so an idle connection costs a few kilobytes of
reader/writer state instead of a stack; only requests actually *running*
against the backend occupy threads, via a bounded executor.

Wire behavior is byte-identical to the threaded server: both delegate to
the shared :class:`~repro.net.server.RequestEngine`, so envelopes
(TRACED/DEADLINE), the BAD_REQUEST downgrade handshake, stream sessions
and their mid-stream rollback all work the same over either front-end.
The loop runs in a background thread, so the blocking start()/stop()
lifecycle (and :class:`~repro.net.cluster.LocalCluster`) is unchanged.
"""

from __future__ import annotations

import asyncio
import logging
import socket
import threading
from concurrent.futures import ThreadPoolExecutor

from repro.net.async_client import read_frame_async
from repro.net.protocol import (
    HEADER,
    Frame,
    ProtocolError,
    Status,
    encode_frame,
    encode_retry_hint,
)
from repro.net.server import RequestEngine
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.providers.base import CloudProvider

log = logging.getLogger(__name__)


class AsyncChunkServer(RequestEngine):
    """Event-loop TCP front-end for one provider backend.

    Drop-in for :class:`~repro.net.server.ChunkServer` wherever only the
    ``start``/``stop``/``port`` lifecycle is used (``LocalCluster`` takes
    either via ``server_cls``).  ``backend_workers`` bounds how many
    requests may run against the backend concurrently -- the analog of
    the threaded server's ``max_workers``, but decoupled from connection
    count.  ``max_connections`` is the admission limit: connections over
    it are answered with one RESOURCE_EXHAUSTED frame and closed, the
    same shed contract the threaded server speaks.
    """

    def __init__(
        self,
        backend: CloudProvider,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        backend_workers: int = 4,
        max_connections: int = 4096,
        shed_retry_after: float = 0.1,
    ) -> None:
        if backend_workers < 1:
            raise ValueError(
                f"backend_workers must be >= 1, got {backend_workers}"
            )
        if max_connections < 1:
            raise ValueError(
                f"max_connections must be >= 1, got {max_connections}"
            )
        self._init_engine(backend, metrics, tracer)
        self.host = host
        self.backend_workers = backend_workers
        self.max_connections = max_connections
        self.shed_retry_after = shed_retry_after
        self._requested_port = port
        self._bound_port: int | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._stop_event: asyncio.Event | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._started = threading.Event()
        self._start_error: BaseException | None = None
        self._running = False
        self.requests_served = 0
        self.requests_shed = 0

    # -- lifecycle ---------------------------------------------------------

    @property
    def port(self) -> int:
        if self._bound_port is not None:
            return self._bound_port
        return self._requested_port

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    @property
    def running(self) -> bool:
        return self._running

    def start(self) -> "AsyncChunkServer":
        """Bind the port and begin serving on a background event loop."""
        if self._running:
            raise RuntimeError(
                f"async chunk server {self.backend.name!r} already running"
            )
        self._started.clear()
        self._start_error = None
        self._running = True
        self._executor = ThreadPoolExecutor(
            max_workers=self.backend_workers,
            thread_name_prefix=f"async-chunk-{self.backend.name}",
        )
        self._thread = threading.Thread(
            target=self._run_loop,
            name=f"async-chunk-server-{self.backend.name}",
            daemon=True,
        )
        self._thread.start()
        self._started.wait(timeout=10.0)
        if self._start_error is not None:
            self._running = False
            self._thread.join(timeout=5.0)
            self._thread = None
            self._executor.shutdown(wait=False)
            self._executor = None
            raise self._start_error
        return self

    def stop(self) -> None:
        """Stop serving, sever live connections, release the port."""
        if not self._running:
            return
        self._running = False
        loop = self._loop
        if loop is not None:
            try:
                loop.call_soon_threadsafe(self._signal_stop)
            except RuntimeError:
                pass  # loop already closed
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        if self._executor is not None:
            self._executor.shutdown(wait=False)
            self._executor = None
        self._bound_port = None

    def _signal_stop(self) -> None:
        if self._stop_event is not None:
            self._stop_event.set()

    def __enter__(self) -> "AsyncChunkServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- event loop --------------------------------------------------------

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        try:
            loop.run_until_complete(self._main())
        except BaseException as exc:  # noqa: BLE001 - record, don't kill pytest
            if self._start_error is None:
                self._start_error = exc
            self._started.set()
            log.exception(
                "async chunk server %r event loop died", self.backend.name
            )
        finally:
            self._loop = None
            loop.close()

    async def _main(self) -> None:
        self._stop_event = asyncio.Event()
        try:
            server = await asyncio.start_server(
                self._serve_connection,
                host=self.host,
                port=self._requested_port,
                reuse_address=True,
            )
        except OSError as exc:
            self._start_error = exc
            self._started.set()
            return
        self._bound_port = server.sockets[0].getsockname()[1]
        self._started.set()
        async with server:
            await self._stop_event.wait()
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)

    # -- serving -----------------------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        if len(self._conn_tasks) > self.max_connections:
            await self._shed(writer)
            if task is not None:
                self._conn_tasks.discard(task)
            return
        session = self._new_session()
        loop = asyncio.get_running_loop()
        try:
            sock = writer.get_extra_info("socket")
            if sock is not None:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            while self._running:
                try:
                    frame = await self._read_frame(reader)
                except ProtocolError as exc:
                    writer.write(
                        encode_frame(
                            Status.BAD_REQUEST, payload=str(exc).encode()
                        )
                    )
                    await writer.drain()
                    return
                if frame is None:
                    return  # clean EOF
                self.metrics.counter(
                    "net_server_wire_bytes_total", direction="in"
                ).inc(HEADER.size + len(frame.key.encode()) + len(frame.payload))
                # Backend work runs on the bounded executor so a slow
                # request never stalls the loop (or the other thousands of
                # connections it is multiplexing).
                responses = await loop.run_in_executor(
                    self._executor, self._dispatch_multi, frame, session
                )
                out = 0
                try:
                    for status, key, payload in responses:
                        writer.write(encode_frame(status, key=key, payload=payload))
                        out += HEADER.size + len(key.encode()) + len(payload)
                except ProtocolError as exc:
                    # Response-path framing failure (payload over cap):
                    # nothing hit the wire for this frame, so a small error
                    # frame is still in sync.
                    writer.write(
                        encode_frame(Status.INTERNAL, payload=str(exc).encode())
                    )
                await writer.drain()
                self.metrics.counter(
                    "net_server_wire_bytes_total", direction="out"
                ).inc(out)
                self.requests_served += 1
        except (OSError, asyncio.CancelledError, ConnectionError):
            pass  # peer vanished / we are shutting down
        except Exception:  # noqa: BLE001 - one connection must not kill the loop
            log.exception(
                "async chunk server %r connection handler failed",
                self.backend.name,
            )
        finally:
            # Rollback takes the backend lock; it is bounded by one staged
            # window's deletes, short enough to run on the loop directly.
            self._rollback_stream(session)
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, ConnectionError):
                pass

    async def _shed(self, writer: asyncio.StreamWriter) -> None:
        self.requests_shed += 1
        self.metrics.counter("net_server_shed_total").inc()
        hint = encode_retry_hint(
            self.shed_retry_after,
            f"server {self.backend.name!r} overloaded: connection limit",
        )
        try:
            writer.write(
                encode_frame(Status.RESOURCE_EXHAUSTED, payload=hint.encode())
            )
            await writer.drain()
        except (OSError, ConnectionError):
            pass
        finally:
            writer.close()

    async def _read_frame(self, reader: asyncio.StreamReader) -> Frame | None:
        """Async twin of :func:`repro.net.protocol.read_frame`."""
        return await read_frame_async(reader)
