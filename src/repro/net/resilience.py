"""Client-side resilience primitives: retry budgets, latency tracking, hedging.

Three small tools that keep one slow or dark server from amplifying into a
fleet-wide incident:

* :class:`RetryBudget` — a per-*request* allowance of retries shared across
  every hop that request touches.  A logical fleet put that fans out to six
  providers draws all its retries from one budget instead of multiplying
  3 attempts x 6 hops x 2 layers into a retry storm against an overloaded
  server.  Made ambient with :func:`retry_budget_scope`, mirroring
  ``repro.util.deadline``.

* :class:`LatencyTracker` — a tiny ring buffer of observed latencies with a
  percentile query, used to derive hedge delays (fire the backup request
  only once the primary is slower than its own recent p95).

* :func:`hedged_call` — run a primary thunk, and if it has not produced a
  result after *delay* seconds, race a hedge thunk against it; first result
  wins.  The loser is not interrupted (python threads cannot be killed) but
  its outcome is discarded and, because all work under a request runs inside
  a deadline scope, it self-terminates at the request deadline.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Callable, Iterator, Optional, TypeVar

T = TypeVar("T")

__all__ = [
    "LatencyTracker",
    "RetryBudget",
    "current_retry_budget",
    "hedged_call",
    "retry_budget_scope",
]


class RetryBudget:
    """A thread-safe allowance of retry attempts for one logical request.

    ``try_spend()`` returns ``True`` and decrements while allowance remains;
    once exhausted every hop's retry loop gives up immediately and surfaces
    the last error instead of piling on.  Free redials (stale pooled
    sockets) deliberately do *not* draw from this budget — they are local
    bookkeeping, not load on the server.
    """

    def __init__(self, attempts: int) -> None:
        if attempts < 0:
            raise ValueError(f"attempts must be >= 0, got {attempts}")
        self._lock = threading.Lock()
        self._remaining = attempts
        self.spent = 0

    @property
    def remaining(self) -> int:
        with self._lock:
            return self._remaining

    def try_spend(self) -> bool:
        """Consume one retry if any allowance is left."""
        with self._lock:
            if self._remaining <= 0:
                return False
            self._remaining -= 1
            self.spent += 1
            return True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RetryBudget(remaining={self.remaining}, spent={self.spent})"


class _BudgetStack(threading.local):
    def __init__(self) -> None:
        self.stack: list[RetryBudget] = []


_AMBIENT = _BudgetStack()


def current_retry_budget() -> Optional[RetryBudget]:
    """The innermost ambient retry budget for this thread, if any."""
    stack = _AMBIENT.stack
    return stack[-1] if stack else None


@contextmanager
def retry_budget_scope(budget: Optional[RetryBudget]) -> Iterator[Optional[RetryBudget]]:
    """Make *budget* ambient for the ``with`` block (``None`` pushes nothing)."""
    if budget is None:
        yield None
        return
    _AMBIENT.stack.append(budget)
    try:
        yield budget
    finally:
        _AMBIENT.stack.pop()


class LatencyTracker:
    """A bounded ring of recent latencies with percentile queries.

    Thread-safe; O(window) per percentile query, which is fine for the
    small windows (<= a few hundred samples) hedging uses.
    """

    def __init__(self, window: int = 128) -> None:
        if window <= 0:
            raise ValueError(f"window must be > 0, got {window}")
        self._lock = threading.Lock()
        self._window = window
        self._samples: list[float] = []
        self._next = 0

    def observe(self, seconds: float) -> None:
        with self._lock:
            if len(self._samples) < self._window:
                self._samples.append(seconds)
            else:
                self._samples[self._next] = seconds
                self._next = (self._next + 1) % self._window

    def __len__(self) -> int:
        with self._lock:
            return len(self._samples)

    def percentile(self, p: float, default: float) -> float:
        """The *p*-th percentile of recent samples (nearest-rank).

        Returns *default* until any samples exist.
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        with self._lock:
            if not self._samples:
                return default
            ordered = sorted(self._samples)
        rank = max(0, min(len(ordered) - 1, round(p / 100.0 * len(ordered)) - 1))
        return ordered[rank]


def hedged_call(
    primary: Callable[[], T],
    hedge: Callable[[], T],
    delay: float,
    *,
    on_hedge: Optional[Callable[[], None]] = None,
) -> T:
    """Run *primary*; if still pending after *delay* s, race *hedge*.

    The first thunk to finish (with a result *or* an exception once both
    have been tried) decides the outcome: a successful hedge masks a slow
    or failed primary and vice versa.  If both fail, the first error wins.
    *on_hedge* fires exactly once when the hedge is actually launched
    (metrics hook).  The losing thunk keeps running in a daemon thread
    until its own deadline/timeout fires; its result is discarded.
    """
    cond = threading.Condition()
    outcomes: list[tuple[bool, object]] = []
    launched = 1

    def run(thunk: Callable[[], T]) -> None:
        try:
            result: object = thunk()
            ok = True
        except BaseException as exc:  # noqa: BLE001 - re-raised in caller
            result = exc
            ok = False
        with cond:
            outcomes.append((ok, result))
            cond.notify_all()

    def settled() -> bool:
        return any(ok for ok, _ in outcomes) or len(outcomes) >= launched

    threading.Thread(target=run, args=(primary,), daemon=True).start()
    with cond:
        cond.wait_for(lambda: len(outcomes) >= 1, timeout=max(delay, 0.0))
        if not any(ok for ok, _ in outcomes):
            # Primary is still pending, or finished with a failure: launch
            # the hedge (a fast failure gets its backup immediately rather
            # than waiting out the delay).
            launched = 2
            if on_hedge is not None:
                on_hedge()
            threading.Thread(target=run, args=(hedge,), daemon=True).start()
            cond.wait_for(settled)
        for ok, result in outcomes:
            if ok:
                return result  # type: ignore[return-value]
        raise outcomes[0][1]  # type: ignore[misc]
