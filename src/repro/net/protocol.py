"""Length-prefixed binary wire protocol for distributor <-> chunk server.

The paper's Cloud Data Distributor talks to remote Cloud Providers; this
module defines the byte-level contract of that conversation.  One *frame*
carries one request or one response::

    offset  size  field
    0       2     magic  b"RP"
    2       1     protocol version (currently 1)
    3       1     code: op code in requests, status code in responses
    4       2     key length K            (unsigned big-endian)
    6       4     payload length N        (unsigned big-endian)
    10      4     CRC-32 of the payload   (unsigned big-endian)
    14      K     key bytes (UTF-8)
    14+K    N     payload bytes

Both sides verify the CRC-32 before trusting a payload, so a truncated or
bit-flipped transfer surfaces as :class:`ProtocolError` at the transport
layer instead of silently corrupting an object.  On top of that, a PUT
response echoes the server-side SHA-256 of the stored bytes ("checksum
echo"), giving the client end-to-end write verification independent of the
transport CRC.

The full specification (including error-code semantics) lives in
``docs/net_protocol.md``; keep the two in sync.
"""

from __future__ import annotations

import json
import socket
import struct
import zlib
from dataclasses import dataclass
from enum import IntEnum

from repro.core.errors import (
    BlobCorruptedError,
    BlobNotFoundError,
    DeadlineExceeded,
    ProviderError,
    ProviderUnavailableError,
    ReproError,
    ResourceExhaustedError,
)
from repro.providers.base import BlobStat

MAGIC = b"RP"
VERSION = 1

#: Frame header: magic, version, code, key length, payload length, CRC-32.
HEADER = struct.Struct("!2sBBHII")

#: Upper bound on a single payload; a hostile or corrupt length field must
#: not be able to make the receiver allocate unbounded memory.
MAX_PAYLOAD = 256 * 1024 * 1024


class OpCode(IntEnum):
    """Request operations (client -> server)."""

    PING = 0x01
    PUT = 0x02
    GET = 0x03
    DELETE = 0x04
    HEAD = 0x05
    KEYS = 0x06
    # Batched forms: every shard bound for one provider in an upload (or
    # retrieval) window rides a single framed round-trip, with per-item
    # status in the response so partial failures stay observable.
    MULTI_PUT = 0x07
    MULTI_GET = 0x08
    # Telemetry envelope: wraps any other request frame together with the
    # caller's trace context; the response wraps the inner response frame
    # plus the server-side span records.  Servers that predate this op
    # answer BAD_REQUEST ("unknown op code") with the connection intact,
    # which is exactly the backward-compatible downgrade signal clients
    # need -- see ``docs/net_protocol.md``.
    TRACED = 0x09
    # Deadline envelope: wraps any other request frame (TRACED included)
    # together with the caller's *remaining* time budget in milliseconds.
    # Only the budget crosses the wire -- never an absolute timestamp --
    # because monotonic clocks are per-process and wall clocks skew; the
    # server re-anchors the budget against its own clock.  The response is
    # the inner response frame directly (no response envelope needed: the
    # deadline has nothing to report back).  Old servers answer BAD_REQUEST
    # ("unknown op code"), the same downgrade signal TRACED uses.
    DEADLINE = 0x0A
    # Streaming forms: where MULTI_PUT materializes a whole window into one
    # frame on both sides, a stream session carries each shard as its own
    # small frame with a per-segment ack, so neither side ever holds more
    # than a bounded window of bytes.  A session is STREAM_PUT (open),
    # STREAM_SEG per object (acked with a checksum echo), STREAM_END
    # (commit).  Segments staged by a session that dies before STREAM_END
    # are rolled back by the server, which is what makes a mid-stream
    # client crash leave no partial window behind.  Old servers answer
    # each frame BAD_REQUEST ("unknown op code") with the connection in
    # sync -- the same downgrade signal the envelopes use -- and the
    # client falls back to MULTI_PUT.  Stream ops are always sent bare:
    # they never ride inside a DEADLINE/TRACED envelope.
    STREAM_PUT = 0x0B
    STREAM_SEG = 0x0C
    STREAM_END = 0x0D
    # STREAM_GET asks for many keys (the KEYS encoding) and is answered by
    # a count header frame followed by one frame per key (status + bytes),
    # so the server streams objects out one at a time instead of joining
    # them into one aggregate MULTI_GET payload.
    STREAM_GET = 0x0E


class Status(IntEnum):
    """Response status codes (server -> client)."""

    OK = 0x00
    NOT_FOUND = 0x01
    CORRUPTED = 0x02
    UNAVAILABLE = 0x03
    BAD_REQUEST = 0x04
    INTERNAL = 0x05
    #: The server shed the request at admission (worker pool + accept queue
    #: saturated).  The message may carry a ``retry-after=<seconds>;`` hint.
    RESOURCE_EXHAUSTED = 0x06
    #: The request's propagated deadline expired before (or while) the
    #: server worked on it; the caller already gave up, so no data follows.
    DEADLINE_EXCEEDED = 0x07


class ProtocolError(ReproError):
    """Malformed frame: bad magic, version, length, or CRC mismatch."""


@dataclass(frozen=True)
class Frame:
    """One decoded frame; ``code`` is an op code or status code."""

    code: int
    key: str = ""
    payload: bytes = b""


def encode_frame(code: int, key: str = "", payload: bytes = b"") -> bytes:
    """Serialize one frame to bytes."""
    key_bytes = key.encode("utf-8")
    if len(key_bytes) > 0xFFFF:
        raise ProtocolError(f"key too long: {len(key_bytes)} bytes")
    if len(payload) > MAX_PAYLOAD:
        raise ProtocolError(f"payload too large: {len(payload)} bytes")
    header = HEADER.pack(
        MAGIC, VERSION, code, len(key_bytes), len(payload),
        zlib.crc32(payload) & 0xFFFFFFFF,
    )
    return header + key_bytes + payload


def frame_segments(code: int, key: str = "",
                   payload: bytes | bytearray | memoryview = b"",
                   ) -> list[bytes | memoryview]:
    """Frame as scatter-gather segments without copying the payload.

    Returns ``[header + key, payload-view]`` (the payload segment is
    omitted when empty).  Where :func:`encode_frame` materializes
    header + key + payload into one fresh ``bytes`` -- an O(payload)
    copy on every send -- this only allocates the small header and
    wraps the caller's payload in a :class:`memoryview`, so the send
    path is O(1) in payload size.  Pair with :func:`sendmsg_all`.
    """
    key_bytes = key.encode("utf-8")
    if len(key_bytes) > 0xFFFF:
        raise ProtocolError(f"key too long: {len(key_bytes)} bytes")
    if len(payload) > MAX_PAYLOAD:
        raise ProtocolError(f"payload too large: {len(payload)} bytes")
    header = HEADER.pack(
        MAGIC, VERSION, code, len(key_bytes), len(payload),
        zlib.crc32(payload) & 0xFFFFFFFF,
    )
    segments: list[bytes | memoryview] = [header + key_bytes]
    if len(payload):
        segments.append(
            payload if isinstance(payload, memoryview) else memoryview(payload)
        )
    return segments


def frame_segments_multi(code: int, key: str,
                         parts: list[bytes | bytearray | memoryview],
                         ) -> list[bytes | memoryview]:
    """Frame whose payload is the concatenation of *parts*, zero-copy.

    The CRC is accumulated incrementally across the parts so the payload
    is never joined into one buffer; this is what lets MULTI_PUT ship a
    whole window of shards without materializing the aggregate.
    """
    key_bytes = key.encode("utf-8")
    if len(key_bytes) > 0xFFFF:
        raise ProtocolError(f"key too long: {len(key_bytes)} bytes")
    crc = 0
    total = 0
    for part in parts:
        crc = zlib.crc32(part, crc)
        total += len(part)
    if total > MAX_PAYLOAD:
        raise ProtocolError(f"payload too large: {total} bytes")
    header = HEADER.pack(MAGIC, VERSION, code, len(key_bytes), total,
                         crc & 0xFFFFFFFF)
    segments: list[bytes | memoryview] = [header + key_bytes]
    segments.extend(
        p if isinstance(p, memoryview) else memoryview(p)
        for p in parts if len(p)
    )
    return segments


#: Max buffers per sendmsg() call; kernels cap the iovec count (IOV_MAX,
#: typically 1024), so longer segment lists are sent in groups.
_IOV_GROUP = 512

_HAS_SENDMSG = hasattr(socket.socket, "sendmsg")


def sendmsg_all(sock: socket.socket,
                buffers: list[bytes | bytearray | memoryview]) -> None:
    """Scatter-gather send of *buffers*, handling partial sends.

    ``sendmsg`` may stop short of the full iovec when the socket buffer
    fills; this loop re-enters with memoryview offsets instead of slicing
    fresh ``bytes``, so no byte is ever copied in user space.
    """
    if not _HAS_SENDMSG:  # platforms without sendmsg (e.g. Windows)
        sock.sendall(b"".join(buffers))
        return
    views = [memoryview(b) for b in buffers if len(b)]
    idx = 0
    offset = 0
    while idx < len(views):
        window = [views[idx][offset:] if offset else views[idx]]
        window.extend(views[idx + 1 : idx + _IOV_GROUP])
        sent = sock.sendmsg(window)
        while sent:
            available = len(views[idx]) - offset
            if sent >= available:
                sent -= available
                idx += 1
                offset = 0
            else:
                offset += sent
                sent = 0


def send_frame(sock: socket.socket, code: int, key: str = "",
               payload: bytes | bytearray | memoryview = b"") -> None:
    """Write one frame to *sock* (blocking, honours the socket timeout)."""
    sendmsg_all(sock, frame_segments(code, key, payload))


def _recv_exact(sock: socket.socket, n: int) -> bytes | None:
    """Read exactly *n* bytes; ``None`` on clean EOF before the first byte.

    EOF in the *middle* of the read is a protocol violation (the peer hung
    up mid-frame) and raises :class:`ProtocolError`.
    """
    chunks: list[bytes] = []
    remaining = n
    while remaining > 0:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if not chunks:
                return None
            raise ProtocolError(
                f"connection closed mid-frame ({n - remaining}/{n} bytes)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks) if chunks else b""


def recv_frame(sock: socket.socket) -> Frame | None:
    """Read one frame from *sock*; ``None`` on clean EOF between frames."""
    raw = _recv_exact(sock, HEADER.size)
    if raw is None:
        return None
    magic, version, code, key_len, payload_len, crc = HEADER.unpack(raw)
    if magic != MAGIC:
        raise ProtocolError(f"bad magic {magic!r}")
    if version != VERSION:
        raise ProtocolError(f"unsupported protocol version {version}")
    if payload_len > MAX_PAYLOAD:
        raise ProtocolError(f"payload length {payload_len} exceeds cap")
    body = _recv_exact(sock, key_len + payload_len)
    if body is None and key_len + payload_len > 0:
        raise ProtocolError("connection closed mid-frame (body)")
    body = body or b""
    key_bytes, payload = body[:key_len], body[key_len:]
    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
        raise ProtocolError(f"payload CRC mismatch for key {key_bytes!r}")
    return Frame(code=code, key=key_bytes.decode("utf-8"), payload=payload)


def read_frame(stream) -> Frame | None:
    """:func:`recv_frame` over a buffered binary reader.

    Accepts anything with a ``read(n)`` method that blocks until *n*
    bytes or EOF (e.g. ``sock.makefile("rb")``); the buffering cuts the
    two-syscalls-per-frame cost of :func:`recv_frame`, which matters on
    the streaming path where every shard is its own small frame.
    Returns ``None`` on clean EOF between frames.
    """
    raw = stream.read(HEADER.size)
    if not raw:
        return None
    if len(raw) < HEADER.size:
        raise ProtocolError(
            f"connection closed mid-frame ({len(raw)}/{HEADER.size} bytes)"
        )
    magic, version, code, key_len, payload_len, crc = HEADER.unpack(raw)
    if magic != MAGIC:
        raise ProtocolError(f"bad magic {magic!r}")
    if version != VERSION:
        raise ProtocolError(f"unsupported protocol version {version}")
    if payload_len > MAX_PAYLOAD:
        raise ProtocolError(f"payload length {payload_len} exceeds cap")
    body = stream.read(key_len + payload_len)
    if len(body) < key_len + payload_len:
        raise ProtocolError("connection closed mid-frame (body)")
    key_bytes, payload = body[:key_len], body[key_len:]
    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
        raise ProtocolError(f"payload CRC mismatch for key {key_bytes!r}")
    return Frame(code=code, key=key_bytes.decode("utf-8"), payload=payload)


def decode_frame(data: bytes) -> Frame:
    """Decode one complete frame from an in-memory buffer.

    The buffer must contain exactly one frame (header + key + payload);
    this is the TRACED envelope's way of nesting a frame inside another
    frame's payload without a socket in between.
    """
    if len(data) < HEADER.size:
        raise ProtocolError("frame buffer shorter than header")
    magic, version, code, key_len, payload_len, crc = HEADER.unpack_from(data)
    if magic != MAGIC:
        raise ProtocolError(f"bad magic {magic!r}")
    if version != VERSION:
        raise ProtocolError(f"unsupported protocol version {version}")
    if payload_len > MAX_PAYLOAD:
        raise ProtocolError(f"payload length {payload_len} exceeds cap")
    end = HEADER.size + key_len + payload_len
    if len(data) != end:
        raise ProtocolError(
            f"frame buffer is {len(data)} bytes, expected {end}"
        )
    key_bytes = data[HEADER.size : HEADER.size + key_len]
    payload = data[HEADER.size + key_len : end]
    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
        raise ProtocolError(f"payload CRC mismatch for key {key_bytes!r}")
    return Frame(code=code, key=key_bytes.decode("utf-8"), payload=payload)


# ---------------------------------------------------------------------------
# TRACED envelope (trace propagation, backward compatible)
# ---------------------------------------------------------------------------
#
# TRACED request payload:   context length (u16) + context (UTF-8, the
#                           client's "trace_id:span_id") + the complete
#                           encoded inner request frame.
# TRACED response payload:  spans length (u32) + span records (UTF-8 JSON
#                           list) + the complete encoded inner response
#                           frame.  The envelope's own status is OK when
#                           the server understood the envelope; the inner
#                           frame carries the operation's real status.

_CTX_LEN = struct.Struct("!H")
_SPANS_LEN = struct.Struct("!I")


def encode_traced_request(context: str, inner: bytes) -> bytes:
    raw = context.encode("utf-8")
    if len(raw) > 0xFFFF:
        raise ProtocolError(f"trace context too long: {len(raw)} bytes")
    return _CTX_LEN.pack(len(raw)) + raw + inner


def decode_traced_request(payload: bytes) -> tuple[str, Frame]:
    if len(payload) < _CTX_LEN.size:
        raise ProtocolError("TRACED request payload truncated")
    (ctx_len,) = _CTX_LEN.unpack_from(payload, 0)
    offset = _CTX_LEN.size
    if offset + ctx_len > len(payload):
        raise ProtocolError("TRACED request payload truncated")
    context = payload[offset : offset + ctx_len].decode("utf-8")
    return context, decode_frame(payload[offset + ctx_len :])


def encode_traced_response(spans_json: bytes, inner: bytes) -> bytes:
    return _SPANS_LEN.pack(len(spans_json)) + spans_json + inner


def decode_traced_response(payload: bytes) -> tuple[list[dict], Frame]:
    if len(payload) < _SPANS_LEN.size:
        raise ProtocolError("TRACED response payload truncated")
    (spans_len,) = _SPANS_LEN.unpack_from(payload, 0)
    offset = _SPANS_LEN.size
    if offset + spans_len > len(payload):
        raise ProtocolError("TRACED response payload truncated")
    try:
        records = json.loads(payload[offset : offset + spans_len] or b"[]")
    except ValueError as exc:
        raise ProtocolError(f"TRACED span records not valid JSON: {exc}")
    if not isinstance(records, list):
        raise ProtocolError("TRACED span records must be a JSON list")
    return records, decode_frame(payload[offset + spans_len :])


# ---------------------------------------------------------------------------
# DEADLINE envelope (remaining-budget propagation, backward compatible)
# ---------------------------------------------------------------------------
#
# DEADLINE request payload:  remaining budget in milliseconds (u32) + the
#                            complete encoded inner request frame (which may
#                            itself be a TRACED envelope).  The response is
#                            the inner response frame sent directly.

_BUDGET_MS = struct.Struct("!I")

#: Upper bound on a wire budget; also what an effectively-unbounded local
#: deadline is clamped to (u32 milliseconds ~= 49.7 days).
MAX_BUDGET_MS = 0xFFFFFFFF


def encode_deadline_request(budget_ms: int, inner: bytes) -> bytes:
    if not 0 <= budget_ms <= MAX_BUDGET_MS:
        raise ProtocolError(f"deadline budget out of range: {budget_ms} ms")
    return _BUDGET_MS.pack(budget_ms) + inner


def decode_deadline_request(payload: bytes) -> tuple[int, Frame]:
    if len(payload) < _BUDGET_MS.size:
        raise ProtocolError("DEADLINE request payload truncated")
    (budget_ms,) = _BUDGET_MS.unpack_from(payload, 0)
    return budget_ms, decode_frame(payload[_BUDGET_MS.size :])


# ---------------------------------------------------------------------------
# retry-after hint (RESOURCE_EXHAUSTED message text)
# ---------------------------------------------------------------------------

_RETRY_AFTER_PREFIX = "retry-after="


def encode_retry_hint(retry_after: float, message: str) -> str:
    """RESOURCE_EXHAUSTED message text carrying a retry-after hint."""
    return f"{_RETRY_AFTER_PREFIX}{retry_after:.3f}; {message}"


def decode_retry_hint(message: str) -> tuple[float | None, str]:
    """Split a shed message into ``(retry_after_seconds | None, text)``."""
    if not message.startswith(_RETRY_AFTER_PREFIX):
        return None, message
    head, sep, rest = message[len(_RETRY_AFTER_PREFIX) :].partition(";")
    try:
        retry_after = float(head.strip())
    except ValueError:
        return None, message
    if retry_after < 0:
        return None, message
    return retry_after, rest.strip() if sep else ""


# ---------------------------------------------------------------------------
# payload encodings for the structured responses
# ---------------------------------------------------------------------------

_STAT_HEADER = struct.Struct("!Q")


def encode_stat(stat: BlobStat) -> bytes:
    """HEAD response payload: size (u64) + checksum text."""
    return _STAT_HEADER.pack(stat.size) + stat.checksum.encode("utf-8")


def decode_stat(key: str, payload: bytes) -> BlobStat:
    if len(payload) < _STAT_HEADER.size:
        raise ProtocolError("HEAD payload truncated")
    (size,) = _STAT_HEADER.unpack(payload[: _STAT_HEADER.size])
    checksum = payload[_STAT_HEADER.size :].decode("utf-8")
    return BlobStat(key=key, size=size, checksum=checksum)


def encode_keys(keys: list[str]) -> bytes:
    """KEYS response payload: count (u32) + per-key (u16 length + bytes)."""
    parts = [struct.pack("!I", len(keys))]
    for key in keys:
        raw = key.encode("utf-8")
        parts.append(struct.pack("!H", len(raw)))
        parts.append(raw)
    return b"".join(parts)


def decode_keys(payload: bytes) -> list[str]:
    if len(payload) < 4:
        raise ProtocolError("KEYS payload truncated")
    (count,) = struct.unpack_from("!I", payload, 0)
    keys: list[str] = []
    offset = 4
    for _ in range(count):
        if offset + 2 > len(payload):
            raise ProtocolError("KEYS payload truncated")
        (length,) = struct.unpack_from("!H", payload, offset)
        offset += 2
        if offset + length > len(payload):
            raise ProtocolError("KEYS payload truncated")
        keys.append(payload[offset : offset + length].decode("utf-8"))
        offset += length
    return keys


# ---------------------------------------------------------------------------
# batch payload encodings (MULTI_PUT / MULTI_GET)
# ---------------------------------------------------------------------------
#
# MULTI_PUT request:   count (u32), then per item key length (u16) + key +
#                      data length (u32) + data.
# MULTI_GET request:   the KEYS encoding (count + per-key length + key).
# Batch response:      count (u32), then per item status (u8) + body length
#                      (u32) + body, where body is the checksum echo
#                      (MULTI_PUT, OK), the object bytes (MULTI_GET, OK) or
#                      a UTF-8 error message (any non-OK status).  The frame
#                      itself answers Status.OK whenever the batch was
#                      decodable; item outcomes live in the payload.

_BATCH_COUNT = struct.Struct("!I")
_ITEM_KEY_LEN = struct.Struct("!H")
_ITEM_BODY_LEN = struct.Struct("!I")
_ITEM_STATUS = struct.Struct("!B")


def encode_multi_put(items: list[tuple[str, bytes]]) -> bytes:
    """MULTI_PUT request payload from ``(key, data)`` pairs."""
    parts = [_BATCH_COUNT.pack(len(items))]
    for key, data in items:
        raw = key.encode("utf-8")
        if len(raw) > 0xFFFF:
            raise ProtocolError(f"key too long: {len(raw)} bytes")
        parts.append(_ITEM_KEY_LEN.pack(len(raw)))
        parts.append(raw)
        parts.append(_ITEM_BODY_LEN.pack(len(data)))
        parts.append(data)
    return b"".join(parts)


def encode_multi_put_parts(
    items: list[tuple[str, bytes]],
) -> list[bytes | memoryview]:
    """MULTI_PUT request payload as zero-copy parts.

    Byte-identical to :func:`encode_multi_put` once concatenated, but the
    item data buffers are wrapped in memoryviews instead of joined, so a
    32 MiB batch window costs small per-item headers rather than a fresh
    32 MiB aggregate.  Feed the result to :func:`frame_segments_multi`.
    """
    parts: list[bytes | memoryview] = [_BATCH_COUNT.pack(len(items))]
    for key, data in items:
        raw = key.encode("utf-8")
        if len(raw) > 0xFFFF:
            raise ProtocolError(f"key too long: {len(raw)} bytes")
        parts.append(
            _ITEM_KEY_LEN.pack(len(raw)) + raw + _ITEM_BODY_LEN.pack(len(data))
        )
        if len(data):
            parts.append(
                data if isinstance(data, memoryview) else memoryview(data)
            )
    return parts


def decode_multi_put(payload: bytes) -> list[tuple[str, bytes]]:
    if len(payload) < _BATCH_COUNT.size:
        raise ProtocolError("MULTI_PUT payload truncated")
    (count,) = _BATCH_COUNT.unpack_from(payload, 0)
    offset = _BATCH_COUNT.size
    items: list[tuple[str, bytes]] = []
    for _ in range(count):
        if offset + _ITEM_KEY_LEN.size > len(payload):
            raise ProtocolError("MULTI_PUT payload truncated")
        (key_len,) = _ITEM_KEY_LEN.unpack_from(payload, offset)
        offset += _ITEM_KEY_LEN.size
        if offset + key_len + _ITEM_BODY_LEN.size > len(payload):
            raise ProtocolError("MULTI_PUT payload truncated")
        key = payload[offset : offset + key_len].decode("utf-8")
        offset += key_len
        (data_len,) = _ITEM_BODY_LEN.unpack_from(payload, offset)
        offset += _ITEM_BODY_LEN.size
        if offset + data_len > len(payload):
            raise ProtocolError("MULTI_PUT payload truncated")
        items.append((key, payload[offset : offset + data_len]))
        offset += data_len
    if offset != len(payload):
        raise ProtocolError(
            f"MULTI_PUT payload has {len(payload) - offset} trailing bytes"
        )
    return items


def encode_batch_results(results: list[tuple[int, bytes]]) -> bytes:
    """Batch response payload from per-item ``(status, body)`` pairs."""
    parts = [_BATCH_COUNT.pack(len(results))]
    for status, body in results:
        parts.append(_ITEM_STATUS.pack(status))
        parts.append(_ITEM_BODY_LEN.pack(len(body)))
        parts.append(body)
    return b"".join(parts)


def decode_batch_results(payload: bytes) -> list[tuple[int, bytes]]:
    if len(payload) < _BATCH_COUNT.size:
        raise ProtocolError("batch response payload truncated")
    (count,) = _BATCH_COUNT.unpack_from(payload, 0)
    offset = _BATCH_COUNT.size
    results: list[tuple[int, bytes]] = []
    for _ in range(count):
        if offset + _ITEM_STATUS.size + _ITEM_BODY_LEN.size > len(payload):
            raise ProtocolError("batch response payload truncated")
        (status,) = _ITEM_STATUS.unpack_from(payload, offset)
        offset += _ITEM_STATUS.size
        (body_len,) = _ITEM_BODY_LEN.unpack_from(payload, offset)
        offset += _ITEM_BODY_LEN.size
        if offset + body_len > len(payload):
            raise ProtocolError("batch response payload truncated")
        results.append((status, payload[offset : offset + body_len]))
        offset += body_len
    if offset != len(payload):
        raise ProtocolError(
            f"batch response payload has {len(payload) - offset} trailing bytes"
        )
    return results


# ---------------------------------------------------------------------------
# stream payload encodings (STREAM_PUT / STREAM_GET sessions)
# ---------------------------------------------------------------------------
#
# STREAM_PUT request:   empty (opens a session on this connection).
# STREAM_SEG request:   key = object key, payload = object bytes; the OK
#                       response echoes the server-side SHA-256.
# STREAM_END request:   empty; the OK response payload is the committed
#                       segment count (u32).
# STREAM_GET request:   the KEYS encoding.  The response is one OK header
#                       frame whose payload is the key count (u32),
#                       followed by exactly that many frames, each
#                       carrying one key's status + bytes (or a UTF-8
#                       error message for non-OK statuses).

_STREAM_COUNT = struct.Struct("!I")

#: Op codes that form (or answer) a stream session.  Stream ops are sent
#: bare on the connection; servers reject them inside TRACED/DEADLINE
#: envelopes because a multi-frame response cannot nest in one envelope.
STREAM_OPS = frozenset(
    {OpCode.STREAM_PUT, OpCode.STREAM_SEG, OpCode.STREAM_END, OpCode.STREAM_GET}
)


def encode_stream_count(count: int) -> bytes:
    """STREAM_END ack / STREAM_GET header payload: segment count (u32)."""
    return _STREAM_COUNT.pack(count)


def decode_stream_count(payload: bytes) -> int:
    if len(payload) != _STREAM_COUNT.size:
        raise ProtocolError("stream count payload truncated")
    (count,) = _STREAM_COUNT.unpack(payload)
    return count


# ---------------------------------------------------------------------------
# error <-> status translation
# ---------------------------------------------------------------------------

_STATUS_FOR_ERROR: list[tuple[type[Exception], Status]] = [
    # Order matters: subclasses before their bases (ResourceExhaustedError
    # is a ProviderUnavailableError, DeadlineExceeded is a ProviderError).
    (ResourceExhaustedError, Status.RESOURCE_EXHAUSTED),
    (DeadlineExceeded, Status.DEADLINE_EXCEEDED),
    (BlobNotFoundError, Status.NOT_FOUND),
    (BlobCorruptedError, Status.CORRUPTED),
    (ProviderUnavailableError, Status.UNAVAILABLE),
]


def status_for_error(exc: Exception) -> Status:
    """Wire status a server should answer for a backend exception."""
    for err_type, status in _STATUS_FOR_ERROR:
        if isinstance(exc, err_type):
            return status
    if isinstance(exc, (ProtocolError, ValueError)):
        return Status.BAD_REQUEST
    return Status.INTERNAL


def error_for_status(status: int, message: str) -> ProviderError:
    """Client-side exception reconstructed from an error response."""
    if status == Status.NOT_FOUND:
        return BlobNotFoundError(message)
    if status == Status.CORRUPTED:
        return BlobCorruptedError(message)
    if status == Status.UNAVAILABLE:
        return ProviderUnavailableError(message)
    if status == Status.RESOURCE_EXHAUSTED:
        retry_after, text = decode_retry_hint(message)
        return ResourceExhaustedError(text or message, retry_after=retry_after)
    if status == Status.DEADLINE_EXCEEDED:
        return DeadlineExceeded(message)
    return ProviderError(f"status {status}: {message}")
