"""Socket transport: chunk servers, remote providers, wire protocol.

Turns the paper's distributor <-> provider interaction into an actual
network conversation: a :class:`ChunkServer` fronts any backend over TCP,
a :class:`RemoteProvider` speaks the wire protocol from the distributor
side, and :class:`LocalCluster` stands up whole localhost fleets for
tests, examples and benchmarks.
"""

from repro.net.cluster import LocalCluster
from repro.net.pool import ConnectionPool
from repro.net.protocol import (
    MAGIC,
    MAX_PAYLOAD,
    VERSION,
    Frame,
    OpCode,
    ProtocolError,
    Status,
    encode_frame,
    recv_frame,
    send_frame,
)
from repro.net.remote import RemoteProvider, RetryPolicy
from repro.net.resilience import (
    LatencyTracker,
    RetryBudget,
    current_retry_budget,
    hedged_call,
    retry_budget_scope,
)
from repro.net.server import ChunkServer, WireFaults

__all__ = [
    "ChunkServer",
    "ConnectionPool",
    "Frame",
    "LatencyTracker",
    "LocalCluster",
    "MAGIC",
    "MAX_PAYLOAD",
    "OpCode",
    "ProtocolError",
    "RemoteProvider",
    "RetryBudget",
    "RetryPolicy",
    "Status",
    "VERSION",
    "WireFaults",
    "current_retry_budget",
    "encode_frame",
    "hedged_call",
    "recv_frame",
    "retry_budget_scope",
    "send_frame",
]
