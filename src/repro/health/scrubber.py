"""Background scrubber: continuous shard auditing and automatic repair.

"RAID-like striping... guarantees successful retrieval of data in case of a
cloud provider being blocked by any unlikely event or going out of
business" (Section III-B) -- but only while enough stripe members survive.
The scrubber turns the seed's manual, per-file ``repair_file`` pass into a
continuous background process: on every cycle it walks the distributor's
chunk table, fans out cheap ``head`` checks across the provider fleet via
the transport executor, compares the returned checksums against the
recorded shard checksums (catching silent at-rest corruption without
transferring payloads), and rebuilds anything missing or rotten onto
healthy providers.

Each cycle appends a :class:`ScrubReport` to :attr:`Scrubber.reports`; the
CLI's ``repair --auto`` runs a single cycle and renders the report.
"""

from __future__ import annotations

import logging
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.errors import BlobCorruptedError, ProviderError
from repro.core.virtual_id import shard_key
from repro.obs.metrics import MetricsRegistry, get_metrics

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.distributor import CloudDataDistributor

log = logging.getLogger(__name__)


@dataclass(frozen=True)
class ScrubReport:
    """Outcome of one scrub cycle over the whole chunk table."""

    cycle: int
    duration_s: float
    chunks_checked: int
    shards_checked: int
    shards_missing: int
    shards_rebuilt: int
    chunks_unrecoverable: int
    relocations: tuple[tuple[int, int, str, str], ...] = ()
    # (virtual_id, shard_index, old_provider, new_provider)

    def summary(self) -> str:
        return (
            f"scrub #{self.cycle}: {self.chunks_checked} chunks / "
            f"{self.shards_checked} shards checked, "
            f"{self.shards_missing} bad, {self.shards_rebuilt} rebuilt, "
            f"{self.chunks_unrecoverable} unrecoverable "
            f"({self.duration_s:.3f}s)"
        )


class Scrubber:
    """Periodic shard audit + automatic rebuild over one distributor.

    ``interval_s`` is the wall-clock pause between background cycles;
    ``probe_fleet`` additionally runs one active probe sweep through the
    distributor's health monitor per cycle, so providers that died while
    idle are detected without waiting for live traffic to hit them.

    Usable as a context manager (``with Scrubber(d, interval_s=5): ...``)
    or one-shot via :meth:`run_once`.
    """

    def __init__(
        self,
        distributor: "CloudDataDistributor",
        *,
        interval_s: float = 30.0,
        probe_fleet: bool = True,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be positive, got {interval_s}")
        self.distributor = distributor
        self.interval_s = interval_s
        self.probe_fleet = probe_fleet
        self.metrics = metrics if metrics is not None else get_metrics()
        self.reports: list[ScrubReport] = []
        self._cycle = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- one cycle ---------------------------------------------------------

    def run_once(self) -> ScrubReport:
        """Audit every chunk once, repairing damage; returns the report."""
        d = self.distributor
        started = time.perf_counter()
        if self.probe_fleet and d.health is not None:
            d.health.probe_all()
        chunks_checked = shards_checked = 0
        shards_missing = shards_rebuilt = chunks_unrecoverable = 0
        relocations: list[tuple[int, int, str, str]] = []
        with d.op_lock:
            chunk_indices = [index for index, _ in d.chunk_table]
        for index in chunk_indices:
            with d.op_lock:
                try:
                    entry = d.chunk_table.get(index)
                except Exception:
                    continue  # removed since the snapshot of indices
                if entry.virtual_id not in d._chunk_state:
                    continue
                checked, bad = self._audit_chunk(entry)
                chunks_checked += 1
                shards_checked += checked
                if not bad:
                    continue
                missing, rebuilt, unrecoverable, moved = d._repair_chunk(
                    entry, suspect=bad
                )
                shards_missing += missing
                shards_rebuilt += rebuilt
                chunks_unrecoverable += unrecoverable
                relocations.extend(moved)
        self._cycle += 1
        duration = time.perf_counter() - started
        report = ScrubReport(
            cycle=self._cycle,
            duration_s=duration,
            chunks_checked=chunks_checked,
            shards_checked=shards_checked,
            shards_missing=shards_missing,
            shards_rebuilt=shards_rebuilt,
            chunks_unrecoverable=chunks_unrecoverable,
            relocations=tuple(relocations),
        )
        self.reports.append(report)
        # Same registry the rest of the data path reports into, so
        # ``repro stats`` shows scrub coverage next to live traffic.
        self.metrics.counter("scrub_cycles_total").inc()
        self.metrics.counter("scrub_chunks_checked_total").inc(chunks_checked)
        self.metrics.counter("scrub_shards_checked_total").inc(shards_checked)
        self.metrics.counter("scrub_shards_missing_total").inc(shards_missing)
        self.metrics.counter("scrub_shards_rebuilt_total").inc(shards_rebuilt)
        self.metrics.counter("scrub_chunks_unrecoverable_total").inc(
            chunks_unrecoverable
        )
        self.metrics.histogram("scrub_cycle_seconds").observe(duration)
        return report

    def _audit_chunk(self, entry) -> tuple[int, list[int]]:
        """Head-check one chunk's shards; returns (checked, bad indices).

        A shard is bad when its provider cannot answer the ``head``, the
        object is gone, or the stored checksum no longer matches the one
        recorded at write time (silent at-rest corruption).
        """
        d = self.distributor
        state = d._chunk_state[entry.virtual_id]
        names = [
            d.provider_table.get(i).name for i in entry.provider_indices
        ]
        expected = state.shard_checksums

        def check(shard_index: int):
            name = names[shard_index]
            key = shard_key(entry.virtual_id, shard_index)
            try:
                stat = d.registry.get(name).provider.head(key)
            except ProviderError as exc:
                d._record_health(name, ok=False, exc=exc)
                raise
            d._record_health(name, ok=True)
            if expected is not None and stat.checksum != expected[shard_index]:
                raise BlobCorruptedError(
                    f"shard {key!r} at provider {name!r} drifted from its "
                    f"recorded checksum"
                )
            return stat

        indices = list(range(len(names)))
        outcomes = d._transport_map(check, indices, stop_on_error=False)
        bad = [i for i, (_, exc) in zip(indices, outcomes) if exc is not None]
        return len(indices), bad

    # -- background thread -------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "Scrubber":
        """Begin scrubbing every ``interval_s`` seconds in the background."""
        if self.running:
            raise RuntimeError("scrubber already running")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-scrubber", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the background thread (waits for the current cycle)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=30.0)
            self._thread = None

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.run_once()
            except Exception:  # noqa: BLE001 - the scrubber must outlive bad cycles
                log.exception("scrub cycle failed; will retry next interval")

    def __enter__(self) -> "Scrubber":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
