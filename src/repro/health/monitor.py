"""Per-provider health tracking from live traffic and active probes.

The paper's availability argument (Section III-A's outage/churn threat
catalogue) assumes the distributor *knows* which providers are serving.
The seed implementation inferred health from a simulated-only ``available``
attribute, which silently treats a dead :class:`RemoteProvider` or a broken
:class:`DiskProvider` as healthy.  The :class:`HealthMonitor` replaces that
with evidence:

* **passive signals** -- every provider request the distributor issues is
  recorded as a success or failure; failures feed an error-rate EWMA and a
  consecutive-transport-failure counter;
* **active probes** -- a cheap reachability check per backend flavour
  (``ping`` for socket providers, ``head`` of a sentinel key for disk and
  memory, the ``available`` flag for simulated providers).

A provider is ``DOWN`` after enough consecutive transport failures or a
failed probe, ``SUSPECT`` while its error EWMA is elevated, and ``HEALTHY``
otherwise.  Placement and repair consult these states instead of
``getattr(provider, "available", True)``; a ``DOWN`` verdict is re-checked
by probing (rate-limited by ``probe_min_interval``) so recovered providers
rejoin the fleet without a human marking them up.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING

from repro.core.errors import ProviderError, ProviderUnavailableError, ReproError
from repro.obs.metrics import MetricsRegistry, get_metrics

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.providers.base import CloudProvider
    from repro.providers.registry import ProviderRegistry

#: Sentinel key used for reachability probes; providers treat a missing key
#: as a *successful* probe (the backend answered), so the key never needs
#: to exist.
PROBE_KEY = "__health_probe__"


class HealthState(Enum):
    """Distributor-side verdict about one provider."""

    HEALTHY = "healthy"
    SUSPECT = "suspect"
    DOWN = "down"


def probe_provider(provider: "CloudProvider") -> bool:
    """One cheap active reachability check, True if the provider answered.

    Used directly by callers with no monitor attached, and by the monitor
    as its probe primitive.  Backend-not-found answers count as success:
    the probe asks "is anyone there?", not "is my key there?".
    """
    available = getattr(provider, "available", None)
    if available is not None and not callable(available):
        # Simulated providers publish their up/down flag; reading it costs
        # no simulated time, unlike issuing a request against a down node.
        return bool(available)
    ping = getattr(provider, "ping", None)
    if callable(ping):
        try:
            ping()
            return True
        except (ProviderError, ReproError, OSError):
            return False
    try:
        provider.head(PROBE_KEY)
        return True
    except ProviderUnavailableError:
        return False
    except ProviderError:
        return True  # BlobNotFound etc.: the backend answered
    except OSError:
        return False


@dataclass
class ProviderHealth:
    """Mutable health record for one provider.

    Success/failure totals live in the shared metrics registry (the
    ``health_provider_results_total`` counter, labelled by provider and
    outcome) rather than private integers, so the health report and
    ``repro stats`` count the very same traffic.  A record created
    outside a monitor (e.g. a placeholder row) reads zero.
    """

    name: str
    error_ewma: float = 0.0
    consecutive_failures: int = 0
    marked_down: bool = False
    last_probe_ok: bool | None = None
    last_probe_at: float = field(default=float("-inf"))
    metrics: MetricsRegistry | None = None

    def __post_init__(self) -> None:
        metrics = self.metrics if self.metrics is not None else get_metrics()
        self._success = metrics.counter(
            "health_provider_results_total",
            provider=self.name,
            outcome="success",
        )
        self._failure = metrics.counter(
            "health_provider_results_total",
            provider=self.name,
            outcome="failure",
        )
        # The registry counter is process-wide and outlives any one record
        # (several monitors may track the same provider name); baselines
        # keep this record's view scoped to traffic it witnessed itself.
        self._success_base = self._success.value
        self._failure_base = self._failure.value

    @property
    def successes(self) -> int:
        return int(self._success.value - self._success_base)

    @property
    def failures(self) -> int:
        return int(self._failure.value - self._failure_base)

    def count_success(self) -> None:
        self._success.inc()

    def count_failure(self) -> None:
        self._failure.inc()


class HealthMonitor:
    """Track health states for every provider in a registry.

    ``ewma_alpha`` weights the newest observation in the error-rate EWMA;
    ``suspect_threshold`` is the EWMA level at which a provider turns
    SUSPECT; ``down_after`` consecutive *transport* failures (unreachable,
    not merely a missing blob) turn it DOWN.  DOWN providers are re-probed
    on demand, at most once per ``probe_min_interval`` wall-clock seconds,
    so a recovered provider is readmitted automatically.
    """

    def __init__(
        self,
        registry: "ProviderRegistry",
        *,
        ewma_alpha: float = 0.3,
        suspect_threshold: float = 0.5,
        down_after: int = 3,
        probe_min_interval: float = 1.0,
        time_fn=time.monotonic,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError(f"ewma_alpha must be in (0, 1], got {ewma_alpha}")
        if not 0.0 < suspect_threshold <= 1.0:
            raise ValueError(
                f"suspect_threshold must be in (0, 1], got {suspect_threshold}"
            )
        if down_after < 1:
            raise ValueError(f"down_after must be >= 1, got {down_after}")
        if probe_min_interval < 0:
            raise ValueError(
                f"probe_min_interval must be >= 0, got {probe_min_interval}"
            )
        self.registry = registry
        self.ewma_alpha = ewma_alpha
        self.suspect_threshold = suspect_threshold
        self.down_after = down_after
        self.probe_min_interval = probe_min_interval
        self._time = time_fn
        self.metrics = metrics if metrics is not None else get_metrics()
        self._lock = threading.RLock()
        self._records: dict[str, ProviderHealth] = {}

    def _record(self, name: str) -> ProviderHealth:
        record = self._records.get(name)
        if record is None:
            record = self._records[name] = ProviderHealth(
                name, metrics=self.metrics
            )
        return record

    # -- passive signals (fed by distributor traffic) ----------------------

    def record_success(self, name: str) -> None:
        with self._lock:
            record = self._record(name)
            record.count_success()
            record.consecutive_failures = 0
            record.marked_down = False
            record.error_ewma *= 1.0 - self.ewma_alpha

    def record_failure(self, name: str, transport: bool = True) -> None:
        """Record one failed request.

        ``transport=False`` marks an *application* failure (missing or
        corrupt blob): it raises the error EWMA (the provider is degrading
        data) but does not count toward the consecutive-failure DOWN
        threshold -- a provider that answers "not found" is reachable.
        """
        with self._lock:
            record = self._record(name)
            record.count_failure()
            record.error_ewma = (
                record.error_ewma * (1.0 - self.ewma_alpha) + self.ewma_alpha
            )
            if transport:
                record.consecutive_failures += 1
                if record.consecutive_failures >= self.down_after:
                    record.marked_down = True

    # -- active probes -----------------------------------------------------

    def probe(self, name: str) -> bool:
        """Actively probe one provider and fold the result into its record."""
        provider = self.registry.get(name).provider
        ok = probe_provider(provider)
        with self._lock:
            record = self._record(name)
            record.last_probe_ok = ok
            record.last_probe_at = self._time()
            if ok:
                record.consecutive_failures = 0
                record.marked_down = False
            else:
                record.marked_down = True
        return ok

    def probe_all(self) -> dict[str, bool]:
        """Probe every registered provider; returns name -> reachable."""
        return {name: self.probe(name) for name in self.registry.names()}

    # -- verdicts ----------------------------------------------------------

    def state(self, name: str) -> HealthState:
        """Current verdict from the recorded evidence (no probing)."""
        with self._lock:
            record = self._records.get(name)
            if record is None:
                return HealthState.HEALTHY
            if record.marked_down:
                return HealthState.DOWN
            if record.error_ewma >= self.suspect_threshold:
                return HealthState.SUSPECT
            return HealthState.HEALTHY

    def healthy(self, name: str) -> bool:
        return self.state(name) is HealthState.HEALTHY

    def suspect(self, name: str) -> bool:
        return self.state(name) is HealthState.SUSPECT

    def down(self, name: str) -> bool:
        return self.state(name) is HealthState.DOWN

    def is_usable(self, name: str) -> bool:
        """May new work be sent to *name*?

        HEALTHY and SUSPECT providers are usable (suspect ones are merely
        deprioritized by placement).  A DOWN provider gets one fresh active
        probe -- rate-limited by ``probe_min_interval`` -- so recovery is
        noticed at the next placement decision instead of never.
        """
        if self.state(name) is not HealthState.DOWN:
            return True
        with self._lock:
            record = self._record(name)
            stale = (
                self._time() - record.last_probe_at >= self.probe_min_interval
            )
        if stale:
            return self.probe(name)
        return False

    # -- reporting ---------------------------------------------------------

    def report_rows(self) -> list[list[object]]:
        """Table rows (provider, state, EWMA, consec, ops, last probe)."""
        rows: list[list[object]] = []
        with self._lock:
            for name in self.registry.names():
                record = self._records.get(name) or ProviderHealth(
                    name, metrics=self.metrics
                )
                probe = (
                    "-"
                    if record.last_probe_ok is None
                    else ("ok" if record.last_probe_ok else "failed")
                )
                rows.append(
                    [
                        name,
                        self.state(name).value,
                        f"{record.error_ewma:.2f}",
                        record.consecutive_failures,
                        record.successes + record.failures,
                        probe,
                    ]
                )
        return rows
