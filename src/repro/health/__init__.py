"""Self-healing layer: provider health tracking and background scrubbing.

:class:`HealthMonitor` turns live-traffic outcomes and cheap active probes
into per-provider HEALTHY / SUSPECT / DOWN verdicts that placement, write
failover and repair consult; :class:`Scrubber` walks the chunk table on an
interval and rebuilds missing or rotten shards automatically.
"""

from repro.health.monitor import (
    PROBE_KEY,
    HealthMonitor,
    HealthState,
    ProviderHealth,
    probe_provider,
)
from repro.health.scrubber import Scrubber, ScrubReport

__all__ = [
    "PROBE_KEY",
    "HealthMonitor",
    "HealthState",
    "ProviderHealth",
    "probe_provider",
    "Scrubber",
    "ScrubReport",
]
