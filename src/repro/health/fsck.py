"""``repro fsck``: offline cross-audit of the chunk table vs the fleet.

The journal (:mod:`repro.core.journal`) keeps the *operations* consistent;
fsck is the independent check that the end state actually holds.  It walks
every chunk-table row and every provider's object listing and classifies
each discrepancy:

* **missing** -- a shard or snapshot the tables reference but the provider
  no longer holds;
* **corrupt** -- a shard whose at-rest checksum (cheap ``head``, no payload
  transfer) drifted from the checksum recorded at write time;
* **orphans** -- provider objects no table references (crash litter, failed
  deletes) -- snapshot-keyed orphans are reported separately as **stale
  snapshots** since they usually mean an interrupted update;
* **unreachable** -- providers that cannot be listed (their objects can be
  neither confirmed nor condemned);
* **unknown codec** -- chunk-table rows whose codec spec this build cannot
  parse (quarantined at metadata load instead of crashing the boot); their
  shards stay untouched on the providers and the row is reported here so
  the operator knows those chunks need a newer build (or a metadata fix)
  to read.

With ``repair=True`` the damage is driven back to clean: missing/corrupt
shards are rebuilt through the scrubber (RAID reconstruction + relocation),
orphans and stale snapshots are deleted, and the audit reruns so the
returned report reflects the *post*-repair state -- a second
``run_fsck(..., repair=False)`` pass is the convergence check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.errors import BlobNotFoundError, ProviderError
from repro.core.virtual_id import shard_key, snapshot_key

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.distributor import CloudDataDistributor


@dataclass(frozen=True)
class FsckIssue:
    """One missing or corrupt object referenced by the tables."""

    virtual_id: int
    shard_index: int  # -1 for the chunk's snapshot object
    provider: str
    problem: str  # "missing" | "corrupt"

    @property
    def key(self) -> str:
        if self.shard_index < 0:
            return snapshot_key(self.virtual_id)
        return shard_key(self.virtual_id, self.shard_index)


@dataclass
class FsckReport:
    """Everything one fsck pass found (and, with repair, fixed)."""

    providers_checked: int = 0
    shards_checked: int = 0
    snapshots_checked: int = 0
    missing: list[FsckIssue] = field(default_factory=list)
    corrupt: list[FsckIssue] = field(default_factory=list)
    orphans: dict[str, list[str]] = field(default_factory=dict)
    stale_snapshots: dict[str, list[str]] = field(default_factory=dict)
    unreachable: list[str] = field(default_factory=list)
    unknown_codec: list[tuple[int, str]] = field(default_factory=list)
    # (virtual id, unparseable codec spec string)
    # Repair outcome (only populated by run_fsck(..., repair=True)):
    repaired: bool = False
    shards_rebuilt: int = 0
    chunks_unrecoverable: int = 0
    orphans_deleted: int = 0

    @property
    def clean(self) -> bool:
        return not (
            self.missing
            or self.corrupt
            or any(self.orphans.values())
            or any(self.stale_snapshots.values())
            or self.unknown_codec
        )

    def to_json(self) -> dict:
        def issues(items: list[FsckIssue]) -> list[dict]:
            return [
                {
                    "virtual_id": i.virtual_id,
                    "shard_index": i.shard_index,
                    "provider": i.provider,
                    "key": i.key,
                }
                for i in items
            ]

        return {
            "clean": self.clean,
            "providers_checked": self.providers_checked,
            "shards_checked": self.shards_checked,
            "snapshots_checked": self.snapshots_checked,
            "missing": issues(self.missing),
            "corrupt": issues(self.corrupt),
            "orphans": self.orphans,
            "stale_snapshots": self.stale_snapshots,
            "unreachable": self.unreachable,
            "unknown_codec": [
                {"virtual_id": vid, "codec": spec}
                for vid, spec in self.unknown_codec
            ],
            "repaired": self.repaired,
            "shards_rebuilt": self.shards_rebuilt,
            "chunks_unrecoverable": self.chunks_unrecoverable,
            "orphans_deleted": self.orphans_deleted,
        }

    def summary(self) -> str:
        orphan_count = sum(len(v) for v in self.orphans.values())
        stale_count = sum(len(v) for v in self.stale_snapshots.values())
        text = (
            f"fsck: {self.shards_checked} shards + {self.snapshots_checked} "
            f"snapshots across {self.providers_checked} providers -- "
            f"{len(self.missing)} missing, {len(self.corrupt)} corrupt, "
            f"{orphan_count} orphan(s), {stale_count} stale snapshot(s), "
            f"{len(self.unreachable)} unreachable, "
            f"{len(self.unknown_codec)} unknown codec(s)"
        )
        if self.repaired:
            text += (
                f"; repaired: {self.shards_rebuilt} shards rebuilt, "
                f"{self.orphans_deleted} orphan(s) deleted, "
                f"{self.chunks_unrecoverable} chunk(s) unrecoverable"
            )
        return text

    def render_text(self) -> str:
        lines = [self.summary()]
        for issue in self.missing:
            lines.append(
                f"  missing: {issue.key} at {issue.provider} "
                f"(chunk {issue.virtual_id})"
            )
        for issue in self.corrupt:
            lines.append(
                f"  corrupt: {issue.key} at {issue.provider} "
                f"(chunk {issue.virtual_id})"
            )
        for name, keys in sorted(self.orphans.items()):
            preview = ", ".join(keys[:5]) + (" ..." if len(keys) > 5 else "")
            lines.append(f"  orphans at {name}: {preview}")
        for name, keys in sorted(self.stale_snapshots.items()):
            preview = ", ".join(keys[:5]) + (" ..." if len(keys) > 5 else "")
            lines.append(f"  stale snapshots at {name}: {preview}")
        for name in self.unreachable:
            lines.append(f"  unreachable: {name}")
        for vid, spec in self.unknown_codec:
            lines.append(
                f"  unknown codec: chunk {vid} uses {spec!r} "
                "(quarantined; needs a newer build to read)"
            )
        lines.append("clean" if self.clean else "NOT clean")
        return "\n".join(lines)


def _audit(distributor: "CloudDataDistributor") -> FsckReport:
    """One read-only pass: list, cross-reference, head-check."""
    report = FsckReport()
    with distributor.op_lock:
        # (provider name -> key -> expected checksum | None)
        expected: dict[str, dict[str, str | None]] = {
            name: {} for name in distributor.registry.names()
        }
        issues_by_key: dict[tuple[str, str], FsckIssue] = {}
        for vid, packed in sorted(distributor._codec_quarantine.items()):
            report.unknown_codec.append((vid, str(packed[0])))
        for _, entry in distributor.chunk_table:
            vid = entry.virtual_id
            state = distributor._chunk_state.get(vid)
            checksums = state.shard_checksums if state is not None else None
            for shard_index, table_index in enumerate(entry.provider_indices):
                name = distributor.provider_table.get(table_index).name
                key = shard_key(vid, shard_index)
                expected[name][key] = (
                    checksums[shard_index] if checksums is not None else None
                )
                issues_by_key[(name, key)] = FsckIssue(
                    virtual_id=vid, shard_index=shard_index,
                    provider=name, problem="",
                )
            if entry.snapshot_index is not None:
                name = distributor.provider_table.get(
                    entry.snapshot_index
                ).name
                key = snapshot_key(vid)
                expected[name][key] = None  # snapshot checksums untracked
                issues_by_key[(name, key)] = FsckIssue(
                    virtual_id=vid, shard_index=-1, provider=name, problem="",
                )

    for name in sorted(expected):
        provider = distributor.registry.get(name).provider
        try:
            present = set(provider.keys())
        except ProviderError:
            report.unreachable.append(name)
            continue
        report.providers_checked += 1
        for key, checksum in sorted(expected[name].items()):
            issue = issues_by_key[(name, key)]
            if issue.shard_index < 0:
                report.snapshots_checked += 1
            else:
                report.shards_checked += 1
            if key not in present:
                report.missing.append(
                    FsckIssue(
                        virtual_id=issue.virtual_id,
                        shard_index=issue.shard_index,
                        provider=name,
                        problem="missing",
                    )
                )
                continue
            if checksum is None:
                continue
            try:
                stat = provider.head(key)
            except BlobNotFoundError:
                report.missing.append(
                    FsckIssue(
                        virtual_id=issue.virtual_id,
                        shard_index=issue.shard_index,
                        provider=name,
                        problem="missing",
                    )
                )
                continue
            except ProviderError:
                # Listed a moment ago but now unanswerable; treat the
                # provider as flaky rather than condemning the shard.
                if name not in report.unreachable:
                    report.unreachable.append(name)
                continue
            if stat.checksum != checksum:
                report.corrupt.append(
                    FsckIssue(
                        virtual_id=issue.virtual_id,
                        shard_index=issue.shard_index,
                        provider=name,
                        problem="corrupt",
                    )
                )
        loose = sorted(present - set(expected[name]))
        stale = [k for k in loose if k.startswith("S")]
        orphan = [k for k in loose if not k.startswith("S")]
        if orphan:
            report.orphans[name] = orphan
        if stale:
            report.stale_snapshots[name] = stale
    return report


def _delete_loose(
    distributor: "CloudDataDistributor", report: FsckReport
) -> int:
    """Delete every orphan / stale snapshot the audit condemned."""
    removed = 0
    for loose in (report.orphans, report.stale_snapshots):
        for name, keys in loose.items():
            provider = distributor.registry.get(name).provider
            for key in keys:
                try:
                    provider.delete(key)
                    removed += 1
                except ProviderError:
                    continue
    return removed


def run_fsck(
    distributor: "CloudDataDistributor", repair: bool = False
) -> FsckReport:
    """Audit (and optionally repair) one deployment.

    Without *repair* this is strictly read-only.  With it, missing and
    corrupt shards are rebuilt via the scrubber's RAID repair, loose
    objects are deleted, and the audit runs again so the returned report
    describes the deployment *after* repair (``clean`` is the convergence
    verdict; ``chunks_unrecoverable`` counts stripes repair could not
    save).
    """
    report = _audit(distributor)
    if not repair or (report.clean and not report.unreachable):
        return report

    from repro.health.scrubber import Scrubber

    # Loose objects go first: a scrubber relocation may re-home a shard
    # onto any provider, and a key it just wrote must not be deleted by a
    # stale pre-repair orphan list.
    orphans_deleted = _delete_loose(distributor, report)
    scrub = Scrubber(distributor, probe_fleet=False).run_once()

    after = _audit(distributor)
    after.repaired = True
    after.shards_rebuilt = scrub.shards_rebuilt
    after.chunks_unrecoverable = scrub.chunks_unrecoverable
    after.orphans_deleted = orphans_deleted
    return after
