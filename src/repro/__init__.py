"""repro — reproduction of "An Approach to Protect the Privacy of Cloud
Data from Data Mining Based Attacks" (Dev, Sen, Basak & Ali, 2012).

The library implements the paper's Cloud Data Distributor (categorize ->
fragment -> distribute), a simulated multi-provider cloud substrate with
RAID-5/6 erasure coding, the client-side DHT alternative (Chord/CAN), and
a data-mining attack suite (regression, clustering, association rules,
prediction) used to evaluate how fragmentation degrades an attacker's
mining results.

Quickstart::

    from repro import (
        CloudClient, CloudDataDistributor, PrivacyLevel,
        build_simulated_fleet, default_fleet_specs,
    )

    registry, fleet, clock = build_simulated_fleet(default_fleet_specs(7))
    distributor = CloudDataDistributor(registry, seed=7)
    bob = CloudClient.register(
        distributor, "Bob", passwords={"x9pr": PrivacyLevel.LOW}
    )
    bob.upload("x9pr", "file1", b"hello cloud", PrivacyLevel.LOW)
    assert bob.download("x9pr", "file1") == b"hello cloud"
"""

from repro.core import (
    AccessController,
    AuditLog,
    ChunkCache,
    AuthenticationError,
    AuthorizationError,
    Chunk,
    ChunkSizePolicy,
    CloudClient,
    CloudDataDistributor,
    CostLevel,
    DistributorGroup,
    FileReceipt,
    PlacementError,
    PlacementPolicy,
    PrivacyLevel,
    ReconstructionError,
    RepairReport,
    ReproError,
    admit_provider,
    check_level,
    decommission_provider,
    join,
    load_metadata,
    rebalance,
    save_metadata,
    split,
    suggest_level,
)
from repro.health import HealthMonitor, HealthState, Scrubber, ScrubReport
from repro.providers import (
    ChaosProvider,
    CloudProvider,
    DiskProvider,
    FailureInjector,
    FaultPlan,
    InMemoryProvider,
    LatencyModel,
    ParallelWindow,
    ProviderRegistry,
    ProviderSpec,
    SimulatedProvider,
    build_simulated_fleet,
    default_fleet_specs,
    regional_fleet_specs,
)
from repro.raid import RaidLevel, RSCode, encode_stripe, read_stripe

# Imported after repro.core so the core->raid import chain is fully
# initialized before analysis pulls repro.raid in again.
from repro.analysis import (
    client_exposure,
    collusion_exposure,
    file_availability,
    stripe_availability,
)

__version__ = "1.0.0"

__all__ = [
    "client_exposure",
    "collusion_exposure",
    "file_availability",
    "stripe_availability",
    "AccessController",
    "AuditLog",
    "ChunkCache",
    "AuthenticationError",
    "AuthorizationError",
    "Chunk",
    "ChunkSizePolicy",
    "CloudClient",
    "CloudDataDistributor",
    "CostLevel",
    "DistributorGroup",
    "FileReceipt",
    "PlacementError",
    "PlacementPolicy",
    "PrivacyLevel",
    "ReconstructionError",
    "RepairReport",
    "ReproError",
    "admit_provider",
    "check_level",
    "decommission_provider",
    "join",
    "load_metadata",
    "rebalance",
    "save_metadata",
    "split",
    "suggest_level",
    "ChaosProvider",
    "CloudProvider",
    "DiskProvider",
    "FailureInjector",
    "FaultPlan",
    "HealthMonitor",
    "HealthState",
    "Scrubber",
    "ScrubReport",
    "InMemoryProvider",
    "LatencyModel",
    "ParallelWindow",
    "ProviderRegistry",
    "ProviderSpec",
    "SimulatedProvider",
    "build_simulated_fleet",
    "default_fleet_specs",
    "regional_fleet_specs",
    "RaidLevel",
    "RSCode",
    "encode_stripe",
    "read_stripe",
    "__version__",
]
