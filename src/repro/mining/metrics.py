"""Attack-quality metrics: how much did fragmentation hurt the miner?

Cluster-agreement scores (Rand / adjusted Rand, migration counts),
regression divergence and rule recall are the numbers our reproduced
figures report in place of the paper's visual dendrogram comparison.
"""

from __future__ import annotations

import numpy as np


def _check_labelings(a, b) -> tuple[np.ndarray, np.ndarray]:
    a = np.asarray(a).ravel()
    b = np.asarray(b).ravel()
    if a.shape != b.shape:
        raise ValueError(
            f"labelings have different lengths: {a.shape[0]} vs {b.shape[0]}"
        )
    if a.shape[0] == 0:
        raise ValueError("labelings are empty")
    return a, b


def _contingency(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    _, ai = np.unique(a, return_inverse=True)
    _, bi = np.unique(b, return_inverse=True)
    table = np.zeros((ai.max() + 1, bi.max() + 1), dtype=np.int64)
    np.add.at(table, (ai, bi), 1)
    return table


def rand_index(a, b) -> float:
    """Fraction of observation pairs on which two clusterings agree."""
    a, b = _check_labelings(a, b)
    n = a.shape[0]
    if n == 1:
        return 1.0
    table = _contingency(a, b)
    total_pairs = n * (n - 1) // 2
    sum_cells = int(np.sum(table * (table - 1) // 2))
    sum_rows = int(np.sum(table.sum(axis=1) * (table.sum(axis=1) - 1) // 2))
    sum_cols = int(np.sum(table.sum(axis=0) * (table.sum(axis=0) - 1) // 2))
    agree_same = sum_cells
    agree_diff = total_pairs - sum_rows - sum_cols + sum_cells
    return (agree_same + agree_diff) / total_pairs


def adjusted_rand_index(a, b) -> float:
    """Rand index corrected for chance (0 ~ random, 1 = identical)."""
    a, b = _check_labelings(a, b)
    n = a.shape[0]
    if n == 1:
        return 1.0
    table = _contingency(a, b)
    sum_cells = np.sum(table * (table - 1) // 2)
    sum_rows = np.sum(table.sum(axis=1) * (table.sum(axis=1) - 1) // 2)
    sum_cols = np.sum(table.sum(axis=0) * (table.sum(axis=0) - 1) // 2)
    total_pairs = n * (n - 1) // 2
    expected = sum_rows * sum_cols / total_pairs
    max_index = (sum_rows + sum_cols) / 2
    if max_index == expected:
        return 1.0
    return float((sum_cells - expected) / (max_index - expected))


def cluster_migrations(a, b) -> int:
    """How many entities "moved from their original cluster" (Section VIII-B).

    Clusters carry no canonical names across runs, so clusters of *b* are
    greedily matched to clusters of *a* by overlap; entities outside the
    matched overlap count as migrated.
    """
    a, b = _check_labelings(a, b)
    table = _contingency(a, b)
    matched = 0
    used_rows: set[int] = set()
    used_cols: set[int] = set()
    # Greedy maximum-overlap matching (adequate for small k).
    order = np.dstack(np.unravel_index(np.argsort(-table, axis=None), table.shape))[0]
    for row, col in order:
        if row in used_rows or col in used_cols or table[row, col] == 0:
            continue
        matched += int(table[row, col])
        used_rows.add(int(row))
        used_cols.add(int(col))
    return int(a.shape[0] - matched)


def regression_rmse(y_true, y_pred) -> float:
    y_true = np.asarray(y_true, dtype=np.float64).ravel()
    y_pred = np.asarray(y_pred, dtype=np.float64).ravel()
    if y_true.shape != y_pred.shape:
        raise ValueError("y_true and y_pred have different lengths")
    return float(np.sqrt(np.mean((y_true - y_pred) ** 2)))


def relative_error(estimate: float, truth: float) -> float:
    """|estimate - truth| / |truth| (0/0 defined as 0)."""
    if truth == 0:
        return 0.0 if estimate == 0 else float("inf")
    return abs(estimate - truth) / abs(truth)
