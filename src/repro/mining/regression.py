"""Multivariate linear regression (the paper's Section VII-A attack).

The paper's insider Hera runs "multivariate analysis (linear multiple
regression using MATLAB)" on Hercules' bidding history and recovers
``bid ~ 1.4*Materials + 1.5*Production + 3.1*Maintenance + 5436``.  This is
ordinary least squares; we solve the normal equations via
``numpy.linalg.lstsq`` (numerically identical to MATLAB's ``regress``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class RegressionModel:
    """A fitted OLS model ``y = X @ coefficients + intercept``."""

    coefficients: np.ndarray
    intercept: float
    r_squared: float
    n_samples: int

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predicted responses for feature rows *x*."""
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        if x.shape[1] != self.coefficients.shape[0]:
            raise ValueError(
                f"expected {self.coefficients.shape[0]} features, got {x.shape[1]}"
            )
        return x @ self.coefficients + self.intercept

    def equation(self, names: list[str] | None = None, target: str = "y") -> str:
        """Human-readable equation string (paper-style)."""
        names = names or [f"x{i}" for i in range(len(self.coefficients))]
        terms = " + ".join(
            f"{c:.1f}*{name}" for c, name in zip(self.coefficients, names)
        )
        return f"{target} = {terms} + {self.intercept:.0f}"


def fit_linear(x: np.ndarray, y: np.ndarray) -> RegressionModel:
    """Fit ``y ~ x`` by ordinary least squares with an intercept.

    Requires at least ``n_features + 1`` samples (the normal equations are
    otherwise underdetermined -- exactly the data-starvation fragmentation
    inflicts on the attacker).
    """
    x = np.atleast_2d(np.asarray(x, dtype=np.float64))
    y = np.asarray(y, dtype=np.float64).ravel()
    if x.shape[0] != y.shape[0]:
        raise ValueError(
            f"x has {x.shape[0]} rows but y has {y.shape[0]} values"
        )
    n, p = x.shape
    if n < p + 1:
        raise ValueError(
            f"need at least {p + 1} samples to fit {p} coefficients + "
            f"intercept, got {n}"
        )
    design = np.concatenate([x, np.ones((n, 1))], axis=1)
    beta, _, _, _ = np.linalg.lstsq(design, y, rcond=None)
    fitted = design @ beta
    ss_res = float(np.sum((y - fitted) ** 2))
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    r_squared = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return RegressionModel(
        coefficients=beta[:-1].copy(),
        intercept=float(beta[-1]),
        r_squared=r_squared,
        n_samples=n,
    )


def coefficient_distance(a: RegressionModel, b: RegressionModel) -> float:
    """Relative L2 distance between two models' (coefficients, intercept).

    The paper's feasibility argument is that per-fragment models diverge
    from the whole-data model; this is the scalar we report for that.
    """
    va = np.append(a.coefficients, a.intercept)
    vb = np.append(b.coefficients, b.intercept)
    if va.shape != vb.shape:
        raise ValueError("models have different dimensionality")
    denom = np.linalg.norm(va)
    if denom == 0:
        return float(np.linalg.norm(vb))
    return float(np.linalg.norm(va - vb) / denom)


def prediction_rmse(model: RegressionModel, x: np.ndarray, y: np.ndarray) -> float:
    """Root-mean-square prediction error of *model* on held-out (x, y)."""
    y = np.asarray(y, dtype=np.float64).ravel()
    residuals = model.predict(x) - y
    return float(np.sqrt(np.mean(residuals**2)))
