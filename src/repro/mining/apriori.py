"""Apriori association-rule mining ("association rule mining can be used to
discover association relationships among large number of business
transaction records", Section II-B).

Classic level-wise Apriori: frequent itemsets by minimum support, then
rules by minimum confidence, with lift reported.  Used to measure how rule
recall collapses when an attacker only sees one provider's fragment of a
transaction log.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations


@dataclass(frozen=True)
class Rule:
    """An association rule ``antecedent -> consequent``."""

    antecedent: frozenset
    consequent: frozenset
    support: float
    confidence: float
    lift: float

    def __str__(self) -> str:  # pragma: no cover - display helper
        lhs = ", ".join(sorted(map(str, self.antecedent)))
        rhs = ", ".join(sorted(map(str, self.consequent)))
        return (
            f"{{{lhs}}} -> {{{rhs}}} "
            f"(sup={self.support:.3f}, conf={self.confidence:.3f}, lift={self.lift:.2f})"
        )


def frequent_itemsets(
    transactions: list[set], min_support: float
) -> dict[frozenset, float]:
    """All itemsets with support >= *min_support* (level-wise Apriori)."""
    if not 0 < min_support <= 1:
        raise ValueError(f"min_support must be in (0, 1], got {min_support}")
    n = len(transactions)
    if n == 0:
        return {}
    transactions = [frozenset(t) for t in transactions]

    # L1: frequent single items.
    counts: dict[frozenset, int] = {}
    for t in transactions:
        for item in t:
            key = frozenset([item])
            counts[key] = counts.get(key, 0) + 1
    current = {
        itemset: c / n for itemset, c in counts.items() if c / n >= min_support
    }
    result = dict(current)

    k = 2
    while current:
        # Candidate generation: join frequent (k-1)-itemsets sharing k-2 items.
        prev = sorted(current, key=lambda s: sorted(map(str, s)))
        candidates = set()
        for i, a in enumerate(prev):
            for b in prev[i + 1 :]:
                union = a | b
                if len(union) == k and all(
                    frozenset(sub) in current
                    for sub in combinations(union, k - 1)
                ):
                    candidates.add(union)
        if not candidates:
            break
        counts = {c: 0 for c in candidates}
        for t in transactions:
            for candidate in candidates:
                if candidate <= t:
                    counts[candidate] += 1
        current = {
            itemset: c / n for itemset, c in counts.items() if c / n >= min_support
        }
        result.update(current)
        k += 1
    return result


def mine_rules(
    transactions: list[set],
    min_support: float = 0.1,
    min_confidence: float = 0.6,
) -> list[Rule]:
    """Association rules from frequent itemsets, sorted by confidence desc."""
    if not 0 < min_confidence <= 1:
        raise ValueError(
            f"min_confidence must be in (0, 1], got {min_confidence}"
        )
    itemsets = frequent_itemsets(transactions, min_support)
    rules: list[Rule] = []
    for itemset, support in itemsets.items():
        if len(itemset) < 2:
            continue
        for r in range(1, len(itemset)):
            for antecedent in combinations(itemset, r):
                antecedent = frozenset(antecedent)
                consequent = itemset - antecedent
                ant_support = itemsets[antecedent]
                confidence = support / ant_support
                if confidence >= min_confidence:
                    cons_support = itemsets[frozenset(consequent)]
                    rules.append(
                        Rule(
                            antecedent=antecedent,
                            consequent=consequent,
                            support=support,
                            confidence=confidence,
                            lift=confidence / cons_support,
                        )
                    )
    rules.sort(key=lambda r: (-r.confidence, -r.support, sorted(map(str, r.antecedent))))
    return rules


def rule_recall(reference: list[Rule], recovered: list[Rule]) -> float:
    """Fraction of *reference* rules an attacker's *recovered* set found.

    Rules match on (antecedent, consequent) regardless of statistics --
    the attacker knowing the relationship at all is the leak.
    """
    if not reference:
        return 1.0
    ref = {(r.antecedent, r.consequent) for r in reference}
    got = {(r.antecedent, r.consequent) for r in recovered}
    return len(ref & got) / len(ref)


def rule_precision(reference: list[Rule], recovered: list[Rule]) -> float:
    """Fraction of recovered rules that are real (in the reference set)."""
    if not recovered:
        return 1.0
    ref = {(r.antecedent, r.consequent) for r in reference}
    got = {(r.antecedent, r.consequent) for r in recovered}
    return len(ref & got) / len(got)
