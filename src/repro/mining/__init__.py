"""The attacker's toolkit: data-mining algorithms and adversary models.

Implements the mining attacks the paper analyses (multivariate linear
regression, hierarchical binary clustering, k-means, Apriori association
rules, naive-Bayes prediction), the adversary models (insider, colluding,
global), the cross-provider correlation attack, and the metrics that
quantify how badly fragmentation degrades each attack.
"""

from repro.mining.adversary import Adversary, AdversaryView
from repro.mining.decision_tree import DecisionTree, fit_tree
from repro.mining.apriori import (
    Rule,
    frequent_itemsets,
    mine_rules,
    rule_precision,
    rule_recall,
)
from repro.mining.hierarchical import (
    ascii_dendrogram,
    cophenetic_correlation,
    cophenetic_distances,
    cut_tree,
    leaf_order,
    linkage,
    pairwise_distances,
)
from repro.mining.kmeans import KMeansResult, kmeans
from repro.mining.linkage_attack import (
    correlating_salvage,
    correlation_gain,
    group_shards,
    reassemble_chunks,
)
from repro.mining.metrics import (
    adjusted_rand_index,
    cluster_migrations,
    rand_index,
    regression_rmse,
    relative_error,
)
from repro.mining.naive_bayes import GaussianNB, fit_gaussian_nb
from repro.mining.regression import (
    RegressionModel,
    coefficient_distance,
    fit_linear,
    prediction_rmse,
)

__all__ = [
    "Adversary",
    "AdversaryView",
    "DecisionTree",
    "fit_tree",
    "Rule",
    "frequent_itemsets",
    "mine_rules",
    "rule_precision",
    "rule_recall",
    "ascii_dendrogram",
    "cophenetic_correlation",
    "cophenetic_distances",
    "cut_tree",
    "leaf_order",
    "linkage",
    "pairwise_distances",
    "KMeansResult",
    "kmeans",
    "correlating_salvage",
    "correlation_gain",
    "group_shards",
    "reassemble_chunks",
    "adjusted_rand_index",
    "cluster_migrations",
    "rand_index",
    "regression_rmse",
    "relative_error",
    "GaussianNB",
    "fit_gaussian_nb",
    "RegressionModel",
    "coefficient_distance",
    "fit_linear",
    "prediction_rmse",
]
