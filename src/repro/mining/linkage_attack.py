"""Cross-provider correlation attacks (Sections I and III-B).

"Even if an attacker manages to access required chunks, mining data from
distributed sources remains a challenging job.  The main challenge in this
case is to correlate the data seen at the various probes."

Colluding providers *can* try: shard keys expose ``<virtual id>.<shard
index>``, so an attacker pooling several providers can group shards by
virtual id, order them by index and concatenate -- recovering contiguous
chunk bytes whenever every data shard of the stripe is in the pool.
(Parity shards concatenate into garbage the record salvager drops, and
misleading bytes corrupt rows exactly as Section VII-D intends.)

This module implements that re-association step so the collusion ablation
(A5) can compare naive per-provider salvage against the stronger
correlating attacker.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.workloads.serialization import salvage_records


def group_shards(
    blobs: dict[str, dict[str, bytes]]
) -> dict[int, dict[int, bytes]]:
    """Group pooled blobs by virtual id: vid -> shard index -> bytes.

    Keys that do not look like ``<vid>.<shard>`` (e.g. ``S<vid>``
    snapshots) are kept under shard index 0 of a pseudo id when numeric,
    otherwise ignored.
    """
    grouped: dict[int, dict[int, bytes]] = {}
    for per_provider in blobs.values():
        for key, data in per_provider.items():
            stem, sep, shard = key.partition(".")
            if sep and stem.isdigit() and shard.isdigit():
                grouped.setdefault(int(stem), {})[int(shard)] = data
            elif stem.isdigit() and not sep:
                grouped.setdefault(int(stem), {})[0] = data
    return grouped


def reassemble_chunks(blobs: dict[str, dict[str, bytes]]) -> dict[int, bytes]:
    """Concatenate each virtual id's shards in index order.

    The attacker does not know stripe geometry (k vs m), so parity shards
    are appended too; they decode as garbage rows.  Missing shard indices
    leave a gap -- the attacker concatenates what it has (rows spanning the
    gap are lost in parsing).
    """
    return {
        vid: b"".join(shards[i] for i in sorted(shards))
        for vid, shards in group_shards(blobs).items()
    }


def correlating_salvage(
    blobs: dict[str, dict[str, bytes]],
    parsers: Sequence[Callable[[str], object]],
) -> list[tuple]:
    """Salvage records from re-associated chunks instead of raw shards.

    Strictly stronger than per-shard salvage when the pool covers whole
    stripes: rows that straddled shard boundaries become parseable again.
    """
    rows: list[tuple] = []
    chunks = reassemble_chunks(blobs)
    for vid in sorted(chunks):
        rows.extend(salvage_records(chunks[vid], parsers))
    return rows


def correlation_gain(
    blobs: dict[str, dict[str, bytes]],
    parsers: Sequence[Callable[[str], object]],
    reference_rows: Sequence[tuple],
) -> tuple[float, float]:
    """(naive fraction, correlated fraction) of reference rows recovered."""
    reference = set(reference_rows)
    if not reference:
        return 1.0, 1.0
    naive: set = set()
    for per_provider in blobs.values():
        for data in per_provider.values():
            naive.update(
                row for row in salvage_records(data, parsers) if row in reference
            )
    correlated = {
        row for row in correlating_salvage(blobs, parsers) if row in reference
    }
    return len(naive) / len(reference), len(correlated) / len(reference)
