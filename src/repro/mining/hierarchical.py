"""Agglomerative hierarchical clustering (Figs. 4-6 of the paper).

The paper clusters 30 GPS users with MATLAB's "hierarchical binary cluster
tree" and shows that fragmentation moves entities between clusters.  This
is a from-scratch implementation of Lance-Williams agglomerative
clustering (single / complete / average / ward linkage) producing a
SciPy-compatible ``(n-1, 4)`` linkage matrix, plus tree cutting, cophenetic
distances and an ASCII dendrogram for bench output.
"""

from __future__ import annotations

import numpy as np


def pairwise_distances(points: np.ndarray) -> np.ndarray:
    """Dense Euclidean distance matrix, vectorized via the Gram trick."""
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError(f"points must be 2-D, got shape {points.shape}")
    sq = np.sum(points**2, axis=1)
    gram = points @ points.T
    d2 = sq[:, None] + sq[None, :] - 2.0 * gram
    np.maximum(d2, 0.0, out=d2)  # clamp negative rounding noise
    out = np.sqrt(d2)
    np.fill_diagonal(out, 0.0)  # exact zeros despite rounding
    return out


_LINKAGES = ("single", "complete", "average", "ward")


def linkage(points: np.ndarray, method: str = "average") -> np.ndarray:
    """Agglomerative clustering; returns a SciPy-style linkage matrix.

    Row ``i`` is ``[left, right, distance, size]`` where ``left``/``right``
    are cluster ids (originals ``0..n-1``, merged clusters ``n+i``).
    Implemented with Lance-Williams updates on a working distance matrix --
    O(n^3) worst case but fully vectorized per merge, comfortably handling
    the paper's n=30 and our benches' n<=1000.
    """
    if method not in _LINKAGES:
        raise ValueError(f"method must be one of {_LINKAGES}, got {method!r}")
    points = np.asarray(points, dtype=np.float64)
    n = points.shape[0]
    if n < 2:
        raise ValueError(f"need at least 2 observations, got {n}")
    d = pairwise_distances(points)
    if method == "ward":
        # Ward works on squared Euclidean distances internally.
        d = d**2
    np.fill_diagonal(d, np.inf)

    active = np.ones(n, dtype=bool)
    sizes = np.ones(n, dtype=np.int64)
    cluster_ids = np.arange(n)
    merges = np.empty((n - 1, 4), dtype=np.float64)

    for step in range(n - 1):
        # Find the closest active pair.
        masked = np.where(active[:, None] & active[None, :], d, np.inf)
        flat = int(np.argmin(masked))
        i, j = divmod(flat, n)
        if i > j:
            i, j = j, i
        dist = d[i, j]
        si, sj = sizes[i], sizes[j]

        # Lance-Williams update of distances from the merged cluster (kept
        # in slot i) to every other active cluster k.
        others = active.copy()
        others[i] = others[j] = False
        di, dj = d[i, others], d[j, others]
        if method == "single":
            new = np.minimum(di, dj)
        elif method == "complete":
            new = np.maximum(di, dj)
        elif method == "average":
            new = (si * di + sj * dj) / (si + sj)
        else:  # ward on squared distances
            sk = sizes[others]
            total = si + sj + sk
            new = ((si + sk) * di + (sj + sk) * dj - sk * dist) / total

        d[i, others] = new
        d[others, i] = new
        active[j] = False
        sizes[i] = si + sj

        reported = np.sqrt(dist) if method == "ward" else dist
        merges[step] = (
            min(cluster_ids[i], cluster_ids[j]),
            max(cluster_ids[i], cluster_ids[j]),
            reported,
            si + sj,
        )
        cluster_ids[i] = n + step
    return merges


def cut_tree(merges: np.ndarray, k: int) -> np.ndarray:
    """Labels assigning each original observation to one of *k* clusters.

    Cuts the dendrogram after ``n - k`` merges; labels are renumbered to
    ``0..k-1`` in order of first appearance.
    """
    n = merges.shape[0] + 1
    if not (1 <= k <= n):
        raise ValueError(f"k must be in 1..{n}, got {k}")
    parent = np.arange(n + merges.shape[0])
    for step in range(n - k):
        left, right = int(merges[step, 0]), int(merges[step, 1])
        parent[left] = n + step
        parent[right] = n + step

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    roots = [find(i) for i in range(n)]
    relabel: dict[int, int] = {}
    labels = np.empty(n, dtype=np.int64)
    for i, root in enumerate(roots):
        labels[i] = relabel.setdefault(root, len(relabel))
    return labels


def cophenetic_distances(merges: np.ndarray) -> np.ndarray:
    """Condensed-form cophenetic distance between every observation pair.

    The cophenetic distance of (a, b) is the merge height at which they
    first share a cluster; comparing two trees' cophenetic vectors is how
    we quantify Fig. 4 vs Figs. 5-6 divergence.
    """
    n = merges.shape[0] + 1
    members: dict[int, list[int]] = {i: [i] for i in range(n)}
    out = np.zeros((n, n), dtype=np.float64)
    for step in range(n - 1):
        left, right = int(merges[step, 0]), int(merges[step, 1])
        height = merges[step, 2]
        la, lb = members.pop(left), members.pop(right)
        ia = np.asarray(la, dtype=np.int64)
        ib = np.asarray(lb, dtype=np.int64)
        out[np.ix_(ia, ib)] = height
        out[np.ix_(ib, ia)] = height
        members[n + step] = la + lb
    return out[np.triu_indices(n, k=1)]


def cophenetic_correlation(merges_a: np.ndarray, merges_b: np.ndarray) -> float:
    """Pearson correlation between two trees' cophenetic vectors (1 = same
    tree shape over the same leaves)."""
    ca = cophenetic_distances(merges_a)
    cb = cophenetic_distances(merges_b)
    if ca.shape != cb.shape:
        raise ValueError("trees are over different numbers of leaves")
    if np.std(ca) == 0 or np.std(cb) == 0:
        return 1.0 if np.allclose(ca, cb) else 0.0
    return float(np.corrcoef(ca, cb)[0, 1])


def leaf_order(merges: np.ndarray) -> list[int]:
    """Left-to-right dendrogram leaf order (the x-axis of Figs. 4-6)."""
    n = merges.shape[0] + 1
    children: dict[int, tuple[int, int]] = {
        n + step: (int(merges[step, 0]), int(merges[step, 1]))
        for step in range(n - 1)
    }
    order: list[int] = []
    stack = [n + (n - 2)]
    while stack:
        node = stack.pop()
        if node < n:
            order.append(node)
        else:
            left, right = children[node]
            stack.append(right)
            stack.append(left)
    return order


def ascii_dendrogram(
    merges: np.ndarray, labels: list[str] | None = None, width: int = 60
) -> str:
    """Sideways text dendrogram (one leaf per line), for bench output."""
    n = merges.shape[0] + 1
    labels = labels or [str(i) for i in range(n)]
    if len(labels) != n:
        raise ValueError(f"need {n} labels, got {len(labels)}")
    max_h = float(merges[-1, 2]) or 1.0
    # Height at which each original leaf first merges.
    first_merge = np.zeros(n)
    members: dict[int, list[int]] = {i: [i] for i in range(n)}
    joined = np.zeros(n, dtype=bool)
    for step in range(n - 1):
        left, right = int(merges[step, 0]), int(merges[step, 1])
        group = members.pop(left) + members.pop(right)
        for leaf in group:
            if not joined[leaf]:
                first_merge[leaf] = merges[step, 2]
                joined[leaf] = True
        members[n + step] = group
    lines = []
    name_width = max(len(s) for s in labels)
    for leaf in leaf_order(merges):
        bar = int(round((first_merge[leaf] / max_h) * width))
        lines.append(f"{labels[leaf]:>{name_width}} |" + "-" * bar + "+")
    return "\n".join(lines)
