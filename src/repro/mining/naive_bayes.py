"""Gaussian naive Bayes ("Prediction algorithms may reveal misleading
results as they lack numbers of observations", Section VII-A).

The prediction attack in the ablation benches: an insider trains a
classifier on the records visible at their provider and we measure how
accuracy decays with fragment size.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

_VAR_FLOOR = 1e-9


@dataclass(frozen=True)
class GaussianNB:
    """A fitted Gaussian naive Bayes classifier."""

    classes: np.ndarray
    priors: np.ndarray  # log priors, shape (c,)
    means: np.ndarray  # shape (c, p)
    variances: np.ndarray  # shape (c, p)

    def log_posterior(self, x: np.ndarray) -> np.ndarray:
        """Unnormalized log posterior per class, shape (n, c)."""
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        if x.shape[1] != self.means.shape[1]:
            raise ValueError(
                f"expected {self.means.shape[1]} features, got {x.shape[1]}"
            )
        # log N(x; mu, var) summed over features, vectorized over classes.
        diff = x[:, None, :] - self.means[None, :, :]
        log_like = -0.5 * np.sum(
            diff**2 / self.variances[None, :, :]
            + np.log(2 * np.pi * self.variances)[None, :, :],
            axis=2,
        )
        return log_like + self.priors[None, :]

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Most probable class label per row of *x*."""
        return self.classes[np.argmax(self.log_posterior(x), axis=1)]

    def accuracy(self, x: np.ndarray, y: np.ndarray) -> float:
        y = np.asarray(y).ravel()
        return float(np.mean(self.predict(x) == y))


def fit_gaussian_nb(x: np.ndarray, y: np.ndarray) -> GaussianNB:
    """Fit per-class feature means/variances and class priors."""
    x = np.atleast_2d(np.asarray(x, dtype=np.float64))
    y = np.asarray(y).ravel()
    if x.shape[0] != y.shape[0]:
        raise ValueError(f"x has {x.shape[0]} rows but y has {y.shape[0]}")
    if x.shape[0] == 0:
        raise ValueError("cannot fit on an empty dataset")
    classes = np.unique(y)
    c, p = len(classes), x.shape[1]
    priors = np.empty(c)
    means = np.empty((c, p))
    variances = np.empty((c, p))
    for i, label in enumerate(classes):
        rows = x[y == label]
        priors[i] = np.log(rows.shape[0] / x.shape[0])
        means[i] = rows.mean(axis=0)
        variances[i] = np.maximum(rows.var(axis=0), _VAR_FLOOR)
    return GaussianNB(classes=classes, priors=priors, means=means, variances=variances)
