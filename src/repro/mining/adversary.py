"""Adversary models (Section III-A).

"Mining based attacks on cloud involves attackers of two categories:
malicious employees inside provider and outside attackers."

* :meth:`Adversary.insider` -- one malicious employee: sees every blob at
  one provider.
* :meth:`Adversary.colluding` -- an outsider who compromised (or several
  insiders who pooled) a subset of providers.
* :meth:`Adversary.global_view` -- the single-provider baseline: what the
  paper's *current* architecture leaks, where one provider holds all data.

The adversary's pipeline is honest: it reads raw blob bytes from the
providers it controls (including parity shards and misleading bytes it
cannot distinguish) and salvages parseable records from them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.errors import ProviderError
from repro.providers.registry import ProviderRegistry
from repro.workloads.serialization import salvage_records


@dataclass(frozen=True)
class AdversaryView:
    """Everything an adversary extracted: raw blobs and salvaged rows."""

    compromised: tuple[str, ...]
    blobs: dict[str, dict[str, bytes]]  # provider -> key -> bytes
    rows: list[tuple]

    @property
    def blob_count(self) -> int:
        return sum(len(b) for b in self.blobs.values())

    @property
    def byte_count(self) -> int:
        return sum(len(v) for b in self.blobs.values() for v in b.values())


class Adversary:
    """An attacker controlling a subset of the provider fleet."""

    def __init__(self, registry: ProviderRegistry, compromised: Sequence[str]) -> None:
        unknown = [name for name in compromised if name not in registry]
        if unknown:
            raise KeyError(f"unknown providers: {unknown}")
        if len(set(compromised)) != len(compromised):
            raise ValueError("compromised provider list contains duplicates")
        self.registry = registry
        self.compromised = tuple(compromised)

    # -- constructors ------------------------------------------------------------

    @classmethod
    def insider(cls, registry: ProviderRegistry, provider: str) -> "Adversary":
        """A malicious employee at a single provider."""
        return cls(registry, [provider])

    @classmethod
    def colluding(
        cls, registry: ProviderRegistry, providers: Sequence[str]
    ) -> "Adversary":
        """Multiple compromised providers pooling what they store."""
        return cls(registry, list(providers))

    @classmethod
    def global_view(cls, registry: ProviderRegistry) -> "Adversary":
        """Compromise of the whole fleet (upper bound / single-provider
        architecture baseline)."""
        return cls(registry, registry.names())

    # -- collection ---------------------------------------------------------------

    def dump_blobs(self) -> dict[str, dict[str, bytes]]:
        """Raw key->bytes snapshot of every compromised provider.

        Providers that are down contribute nothing (the attacker reads
        what is readable); corrupt blobs are taken as-is when the backend
        exposes raw bytes, else skipped.
        """
        out: dict[str, dict[str, bytes]] = {}
        for name in self.compromised:
            provider = self.registry.get(name).provider
            blobs: dict[str, bytes] = {}
            try:
                keys = provider.keys()
            except ProviderError:
                out[name] = {}
                continue
            for key in keys:
                try:
                    blobs[key] = provider.get(key)
                except ProviderError:
                    continue
            out[name] = blobs
        return out

    def observe(self, parsers: Sequence[Callable[[str], object]]) -> AdversaryView:
        """Collect blobs and salvage every parseable record from them."""
        blobs = self.dump_blobs()
        rows: list[tuple] = []
        for per_provider in blobs.values():
            for key in sorted(per_provider):
                rows.extend(salvage_records(per_provider[key], parsers))
        return AdversaryView(
            compromised=self.compromised, blobs=blobs, rows=rows
        )

    def recovered_fraction(
        self,
        parsers: Sequence[Callable[[str], object]],
        reference_rows: Sequence[tuple],
    ) -> float:
        """Fraction of the true dataset's rows this adversary recovers.

        Duplicate recoveries (RAID mirrors/replicas) count once.
        """
        if not reference_rows:
            return 1.0
        view = self.observe(parsers)
        reference = set(reference_rows)
        recovered = {row for row in view.rows if row in reference}
        return len(recovered) / len(reference)
