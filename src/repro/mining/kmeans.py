"""k-means clustering ("clustering algorithms can be used to categorize
people or entities and are suitable for finding behavioral patterns",
Section II-B).

Lloyd's algorithm with k-means++ seeding; deterministic under a seed, used
by the ablation benches as a second clustering attack alongside the
hierarchical one.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.rng import SeedLike, derive_rng


@dataclass(frozen=True)
class KMeansResult:
    centers: np.ndarray
    labels: np.ndarray
    inertia: float
    iterations: int

    @property
    def k(self) -> int:
        return self.centers.shape[0]


def _plus_plus_init(points: np.ndarray, k: int, rng) -> np.ndarray:
    """k-means++ seeding: spread initial centers by D^2 sampling."""
    n = points.shape[0]
    centers = np.empty((k, points.shape[1]), dtype=np.float64)
    centers[0] = points[int(rng.integers(0, n))]
    d2 = np.sum((points - centers[0]) ** 2, axis=1)
    for i in range(1, k):
        total = d2.sum()
        if total == 0:
            centers[i:] = points[int(rng.integers(0, n))]
            break
        probs = d2 / total
        centers[i] = points[int(rng.choice(n, p=probs))]
        d2 = np.minimum(d2, np.sum((points - centers[i]) ** 2, axis=1))
    return centers


def kmeans(
    points: np.ndarray,
    k: int,
    seed: SeedLike = None,
    max_iter: int = 300,
    tol: float = 1e-8,
) -> KMeansResult:
    """Cluster *points* into *k* groups with Lloyd's algorithm."""
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError(f"points must be 2-D, got shape {points.shape}")
    n = points.shape[0]
    if not (1 <= k <= n):
        raise ValueError(f"k must be in 1..{n}, got {k}")
    rng = derive_rng(seed)
    centers = _plus_plus_init(points, k, rng)
    labels = np.zeros(n, dtype=np.int64)
    for iteration in range(1, max_iter + 1):
        # Assignment step (vectorized squared distances).
        d2 = (
            np.sum(points**2, axis=1)[:, None]
            - 2.0 * points @ centers.T
            + np.sum(centers**2, axis=1)[None, :]
        )
        labels = np.argmin(d2, axis=1)
        new_centers = centers.copy()
        for cluster in range(k):
            mask = labels == cluster
            if mask.any():
                new_centers[cluster] = points[mask].mean(axis=0)
            else:
                # Re-seed an empty cluster at the farthest point.
                farthest = int(np.argmax(np.min(d2, axis=1)))
                new_centers[cluster] = points[farthest]
        shift = float(np.max(np.abs(new_centers - centers)))
        centers = new_centers
        if shift <= tol:
            break
    d2 = np.sum((points - centers[labels]) ** 2, axis=1)
    return KMeansResult(
        centers=centers,
        labels=labels,
        inertia=float(d2.sum()),
        iterations=iteration,
    )
