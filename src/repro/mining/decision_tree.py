"""CART decision-tree classification.

"As more research works are being done on mining, improved algorithms and
tools are being developed" (Section II-B) -- the attack suite therefore
includes a stronger non-linear learner alongside naive Bayes: a binary
CART tree with Gini splits, depth/min-samples regularization, and an
interpretable dump (the attacker reads the rules straight off the tree).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class _Node:
    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None
    prediction: object = None
    samples: int = 0
    impurity: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _gini(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    p = counts / total
    return float(1.0 - np.sum(p * p))


def _best_split(x: np.ndarray, y_codes: np.ndarray, n_classes: int):
    """The (feature, threshold, gain) of the best Gini split, else None.

    For each feature: sort once, sweep class counts left->right, evaluate
    every midpoint between distinct values.  Vectorized per feature.
    """
    n, p = x.shape
    total_counts = np.bincount(y_codes, minlength=n_classes)
    parent = _gini(total_counts)
    best = None
    for feature in range(p):
        order = np.argsort(x[:, feature], kind="stable")
        xs = x[order, feature]
        ys = y_codes[order]
        # One-hot cumulative class counts along the sweep.
        onehot = np.zeros((n, n_classes))
        onehot[np.arange(n), ys] = 1.0
        left_counts = np.cumsum(onehot, axis=0)
        # Valid cut after position i iff xs[i] != xs[i+1].
        cut = np.nonzero(xs[:-1] != xs[1:])[0]
        if cut.size == 0:
            continue
        nl = cut + 1.0
        nr = n - nl
        lc = left_counts[cut]
        rc = total_counts[None, :] - lc
        gini_l = 1.0 - np.sum((lc / nl[:, None]) ** 2, axis=1)
        gini_r = 1.0 - np.sum((rc / nr[:, None]) ** 2, axis=1)
        weighted = (nl * gini_l + nr * gini_r) / n
        gains = parent - weighted
        i = int(np.argmax(gains))
        if gains[i] > 1e-12:
            threshold = (xs[cut[i]] + xs[cut[i] + 1]) / 2.0
            if best is None or gains[i] > best[2]:
                best = (feature, float(threshold), float(gains[i]))
    return best


class DecisionTree:
    """A fitted CART classifier."""

    def __init__(self, root: _Node, classes: np.ndarray) -> None:
        self._root = root
        self.classes = classes

    def predict(self, x: np.ndarray) -> np.ndarray:
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        out = np.empty(x.shape[0], dtype=self.classes.dtype)
        for i, row in enumerate(x):
            node = self._root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.prediction
        return out

    def accuracy(self, x: np.ndarray, y: np.ndarray) -> float:
        y = np.asarray(y).ravel()
        return float(np.mean(self.predict(x) == y))

    @property
    def depth(self) -> int:
        def walk(node: _Node) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self._root)

    @property
    def n_leaves(self) -> int:
        def walk(node: _Node) -> int:
            if node.is_leaf:
                return 1
            return walk(node.left) + walk(node.right)

        return walk(self._root)

    def dump(self, feature_names: list[str] | None = None) -> str:
        """Human-readable rules -- what the insider actually reads off."""
        names = feature_names or [f"x{i}" for i in range(1 << 10)]
        lines: list[str] = []

        def walk(node: _Node, indent: str) -> None:
            if node.is_leaf:
                lines.append(
                    f"{indent}-> {node.prediction} ({node.samples} samples)"
                )
                return
            lines.append(f"{indent}if {names[node.feature]} <= {node.threshold:.4g}:")
            walk(node.left, indent + "  ")
            lines.append(f"{indent}else:")
            walk(node.right, indent + "  ")

        walk(self._root, "")
        return "\n".join(lines)


def fit_tree(
    x: np.ndarray,
    y: np.ndarray,
    max_depth: int = 8,
    min_samples_split: int = 4,
) -> DecisionTree:
    """Grow a CART tree on (x, y)."""
    x = np.atleast_2d(np.asarray(x, dtype=np.float64))
    y = np.asarray(y).ravel()
    if x.shape[0] != y.shape[0]:
        raise ValueError(f"x has {x.shape[0]} rows but y has {y.shape[0]}")
    if x.shape[0] == 0:
        raise ValueError("cannot fit on an empty dataset")
    if max_depth < 0:
        raise ValueError(f"max_depth must be >= 0, got {max_depth}")
    classes, y_codes = np.unique(y, return_inverse=True)
    n_classes = len(classes)

    def grow(rows: np.ndarray, depth: int) -> _Node:
        counts = np.bincount(y_codes[rows], minlength=n_classes)
        node = _Node(
            prediction=classes[int(np.argmax(counts))],
            samples=int(rows.size),
            impurity=_gini(counts),
        )
        if (
            depth >= max_depth
            or rows.size < min_samples_split
            or node.impurity == 0.0
        ):
            return node
        split = _best_split(x[rows], y_codes[rows], n_classes)
        if split is None:
            return node
        feature, threshold, _gain = split
        mask = x[rows, feature] <= threshold
        left_rows, right_rows = rows[mask], rows[~mask]
        if left_rows.size == 0 or right_rows.size == 0:
            return node
        node.feature = feature
        node.threshold = threshold
        node.left = grow(left_rows, depth + 1)
        node.right = grow(right_rows, depth + 1)
        return node

    root = grow(np.arange(x.shape[0]), 0)
    return DecisionTree(root=root, classes=classes)
