"""Stable hashing utilities for the DHT overlays.

Python's builtin ``hash`` is salted per process; DHT placement must be
stable across runs, so all overlay hashing goes through SHA-1 (the hash
Chord's original paper uses for its consistent hashing layer).
"""

from __future__ import annotations

import hashlib


def stable_hash(value: str, bits: int = 160) -> int:
    """Deterministic integer hash of *value* in ``[0, 2**bits)``."""
    if bits < 1 or bits > 160:
        raise ValueError(f"bits must be in 1..160, got {bits}")
    digest = hashlib.sha1(value.encode("utf-8")).digest()
    return int.from_bytes(digest, "big") >> (160 - bits)


def hash_point(value: str, dims: int) -> tuple[float, ...]:
    """Deterministic point in the *dims*-dimensional unit cube.

    Used by CAN to map keys (and joining nodes) into its coordinate space;
    each coordinate comes from an independent 32-bit slice of repeated
    SHA-1 output.
    """
    if dims < 1:
        raise ValueError(f"dims must be >= 1, got {dims}")
    coords: list[float] = []
    counter = 0
    material = b""
    while len(material) < dims * 4:
        material += hashlib.sha1(f"{value}#{counter}".encode("utf-8")).digest()
        counter += 1
    for i in range(dims):
        word = int.from_bytes(material[i * 4 : (i + 1) * 4], "big")
        coords.append(word / 2**32)
    return tuple(coords)


def in_interval(x: int, lo: int, hi: int, modulus: int, inclusive_hi: bool = True) -> bool:
    """True iff *x* lies in the circular interval (lo, hi] (mod *modulus*).

    The workhorse predicate of Chord routing.  With ``inclusive_hi=False``
    tests the open interval (lo, hi).
    """
    x, lo, hi = x % modulus, lo % modulus, hi % modulus
    if lo == hi:
        # The interval covers the whole ring (degenerate single-node case).
        return inclusive_hi or x != lo
    if lo < hi:
        return (lo < x <= hi) if inclusive_hi else (lo < x < hi)
    return (x > lo or x <= hi) if inclusive_hi else (x > lo or x < hi)
