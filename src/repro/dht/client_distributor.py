"""Client-side distributor over a DHT overlay (Section IV-C).

"The next architectural issue is the reliability of the Cloud Data
Distributor implemented at a third party server.  To solve this, the Cloud
Data Distributor can be implemented at client side by using CAN or CHORD
like hash tables that will map each ⟨filename, chunk Sl⟩ pair to a Cloud
Provider.  A downloadable list of Cloud Providers can be used to generate
the Cloud Provider Table.  Client will also have to maintain a Chunk Table
for his chunks."

Here the overlay's nodes are the *providers themselves*: the chunk key
``filename:serial`` hashes into the overlay, whose owner (plus optional
replicas) stores the chunk.  One overlay is kept per privacy level so the
eligibility rule (provider PL >= chunk PL) still holds -- the PL-p overlay
contains only providers with PL >= p.  The client keeps a local Chunk
Table (virtual ids, misleading positions) exactly as the paper prescribes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from repro.core import chunking
from repro.core.errors import DHTError, ProviderError, UnknownFileError
from repro.core.misleading import inject, remove as remove_misleading
from repro.core.privacy import ChunkSizePolicy, PrivacyLevel
from repro.core.virtual_id import VirtualIdAllocator, shard_key
from repro.dht.can import CANetwork
from repro.dht.chord import ChordRing
from repro.providers.registry import ProviderRegistry
from repro.util.rng import SeedLike, derive_rng, spawn_seeds


class Overlay(Protocol):
    """What the client-side distributor needs from a DHT protocol."""

    @property
    def node_names(self) -> list[str]: ...
    def join(self, name: str): ...
    def leave(self, name: str) -> None: ...
    def nodes_for(self, key: str, r: int = 1) -> list[str]: ...
    def lookup(self, key: str, start: str | None = None): ...
    def __len__(self) -> int: ...


def build_overlays(
    registry: ProviderRegistry, protocol: str = "chord", dims: int = 2,
    m_bits: int = 32,
) -> dict[PrivacyLevel, Overlay]:
    """One overlay per privacy level, populated with eligible providers."""
    overlays: dict[PrivacyLevel, Overlay] = {}
    for level in PrivacyLevel:
        if protocol == "chord":
            overlay: Overlay = ChordRing(m_bits=m_bits)
        elif protocol == "can":
            overlay = CANetwork(dims=dims)
        else:
            raise ValueError(f"unknown DHT protocol {protocol!r}")
        for entry in registry.eligible(level):
            overlay.join(entry.name)
        overlays[level] = overlay
    return overlays


@dataclass
class LocalChunkRecord:
    """The client's local Chunk Table row for one chunk."""

    filename: str
    serial: int
    level: PrivacyLevel
    virtual_id: int
    providers: list[str]
    misleading_positions: tuple[int, ...]


class ClientSideDistributor:
    """A distributor living entirely at the client (no third-party server).

    Compared with :class:`repro.core.distributor.CloudDataDistributor` there
    is no central metadata service and no RAID striping: redundancy comes
    from DHT replication (the chunk is stored in full at ``replicas``
    overlay nodes).  The paper notes the trade-off: "Client will require
    some memory where the tables will reside."
    """

    def __init__(
        self,
        registry: ProviderRegistry,
        protocol: str = "chord",
        replicas: int = 2,
        chunk_policy: ChunkSizePolicy | None = None,
        dims: int = 2,
        seed: SeedLike = None,
    ) -> None:
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.registry = registry
        self.protocol = protocol
        self.replicas = replicas
        self.chunk_policy = chunk_policy or ChunkSizePolicy()
        self.overlays = build_overlays(registry, protocol=protocol, dims=dims)
        seeds = spawn_seeds(seed, 2)
        self.ids = VirtualIdAllocator(seed=seeds[0])
        self._rng = derive_rng(seeds[1])
        self.chunk_table: dict[tuple[str, int], LocalChunkRecord] = {}

    # -- lookup ------------------------------------------------------------------

    @staticmethod
    def chunk_key(filename: str, serial: int) -> str:
        """The ⟨filename, chunk Sl⟩ pair as an overlay key."""
        return f"{filename}:{serial}"

    def locate(self, filename: str, serial: int, level: PrivacyLevel | int) -> list[str]:
        """Providers responsible for the chunk under the PL's overlay."""
        overlay = self.overlays[PrivacyLevel.coerce(level)]
        r = min(self.replicas, len(overlay))
        if r == 0:
            raise DHTError(
                f"no provider eligible for PL {int(PrivacyLevel.coerce(level))}"
            )
        return overlay.nodes_for(self.chunk_key(filename, serial), r=r)

    def lookup_hops(self, filename: str, serial: int, level: PrivacyLevel | int,
                    start: str | None = None) -> int:
        """Routing hops the overlay needs to resolve the chunk's owner."""
        overlay = self.overlays[PrivacyLevel.coerce(level)]
        return overlay.lookup(self.chunk_key(filename, serial), start=start).hops

    # -- data path --------------------------------------------------------------

    def upload_file(
        self,
        filename: str,
        data: bytes,
        level: PrivacyLevel | int,
        misleading_fraction: float = 0.0,
    ) -> int:
        """Split *data* and store each chunk at its DHT replica set.

        Returns the number of chunks (the client keeps the Chunk Table, so
        no third party needs notifying).
        """
        pl = PrivacyLevel.coerce(level)
        if any(key[0] == filename for key in self.chunk_table):
            raise ValueError(f"file {filename!r} already uploaded")
        chunks = chunking.split(data, pl, policy=self.chunk_policy)
        for chunk in chunks:
            vid = self.ids.allocate()
            stored, positions = chunk.payload, ()
            if misleading_fraction > 0:
                result = inject(chunk.payload, misleading_fraction, rng=self._rng)
                stored, positions = result.stored, result.positions
            providers = self.locate(filename, chunk.serial, pl)
            for replica_index, name in enumerate(providers):
                self.registry.get(name).provider.put(
                    shard_key(vid, replica_index), stored
                )
            self.chunk_table[(filename, chunk.serial)] = LocalChunkRecord(
                filename=filename,
                serial=chunk.serial,
                level=pl,
                virtual_id=vid,
                providers=list(providers),
                misleading_positions=tuple(positions),
            )
        return len(chunks)

    def get_chunk(self, filename: str, serial: int) -> bytes:
        """Fetch one chunk, falling over across replicas."""
        record = self._record(filename, serial)
        last_error: Exception | None = None
        for replica_index, name in enumerate(record.providers):
            try:
                stored = self.registry.get(name).provider.get(
                    shard_key(record.virtual_id, replica_index)
                )
                return remove_misleading(stored, record.misleading_positions)
            except ProviderError as exc:
                last_error = exc
        raise DHTError(
            f"all {len(record.providers)} replicas of {filename}:{serial} failed"
        ) from last_error

    def get_file(self, filename: str) -> bytes:
        serials = sorted(
            serial for (name, serial) in self.chunk_table if name == filename
        )
        if not serials:
            raise UnknownFileError(f"no file named {filename!r}")
        chunks = [
            chunking.Chunk(
                serial=serial,
                level=self._record(filename, serial).level,
                payload=self.get_chunk(filename, serial),
            )
            for serial in serials
        ]
        return chunking.join(chunks)

    def remove_file(self, filename: str) -> None:
        keys = [key for key in self.chunk_table if key[0] == filename]
        if not keys:
            raise UnknownFileError(f"no file named {filename!r}")
        for key in keys:
            record = self.chunk_table.pop(key)
            for replica_index, name in enumerate(record.providers):
                try:
                    self.registry.get(name).provider.delete(
                        shard_key(record.virtual_id, replica_index)
                    )
                except ProviderError:
                    pass
            self.ids.release(record.virtual_id)

    def _record(self, filename: str, serial: int) -> LocalChunkRecord:
        try:
            return self.chunk_table[(filename, serial)]
        except KeyError:
            raise UnknownFileError(
                f"no chunk {serial} of file {filename!r} in the local table"
            ) from None

    # -- churn handling ----------------------------------------------------

    def handle_provider_failure(self, name: str) -> int:
        """A provider left/died: heal the overlays and re-replicate.

        Removes *name* from every overlay it is in, then for each chunk
        that had a replica there, fetches the payload from a surviving
        replica and re-stores it so the replica count recovers on the
        healed overlay.  Returns the number of replicas re-created.

        Chunks whose *every* replica was at the failed provider are
        unrecoverable and counted too -- they surface as
        :class:`DHTError` on the next read, matching real DHT data loss.
        """
        for overlay in self.overlays.values():
            if name in overlay.node_names:  # type: ignore[attr-defined]
                overlay.leave(name)
        recreated = 0
        for record in self.chunk_table.values():
            if name not in record.providers:
                continue
            # Fetch the stored form from any surviving replica.
            stored = None
            for replica_index, provider_name in enumerate(record.providers):
                if provider_name == name:
                    continue
                try:
                    stored = self.registry.get(provider_name).provider.get(
                        shard_key(record.virtual_id, replica_index)
                    )
                    break
                except ProviderError:
                    continue
            if stored is None:
                continue  # all replicas lost; read will fail loudly
            overlay = self.overlays[record.level]
            r = min(self.replicas, len(overlay))
            new_providers = overlay.nodes_for(
                self.chunk_key(record.filename, record.serial), r=r
            )
            # Drop every old replica object (replica indices are being
            # renumbered against the new provider list), then write fresh.
            for replica_index, provider_name in enumerate(record.providers):
                if provider_name == name:
                    continue
                try:
                    self.registry.get(provider_name).provider.delete(
                        shard_key(record.virtual_id, replica_index)
                    )
                except ProviderError:
                    pass
            for replica_index, provider_name in enumerate(new_providers):
                self.registry.get(provider_name).provider.put(
                    shard_key(record.virtual_id, replica_index), stored
                )
                recreated += 1
            record.providers = list(new_providers)
        return recreated

    @property
    def table_memory_bytes(self) -> int:
        """Rough footprint of the client-resident tables (the paper's noted
        limitation of the client-side approach)."""
        total = 0
        for record in self.chunk_table.values():
            total += len(record.filename) + 8 + 8
            total += sum(len(p) for p in record.providers)
            total += 8 * len(record.misleading_positions)
        return total
