"""DHT overlays for the client-side distributor alternative (Section IV-C).

Chord (finger-table routing on an identifier circle) and CAN
(d-dimensional coordinate-space zones), plus a client-side distributor
that maps ⟨filename, chunk Sl⟩ pairs to providers through either overlay.
"""

from repro.dht.can import CANetwork, CANLookupResult, CANNode, Zone, torus_distance
from repro.dht.chord import ChordNode, ChordRing, LookupResult
from repro.dht.client_distributor import (
    ClientSideDistributor,
    LocalChunkRecord,
    build_overlays,
)
from repro.dht.hashing import hash_point, in_interval, stable_hash

__all__ = [
    "CANetwork",
    "CANLookupResult",
    "CANNode",
    "Zone",
    "torus_distance",
    "ChordNode",
    "ChordRing",
    "LookupResult",
    "ClientSideDistributor",
    "LocalChunkRecord",
    "build_overlays",
    "hash_point",
    "in_interval",
    "stable_hash",
]
