"""Content-Addressable Network (Ratnasamy et al., SIGCOMM'01).

The second hash-table protocol the paper's Section IV-C suggests for a
client-side distributor.  The coordinate space is the d-dimensional unit
torus; each node owns a hyper-rectangular zone.  A joining node picks a
(deterministic, name-derived) random point, routes to the zone owning it,
and splits that zone in half along the dimension cycling with split depth.
A leaving node hands its zone to the sibling (if it can merge back into a
rectangle) or to its smallest neighbour, matching CAN's takeover rule.

Routing forwards greedily through zone neighbours toward the target point
(expected O(d * n^(1/d)) hops).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import DHTError
from repro.dht.hashing import hash_point


@dataclass(frozen=True)
class Zone:
    """Half-open hyper-rectangle [lo_i, hi_i) per dimension."""

    lo: tuple[float, ...]
    hi: tuple[float, ...]

    @property
    def dims(self) -> int:
        return len(self.lo)

    def contains(self, point: tuple[float, ...]) -> bool:
        return all(l <= x < h for l, x, h in zip(self.lo, point, self.hi))

    def volume(self) -> float:
        v = 1.0
        for l, h in zip(self.lo, self.hi):
            v *= h - l
        return v

    def center(self) -> tuple[float, ...]:
        return tuple((l + h) / 2 for l, h in zip(self.lo, self.hi))

    def split(self, dim: int) -> tuple["Zone", "Zone"]:
        """Halve the zone along dimension *dim*; returns (lower, upper)."""
        mid = (self.lo[dim] + self.hi[dim]) / 2
        lower_hi = tuple(mid if i == dim else h for i, h in enumerate(self.hi))
        upper_lo = tuple(mid if i == dim else l for i, l in enumerate(self.lo))
        return Zone(self.lo, lower_hi), Zone(upper_lo, self.hi)

    def merged_with(self, other: "Zone") -> "Zone | None":
        """The union zone if the two abut exactly along one dimension."""
        diff_dims = [
            i
            for i in range(self.dims)
            if self.lo[i] != other.lo[i] or self.hi[i] != other.hi[i]
        ]
        if len(diff_dims) != 1:
            return None
        d = diff_dims[0]
        if self.hi[d] == other.lo[d]:
            return Zone(self.lo, tuple(other.hi[i] if i == d else h for i, h in enumerate(self.hi)))
        if other.hi[d] == self.lo[d]:
            return Zone(
                tuple(other.lo[i] if i == d else l for i, l in enumerate(self.lo)),
                self.hi,
            )
        return None

    def is_neighbor(self, other: "Zone") -> bool:
        """True iff zones abut along exactly one dimension and overlap in
        the others (torus wraparound included)."""
        touching_dims = 0
        for i in range(self.dims):
            overlap = min(self.hi[i], other.hi[i]) - max(self.lo[i], other.lo[i])
            if overlap > 0:
                continue
            abut = (
                self.hi[i] == other.lo[i]
                or other.hi[i] == self.lo[i]
                or (self.hi[i] == 1.0 and other.lo[i] == 0.0)
                or (other.hi[i] == 1.0 and self.lo[i] == 0.0)
            )
            if abut:
                touching_dims += 1
            else:
                return False
        return touching_dims == 1


def torus_distance(a: tuple[float, ...], b: tuple[float, ...]) -> float:
    """Squared Euclidean distance on the unit torus."""
    total = 0.0
    for x, y in zip(a, b):
        delta = abs(x - y)
        delta = min(delta, 1.0 - delta)
        total += delta * delta
    return total


@dataclass
class CANNode:
    name: str
    zone: Zone
    split_depth: int = 0
    neighbors: set[str] = field(default_factory=set)


@dataclass(frozen=True)
class CANLookupResult:
    point: tuple[float, ...]
    owner: str
    path: list[str]

    @property
    def hops(self) -> int:
        return len(self.path) - 1


class CANetwork:
    """A d-dimensional CAN overlay over named nodes."""

    def __init__(self, dims: int = 2) -> None:
        if dims < 1:
            raise ValueError(f"dims must be >= 1, got {dims}")
        self.dims = dims
        self._nodes: dict[str, CANNode] = {}

    # -- membership -------------------------------------------------------------

    def join(self, name: str) -> CANNode:
        """Insert *name*: route to its hash point's zone and split it."""
        if name in self._nodes:
            raise DHTError(f"node {name!r} already in the network")
        if not self._nodes:
            node = CANNode(
                name=name,
                zone=Zone(lo=(0.0,) * self.dims, hi=(1.0,) * self.dims),
            )
            self._nodes[name] = node
            return node
        point = hash_point(name, self.dims)
        victim = self._nodes[self._owner_of(point)]
        dim = victim.split_depth % self.dims
        lower, upper = victim.zone.split(dim)
        # The victim keeps the half containing its own center-point claim;
        # assign deterministically: victim keeps lower, joiner takes upper,
        # unless the victim's previous center falls in upper.
        if upper.contains(victim.zone.center()):
            victim_zone, joiner_zone = upper, lower
        else:
            victim_zone, joiner_zone = lower, upper
        victim.zone = victim_zone
        victim.split_depth += 1
        node = CANNode(name=name, zone=joiner_zone, split_depth=victim.split_depth)
        self._nodes[name] = node
        self._rebuild_neighbors()
        return node

    def leave(self, name: str) -> None:
        """Remove *name*; its zone merges into a sibling or smallest neighbour."""
        if name not in self._nodes:
            raise DHTError(f"no node named {name!r}")
        leaver = self._nodes.pop(name)
        if not self._nodes:
            return
        # Prefer a neighbour whose zone merges into a clean rectangle.
        for other in sorted(self._nodes.values(), key=lambda n: n.zone.volume()):
            merged = other.zone.merged_with(leaver.zone)
            if merged is not None:
                other.zone = merged
                other.split_depth = max(0, other.split_depth - 1)
                self._rebuild_neighbors()
                return
        # Fallback: the smallest neighbour absorbs the zone as a composite.
        # To keep zones rectangular we instead rebuild the whole space from
        # the surviving membership (defragmentation-style takeover).
        survivors = sorted(self._nodes)
        self._nodes.clear()
        for survivor in survivors:
            self.join(survivor)

    @property
    def node_names(self) -> list[str]:
        return sorted(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def zone_of(self, name: str) -> Zone:
        try:
            return self._nodes[name].zone
        except KeyError:
            raise DHTError(f"no node named {name!r}") from None

    # -- internal ------------------------------------------------------------

    def _owner_of(self, point: tuple[float, ...]) -> str:
        for name, node in self._nodes.items():
            if node.zone.contains(point):
                return name
        raise DHTError(f"no zone contains point {point} (space fragmented)")

    def _rebuild_neighbors(self) -> None:
        names = list(self._nodes)
        for node in self._nodes.values():
            node.neighbors.clear()
        for i, a in enumerate(names):
            for b in names[i + 1 :]:
                if self._nodes[a].zone.is_neighbor(self._nodes[b].zone):
                    self._nodes[a].neighbors.add(b)
                    self._nodes[b].neighbors.add(a)

    # -- routing ----------------------------------------------------------------

    def key_point(self, key: str) -> tuple[float, ...]:
        return hash_point(key, self.dims)

    def owner(self, key: str) -> str:
        return self._owner_of(self.key_point(key))

    def lookup(self, key: str, start: str | None = None) -> CANLookupResult:
        """Greedy neighbour routing from *start* to the zone owning *key*."""
        if not self._nodes:
            raise DHTError("cannot look up on an empty network")
        point = self.key_point(key)
        if start is None:
            start = min(self._nodes)  # deterministic entry node
        if start not in self._nodes:
            raise DHTError(f"start node {start!r} is not in the network")
        current = self._nodes[start]
        path = [current.name]
        limit = 4 * len(self._nodes) + 8
        for _ in range(limit):
            if current.zone.contains(point):
                return CANLookupResult(point=point, owner=current.name, path=path)
            best_name, best_dist = None, torus_distance(current.zone.center(), point)
            for neighbor_name in current.neighbors:
                d = torus_distance(self._nodes[neighbor_name].zone.center(), point)
                if d < best_dist:
                    best_name, best_dist = neighbor_name, d
            if best_name is None:
                # Greedy local minimum (rare with rectangles): fall back to
                # the true owner with one extra logical hop.
                owner_name = self._owner_of(point)
                path.append(owner_name)
                return CANLookupResult(point=point, owner=owner_name, path=path)
            current = self._nodes[best_name]
            path.append(current.name)
        raise DHTError(f"lookup for {key!r} exceeded {limit} hops")

    def nodes_for(self, key: str, r: int = 1) -> list[str]:
        """Owner plus the r-1 neighbours nearest the key (replica set)."""
        if r < 1:
            raise ValueError(f"replica count must be >= 1, got {r}")
        if r > len(self._nodes):
            raise DHTError(
                f"cannot place {r} replicas on {len(self._nodes)} nodes"
            )
        point = self.key_point(key)
        owner_name = self._owner_of(point)
        if r == 1:
            return [owner_name]
        others = sorted(
            (n for n in self._nodes.values() if n.name != owner_name),
            key=lambda n: (torus_distance(n.zone.center(), point), n.name),
        )
        return [owner_name] + [n.name for n in others[: r - 1]]
