"""Chord distributed hash table (Stoica et al., SIGCOMM'01).

Section IV-C of the paper proposes implementing the Cloud Data Distributor
at the client side "by using CAN or CHORD like hash tables that will map
each ⟨filename, chunk Sl⟩ pair to a Cloud Provider".  Here providers are
the Chord nodes; a chunk key hashes onto the identifier circle and is owned
by its successor node.

This is a single-process protocol simulation: nodes keep real finger
tables and successor lists, and lookups route greedily through the finger
tables (counting hops, O(log n) expected), but stabilization is performed
eagerly after each join/leave rather than by background gossip.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from repro.core.errors import DHTError
from repro.dht.hashing import in_interval, stable_hash


@dataclass
class ChordNode:
    """One node on the identifier circle."""

    node_id: int
    name: str
    fingers: list[int] = field(default_factory=list)  # finger[i] -> node id
    successors: list[int] = field(default_factory=list)
    predecessor: int | None = None
    alive: bool = True


@dataclass(frozen=True)
class LookupResult:
    """Owner of a key plus the routing path taken to find it."""

    key_id: int
    owner: str
    path: list[str]

    @property
    def hops(self) -> int:
        return len(self.path) - 1


class ChordRing:
    """A Chord overlay over named nodes (cloud providers)."""

    def __init__(self, m_bits: int = 32, successor_list_len: int = 3) -> None:
        if not (1 <= m_bits <= 160):
            raise ValueError(f"m_bits must be in 1..160, got {m_bits}")
        self.m_bits = m_bits
        self.modulus = 1 << m_bits
        self.successor_list_len = successor_list_len
        self._nodes: dict[int, ChordNode] = {}
        self._ring: list[int] = []  # sorted node ids

    # -- membership -------------------------------------------------------------

    def node_id_for(self, name: str) -> int:
        return stable_hash(name, self.m_bits)

    def join(self, name: str) -> ChordNode:
        """Add the node *name* to the ring and restabilize."""
        node_id = self.node_id_for(name)
        if node_id in self._nodes:
            raise DHTError(
                f"id collision: {name!r} hashes onto existing node "
                f"{self._nodes[node_id].name!r} (increase m_bits)"
            )
        node = ChordNode(node_id=node_id, name=name)
        self._nodes[node_id] = node
        bisect.insort(self._ring, node_id)
        self._stabilize()
        return node

    def leave(self, name: str) -> None:
        """Remove the node *name*; its keys fall to its successor."""
        node_id = self.node_id_for(name)
        if node_id not in self._nodes:
            raise DHTError(f"no node named {name!r} in the ring")
        del self._nodes[node_id]
        self._ring.remove(node_id)
        self._stabilize()

    def mark_failed(self, name: str) -> None:
        """Node *name* crashes WITHOUT the ring restabilizing.

        Finger tables and successor lists still reference it; lookups must
        route around the corpse until :meth:`stabilize` runs -- the
        scenario Chord's successor lists exist for.
        """
        node_id = self.node_id_for(name)
        if node_id not in self._nodes:
            raise DHTError(f"no node named {name!r} in the ring")
        self._nodes[node_id].alive = False

    def stabilize(self) -> list[str]:
        """Purge failed nodes and rebuild routing state (the periodic
        stabilization protocol, run eagerly).  Returns the purged names."""
        dead = [n.name for n in self._nodes.values() if not n.alive]
        for name in dead:
            node_id = self.node_id_for(name)
            del self._nodes[node_id]
            self._ring.remove(node_id)
        self._stabilize()
        return dead

    @property
    def node_names(self) -> list[str]:
        return [self._nodes[i].name for i in self._ring]

    @property
    def alive_names(self) -> list[str]:
        return [self._nodes[i].name for i in self._ring if self._nodes[i].alive]

    def __len__(self) -> int:
        return len(self._ring)

    # -- stabilization (eager) ------------------------------------------------

    def _successor_id(self, ident: int) -> int:
        """The first node id clockwise from *ident* (inclusive)."""
        if not self._ring:
            raise DHTError("ring is empty")
        index = bisect.bisect_left(self._ring, ident % self.modulus)
        return self._ring[index % len(self._ring)]

    def _first_alive_successor(self, ident: int) -> int:
        """First *alive* node id clockwise from *ident* (inclusive)."""
        if not self._ring:
            raise DHTError("ring is empty")
        start = bisect.bisect_left(self._ring, ident % self.modulus)
        for offset in range(len(self._ring)):
            node_id = self._ring[(start + offset) % len(self._ring)]
            if self._nodes[node_id].alive:
                return node_id
        raise DHTError("no alive node in the ring")

    def _stabilize(self) -> None:
        """Rebuild fingers, successor lists and predecessors for all nodes."""
        n = len(self._ring)
        if n == 0:
            return
        for position, node_id in enumerate(self._ring):
            node = self._nodes[node_id]
            node.fingers = [
                self._successor_id(node_id + (1 << i)) for i in range(self.m_bits)
            ]
            node.successors = [
                self._ring[(position + 1 + j) % n]
                for j in range(min(self.successor_list_len, n))
            ]
            node.predecessor = self._ring[(position - 1) % n]

    # -- routing ----------------------------------------------------------------

    def key_id(self, key: str) -> int:
        return stable_hash(key, self.m_bits)

    def _closest_preceding_finger(self, node: ChordNode, key_id: int) -> int:
        """Closest preceding *alive* finger (dead fingers are skipped, as a
        real node would do after a timeout)."""
        for finger_id in reversed(node.fingers):
            finger = self._nodes.get(finger_id)
            if finger is None or not finger.alive:
                continue
            if in_interval(
                finger_id, node.node_id, key_id, self.modulus, inclusive_hi=False
            ):
                return finger_id
        return node.node_id

    def _alive_successor_of(self, node: ChordNode) -> int:
        """The first alive entry of *node*'s successor list.

        Raises :class:`DHTError` when every listed successor is dead --
        the ring has partitioned beyond what the successor list can heal.
        """
        for candidate in node.successors or [node.node_id]:
            entry = self._nodes.get(candidate)
            if entry is not None and entry.alive:
                return candidate
        raise DHTError(
            f"node {node.name!r}: successor list exhausted "
            f"(more than {self.successor_list_len} consecutive failures)"
        )

    def lookup(self, key: str, start: str | None = None, max_hops: int | None = None) -> LookupResult:
        """Route from *start* (default: first node) to the owner of *key*.

        Follows Chord's ``find_successor``: walk closest-preceding fingers
        until the key falls between the current node and its immediate
        successor.  Returns the owner and full path (for hop accounting).
        """
        if not self._ring:
            raise DHTError("cannot look up on an empty ring")
        key_hash = self.key_id(key)
        if start is not None:
            start_id = self.node_id_for(start)
            if start_id not in self._nodes:
                raise DHTError(f"start node {start!r} is not in the ring")
            current = self._nodes[start_id]
            if not current.alive:
                raise DHTError(f"start node {current.name!r} has failed")
        else:
            # Default entry point: the first *alive* node.  Before the
            # successor-list fix, this picked ``_ring[0]`` unconditionally
            # and raised once that node died -- even though ``owner()``
            # kept answering -- so lookup and owner disagreed under churn.
            current = self._nodes[self._first_alive_successor(0)]
        limit = max_hops if max_hops is not None else 2 * self.m_bits + len(self._ring)
        path = [current.name]
        for _ in range(limit):
            successor_id = self._alive_successor_of(current)
            if in_interval(key_hash, current.node_id, successor_id, self.modulus):
                owner = self._nodes[successor_id]
                if owner.name != path[-1]:
                    path.append(owner.name)
                return LookupResult(key_id=key_hash, owner=owner.name, path=path)
            next_id = self._closest_preceding_finger(current, key_hash)
            if next_id == current.node_id:
                # Fingers degenerate (tiny ring / all dead): fall through to
                # the alive successor.
                next_id = successor_id
            current = self._nodes[next_id]
            path.append(current.name)
        raise DHTError(f"lookup for {key!r} exceeded {limit} hops")

    def owner(self, key: str) -> str:
        """The alive node responsible for *key* (first alive successor of
        its hash -- with no failures this is the plain successor)."""
        return self._nodes[self._first_alive_successor(self.key_id(key))].name

    # -- ownership ranges -------------------------------------------------------

    def predecessor_id(self, name: str) -> int:
        """Id of the closest *alive* node counter-clockwise of *name*.

        With a single alive node this is the node's own id (it owns the
        whole circle).  Raises :class:`DHTError` for unknown or dead nodes.
        """
        node_id = self.node_id_for(name)
        node = self._nodes.get(node_id)
        if node is None:
            raise DHTError(f"no node named {name!r} in the ring")
        if not node.alive:
            raise DHTError(f"node {name!r} has failed and owns no range")
        position = self._ring.index(node_id)
        for offset in range(1, len(self._ring) + 1):
            candidate = self._ring[(position - offset) % len(self._ring)]
            if self._nodes[candidate].alive:
                return candidate
        raise DHTError("no alive node in the ring")

    def owned_range(self, name: str) -> tuple[int, int]:
        """The half-open arc ``(predecessor_id, node_id]`` owned by *name*.

        When the two ids coincide (single alive node) the range is the
        whole circle, matching :func:`~repro.dht.hashing.in_interval`.
        """
        return self.predecessor_id(name), self.node_id_for(name)

    def owns(self, name: str, key: str) -> bool:
        """True when *name* is the alive owner of *key*.

        Agrees with :meth:`owner` by construction; exists so range
        migration can test many keys against one node without re-running
        the successor scan per key.
        """
        try:
            lo, hi = self.owned_range(name)
        except DHTError:
            return False
        return in_interval(self.key_id(key), lo, hi, self.modulus)

    def nodes_for(self, key: str, r: int = 1) -> list[str]:
        """The owner plus the next r-1 distinct *alive* successors."""
        if r < 1:
            raise ValueError(f"replica count must be >= 1, got {r}")
        alive = [i for i in self._ring if self._nodes[i].alive]
        if r > len(alive):
            raise DHTError(
                f"cannot place {r} replicas on a ring with {len(alive)} "
                f"alive nodes"
            )
        start = self._ring.index(self._first_alive_successor(self.key_id(key)))
        out: list[str] = []
        offset = 0
        while len(out) < r:
            node = self._nodes[self._ring[(start + offset) % len(self._ring)]]
            if node.alive:
                out.append(node.name)
            offset += 1
        return out
