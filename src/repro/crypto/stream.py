"""A fast keyed stream cipher (SHA-256 counter-mode keystream).

The cheaper of the two encryption baselines: one SHA-256 invocation yields
32 keystream bytes.  Used where the comparison wants a best-case
encryption cost (the Feistel cipher represents a slower block cipher).
"""

from __future__ import annotations

import hashlib
import time

import numpy as np

from repro.obs.metrics import get_metrics

_CHUNK = 32  # SHA-256 digest size


class StreamCipher:
    """XOR stream cipher with a hash-counter keystream."""

    def __init__(self, key: bytes) -> None:
        if not key:
            raise ValueError("key must be non-empty")
        self._key = bytes(key)

    def keystream(self, nbytes: int, nonce: int = 0, offset: int = 0) -> bytes:
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        first = offset // _CHUNK
        last = (offset + nbytes + _CHUNK - 1) // _CHUNK
        prefix = self._key + nonce.to_bytes(8, "big")
        # Hash straight into one preallocated buffer: join()-ing per-block
        # digests costs an allocation plus a copy per 32 bytes, which
        # dominates on chunk-sized payloads.
        stream = bytearray((last - first) * _CHUNK)
        pos = 0
        for counter in range(first, last):
            stream[pos : pos + _CHUNK] = hashlib.sha256(
                prefix + counter.to_bytes(8, "big")
            ).digest()
            pos += _CHUNK
        start = offset - first * _CHUNK
        return bytes(stream[start : start + nbytes])

    def _transform(
        self, data: "bytes | memoryview", nonce: int, offset: int, op: str
    ) -> bytes:
        # Accepts any C-contiguous buffer (np.frombuffer reads the buffer
        # protocol directly), so the streaming path can pass window slices
        # without copying them to bytes first.
        t0 = time.perf_counter()
        ks = np.frombuffer(
            self.keystream(len(data), nonce, offset=offset), dtype=np.uint8
        )
        out = (np.frombuffer(data, dtype=np.uint8) ^ ks).tobytes()
        metrics = get_metrics()
        metrics.histogram("cipher_transform_seconds", op=op).observe(
            time.perf_counter() - t0
        )
        metrics.counter("cipher_bytes_total", op=op).inc(len(data))
        return out

    def encrypt(self, plaintext: "bytes | memoryview", nonce: int = 0) -> bytes:
        return self._transform(plaintext, nonce, 0, "encrypt")

    def decrypt(self, ciphertext: "bytes | memoryview", nonce: int = 0) -> bytes:
        return self._transform(ciphertext, nonce, 0, "decrypt")

    def decrypt_range(
        self, ciphertext_slice: bytes, offset: int, nonce: int = 0
    ) -> bytes:
        return self._transform(ciphertext_slice, nonce, offset, "decrypt")
