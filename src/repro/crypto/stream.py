"""A fast keyed stream cipher (SHA-256 counter-mode keystream).

The cheaper of the two encryption baselines: one SHA-256 invocation yields
32 keystream bytes.  Used where the comparison wants a best-case
encryption cost (the Feistel cipher represents a slower block cipher).
"""

from __future__ import annotations

import hashlib

import numpy as np

_CHUNK = 32  # SHA-256 digest size


class StreamCipher:
    """XOR stream cipher with a hash-counter keystream."""

    def __init__(self, key: bytes) -> None:
        if not key:
            raise ValueError("key must be non-empty")
        self._key = bytes(key)

    def keystream(self, nbytes: int, nonce: int = 0, offset: int = 0) -> bytes:
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        first = offset // _CHUNK
        last = (offset + nbytes + _CHUNK - 1) // _CHUNK
        prefix = self._key + nonce.to_bytes(8, "big")
        # Hash straight into one preallocated buffer: join()-ing per-block
        # digests costs an allocation plus a copy per 32 bytes, which
        # dominates on chunk-sized payloads.
        stream = bytearray((last - first) * _CHUNK)
        pos = 0
        for counter in range(first, last):
            stream[pos : pos + _CHUNK] = hashlib.sha256(
                prefix + counter.to_bytes(8, "big")
            ).digest()
            pos += _CHUNK
        start = offset - first * _CHUNK
        return bytes(stream[start : start + nbytes])

    def encrypt(self, plaintext: bytes, nonce: int = 0) -> bytes:
        ks = np.frombuffer(self.keystream(len(plaintext), nonce), dtype=np.uint8)
        pt = np.frombuffer(plaintext, dtype=np.uint8)
        return (pt ^ ks).tobytes()

    def decrypt(self, ciphertext: bytes, nonce: int = 0) -> bytes:
        return self.encrypt(ciphertext, nonce)

    def decrypt_range(
        self, ciphertext_slice: bytes, offset: int, nonce: int = 0
    ) -> bytes:
        ks = np.frombuffer(
            self.keystream(len(ciphertext_slice), nonce, offset=offset),
            dtype=np.uint8,
        )
        ct = np.frombuffer(ciphertext_slice, dtype=np.uint8)
        return (ct ^ ks).tobytes()
