"""From-scratch ciphers and the encryption-vs-fragmentation comparison
(Section VII-E)."""

from repro.crypto.compare import (
    EncryptedWholeFileStore,
    PartialEncryptedDistributor,
    QueryCost,
    fragmentation_point_query,
    partial_encryption_point_query,
)
from repro.crypto.feistel import (
    BLOCK_BYTES,
    ROUNDS,
    FeistelCipher,
    decrypt_block,
    encrypt_block,
)
from repro.crypto.selective import (
    SelectiveEncryptor,
    SensitiveRange,
    normalize_ranges,
)
from repro.crypto.stream import StreamCipher

__all__ = [
    "SelectiveEncryptor",
    "SensitiveRange",
    "normalize_ranges",
    "EncryptedWholeFileStore",
    "PartialEncryptedDistributor",
    "QueryCost",
    "fragmentation_point_query",
    "partial_encryption_point_query",
    "BLOCK_BYTES",
    "ROUNDS",
    "FeistelCipher",
    "decrypt_block",
    "encrypt_block",
    "StreamCipher",
]
