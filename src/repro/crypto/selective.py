"""Selective (range-based) encryption (Section VII-E).

"Clients can also use partial encryption along with fragmentation, that
involves partitioning data and encrypting a portion of it."  Unlike
:class:`PartialEncryptedDistributor` (which encrypts every chunk), this is
the paper's literal proposal: the client marks the *sensitive byte ranges*
of a file (salary columns, coordinates, names) and only those bytes are
encrypted before the file enters the normal fragment-and-distribute path.
Crypto cost scales with the sensitive fraction instead of the file size.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.crypto.feistel import FeistelCipher


@dataclass(frozen=True)
class SensitiveRange:
    """A half-open byte range [start, stop) to protect."""

    start: int
    stop: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.stop < self.start:
            raise ValueError(
                f"invalid range [{self.start}, {self.stop})"
            )

    @property
    def length(self) -> int:
        return self.stop - self.start


def normalize_ranges(
    ranges: list[SensitiveRange | tuple[int, int]], data_len: int
) -> list[SensitiveRange]:
    """Validate, clip, sort and merge overlapping/adjacent ranges."""
    cleaned = []
    for r in ranges:
        if isinstance(r, tuple):
            r = SensitiveRange(*r)
        if r.start >= data_len:
            continue
        cleaned.append(SensitiveRange(r.start, min(r.stop, data_len)))
    cleaned.sort(key=lambda r: r.start)
    merged: list[SensitiveRange] = []
    for r in cleaned:
        if merged and r.start <= merged[-1].stop:
            merged[-1] = SensitiveRange(
                merged[-1].start, max(merged[-1].stop, r.stop)
            )
        else:
            merged.append(r)
    return merged


class SelectiveEncryptor:
    """Encrypts only the marked ranges of a payload (CTR keystream aligned
    to absolute file offsets, so ciphertext length == plaintext length and
    the ranges decrypt independently)."""

    def __init__(self, key: bytes, cipher_cls=FeistelCipher) -> None:
        self.cipher = cipher_cls(key)

    def _apply(self, data: bytes, ranges: list[SensitiveRange], nonce: int) -> tuple[bytes, int]:
        buffer = bytearray(data)
        touched = 0
        for r in ranges:
            ks = np.frombuffer(
                self.cipher.keystream(r.length, nonce=nonce, offset=r.start),
                dtype=np.uint8,
            )
            segment = np.frombuffer(bytes(buffer[r.start : r.stop]), dtype=np.uint8)
            buffer[r.start : r.stop] = (segment ^ ks).tobytes()
            touched += r.length
        return bytes(buffer), touched

    def encrypt(
        self,
        data: bytes,
        ranges: list[SensitiveRange | tuple[int, int]],
        nonce: int = 0,
    ) -> tuple[bytes, list[SensitiveRange], int]:
        """Returns (protected bytes, normalized ranges, bytes encrypted).

        The normalized range list is the client-side metadata needed to
        decrypt later -- analogous to the misleading-byte position list.
        """
        normalized = normalize_ranges(list(ranges), len(data))
        protected, touched = self._apply(data, normalized, nonce)
        return protected, normalized, touched

    def decrypt(
        self, protected: bytes, ranges: list[SensitiveRange], nonce: int = 0
    ) -> bytes:
        """Inverse of :meth:`encrypt` (CTR XOR is an involution)."""
        plain, _ = self._apply(protected, ranges, nonce)
        return plain

    @staticmethod
    def sensitive_fraction(ranges: list[SensitiveRange], data_len: int) -> float:
        if data_len == 0:
            return 0.0
        return sum(r.length for r in ranges) / data_len
