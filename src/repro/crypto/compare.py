"""Encryption vs fragmentation query-overhead comparison (Section VII-E).

"Existing proposals of secure database system relies mostly on encryption
...  But encryption has a large disadvantage in the form of overhead
associated with query processing.  The client has to fetch the whole
database, then decrypt it and run queries. ... On the other hand, splitting
or fragmentation of data also ensures privacy but at much lower cost."

Three storage schemes answer the same point query (one chunk-sized range
of the file) and we account the cost of each:

* **Fragmentation** (the paper's system): fetch exactly the one chunk from
  its providers; zero crypto work.
* **Whole-file encryption** (classic secure DB): the file is one opaque
  ciphertext at one provider -- fetch all of it, decrypt all of it, slice.
* **Partial encryption** (Section VII-E's complement): fragmentation plus
  per-chunk encryption -- fetch one chunk, decrypt that chunk only.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.distributor import CloudDataDistributor
from repro.crypto.feistel import FeistelCipher
from repro.crypto.stream import StreamCipher
from repro.providers.registry import ProviderRegistry
from repro.util.clock import SimulatedClock


@dataclass(frozen=True)
class QueryCost:
    """Cost of one point query under one scheme."""

    scheme: str
    sim_time_s: float  # simulated network time (RTT + transfer)
    bytes_transferred: int
    bytes_decrypted: int
    cpu_time_s: float  # measured host CPU time spent in crypto


class EncryptedWholeFileStore:
    """The encrypt-everything baseline: one ciphertext blob, one provider.

    ``cipher_cls`` defaults to the fast stream cipher so the baseline is
    charged a *best-case* decryption cost; pass :class:`FeistelCipher` to
    model a slower block cipher.
    """

    #: Simulated software-decryption throughput (2012-era AES, bytes/s);
    #: decryption is charged against the shared clock at this rate.
    DECRYPT_THROUGHPUT = 100 * 1024 * 1024

    def __init__(
        self,
        registry: ProviderRegistry,
        provider: str,
        key: bytes,
        clock: SimulatedClock,
        cipher_cls=StreamCipher,
    ) -> None:
        self.registry = registry
        self.provider = provider
        self.cipher = cipher_cls(key)
        self.clock = clock
        self._sizes: dict[str, int] = {}

    def put(self, name: str, data: bytes) -> None:
        ciphertext = self.cipher.encrypt(data, nonce=len(name))
        self.registry.get(self.provider).provider.put(f"enc:{name}", ciphertext)
        self._sizes[name] = len(data)

    def point_query(self, name: str, start: int, length: int) -> tuple[bytes, QueryCost]:
        """Fetch the WHOLE ciphertext, decrypt it all, return the slice."""
        t0 = self.clock.now
        ciphertext = self.registry.get(self.provider).provider.get(f"enc:{name}")
        cpu0 = time.perf_counter()
        plaintext = self.cipher.decrypt(ciphertext, nonce=len(name))
        cpu = time.perf_counter() - cpu0
        self.clock.advance(len(ciphertext) / self.DECRYPT_THROUGHPUT)
        sim_time = self.clock.now - t0
        return plaintext[start : start + length], QueryCost(
            scheme="whole-file-encryption",
            sim_time_s=sim_time,
            bytes_transferred=len(ciphertext),
            bytes_decrypted=len(ciphertext),
            cpu_time_s=cpu,
        )


class PartialEncryptedDistributor:
    """Fragmentation + per-chunk encryption (defence in depth).

    Wraps the real distributor: chunks are encrypted client-side before
    upload, so a point query costs one chunk fetch plus one chunk decrypt.
    """

    def __init__(
        self, distributor: CloudDataDistributor, key: bytes, cipher_cls=FeistelCipher
    ) -> None:
        self.distributor = distributor
        self.cipher = cipher_cls(key)

    def upload_file(self, client, password, filename, data, level, **kwargs):
        ciphertext = self.cipher.encrypt(data, nonce=len(filename))
        return self.distributor.upload_file(
            client, password, filename, ciphertext, level, **kwargs
        )

    def get_chunk(self, client, password, filename, serial) -> tuple[bytes, float, int]:
        """(plaintext chunk, crypto cpu seconds, bytes decrypted)."""
        ciphertext = self.distributor.get_chunk(client, password, filename, serial)
        # CTR offsets are serial * chunk_size; the chunk size comes from the
        # distributor's PL schedule.  (Incompatible with misleading-byte
        # injection, which would shift offsets -- don't combine the two.)
        ref = self.distributor.client_table.get(client).ref_for_chunk(filename, serial)
        chunk_size = self.distributor.chunk_policy.chunk_size(ref.privacy_level)
        cpu0 = time.perf_counter()
        plaintext = self.cipher.decrypt_range(
            ciphertext, offset=serial * chunk_size, nonce=len(filename)
        )
        cpu = time.perf_counter() - cpu0
        return plaintext, cpu, len(ciphertext)


def fragmentation_point_query(
    distributor: CloudDataDistributor,
    clock: SimulatedClock,
    client: str,
    password: str,
    filename: str,
    serial: int,
) -> tuple[bytes, QueryCost]:
    """Point query under pure fragmentation: fetch one chunk, no crypto."""
    t0 = clock.now
    chunk = distributor.get_chunk(client, password, filename, serial)
    return chunk, QueryCost(
        scheme="fragmentation",
        sim_time_s=clock.now - t0,
        bytes_transferred=len(chunk),
        bytes_decrypted=0,
        cpu_time_s=0.0,
    )


def partial_encryption_point_query(
    wrapped: PartialEncryptedDistributor,
    clock: SimulatedClock,
    client: str,
    password: str,
    filename: str,
    serial: int,
) -> tuple[bytes, QueryCost]:
    """Point query under fragmentation + per-chunk encryption."""
    t0 = clock.now
    plaintext, cpu, nbytes = wrapped.get_chunk(client, password, filename, serial)
    clock.advance(nbytes / EncryptedWholeFileStore.DECRYPT_THROUGHPUT)
    return plaintext, QueryCost(
        scheme="partial-encryption",
        sim_time_s=clock.now - t0,
        bytes_transferred=nbytes,
        bytes_decrypted=nbytes,
        cpu_time_s=cpu,
    )
