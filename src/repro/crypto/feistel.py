"""A from-scratch 16-round Feistel block cipher with CTR mode.

The paper's Section VII-E compares encryption against fragmentation as the
privacy mechanism.  No third-party crypto package is available offline, so
the encryption baseline uses this self-contained cipher: a 64-bit-block
Feistel network whose round function mixes SHA-256-derived round keys with
rotation and multiplication.  It is a *cost-realistic stand-in*, not a
vetted cipher -- the comparison needs representative encrypt/decrypt work
per byte, which a real Feistel construction provides.
"""

from __future__ import annotations

import hashlib
import struct

import numpy as np

BLOCK_BYTES = 8
ROUNDS = 16
_MASK32 = 0xFFFFFFFF


def _round_keys(key: bytes) -> list[int]:
    """Derive ROUNDS 32-bit round keys from *key* via SHA-256 expansion."""
    if not key:
        raise ValueError("key must be non-empty")
    material = b""
    counter = 0
    while len(material) < ROUNDS * 4:
        material += hashlib.sha256(key + counter.to_bytes(4, "big")).digest()
        counter += 1
    return [
        int.from_bytes(material[i * 4 : (i + 1) * 4], "big") for i in range(ROUNDS)
    ]


def _f(half: int, round_key: int) -> int:
    """Round function: add-rotate-xor-multiply mix of the half block."""
    x = (half + round_key) & _MASK32
    x = ((x << 7) | (x >> 25)) & _MASK32
    x ^= round_key
    x = (x * 0x9E3779B1) & _MASK32  # golden-ratio odd multiplier
    x ^= x >> 15
    return x


def encrypt_block(block: bytes, round_keys: list[int]) -> bytes:
    """Encrypt one 8-byte block."""
    if len(block) != BLOCK_BYTES:
        raise ValueError(f"block must be {BLOCK_BYTES} bytes, got {len(block)}")
    left, right = struct.unpack(">II", block)
    for rk in round_keys:
        left, right = right, left ^ _f(right, rk)
    return struct.pack(">II", right, left)  # final swap


def decrypt_block(block: bytes, round_keys: list[int]) -> bytes:
    """Decrypt one 8-byte block (Feistel runs the schedule backwards)."""
    if len(block) != BLOCK_BYTES:
        raise ValueError(f"block must be {BLOCK_BYTES} bytes, got {len(block)}")
    right, left = struct.unpack(">II", block)
    for rk in reversed(round_keys):
        right, left = left, right ^ _f(left, rk)
    return struct.pack(">II", left, right)


class FeistelCipher:
    """Feistel-64 in CTR mode: stream encryption of arbitrary lengths.

    CTR mode turns the block cipher into a keystream generator, so
    ciphertext length equals plaintext length and random-offset decryption
    is possible (used by the partial-encryption comparison).
    """

    def __init__(self, key: bytes) -> None:
        self._round_keys = _round_keys(key)

    def keystream(self, nbytes: int, nonce: int = 0, offset: int = 0) -> bytes:
        """*nbytes* of keystream starting at byte *offset* of the stream."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        first_block = offset // BLOCK_BYTES
        last_block = (offset + nbytes + BLOCK_BYTES - 1) // BLOCK_BYTES
        stream = b"".join(
            encrypt_block(
                struct.pack(">II", nonce & _MASK32, counter & _MASK32),
                self._round_keys,
            )
            for counter in range(first_block, last_block)
        )
        start = offset - first_block * BLOCK_BYTES
        return stream[start : start + nbytes]

    def encrypt(self, plaintext: bytes, nonce: int = 0) -> bytes:
        ks = np.frombuffer(self.keystream(len(plaintext), nonce), dtype=np.uint8)
        pt = np.frombuffer(plaintext, dtype=np.uint8)
        return (pt ^ ks).tobytes()

    def decrypt(self, ciphertext: bytes, nonce: int = 0) -> bytes:
        # CTR mode is an involution.
        return self.encrypt(ciphertext, nonce)

    def decrypt_range(
        self, ciphertext_slice: bytes, offset: int, nonce: int = 0
    ) -> bytes:
        """Decrypt a slice that began at byte *offset* of the ciphertext."""
        ks = np.frombuffer(
            self.keystream(len(ciphertext_slice), nonce, offset=offset),
            dtype=np.uint8,
        )
        ct = np.frombuffer(ciphertext_slice, dtype=np.uint8)
        return (ct ^ ks).tobytes()
