"""Pluggable erasure codecs: parseable specs + a uniform encode/decode API.

The distributor, scrubber, fsck, availability math, fleet, and CLI all
consume stripes through :class:`ErasureCodec` -- ``encode(payload) ->
(meta, shards)``, ``decode(meta, shards)``, ``rebuild(meta, index,
shards)`` -- instead of switching on the ``RaidLevel`` enum.  A codec is
named by a :class:`CodecSpec` with the grammar::

    spec     := raid-spec | rs-spec
    raid-spec := ("raid0" | "raid1" | "raid5" | "raid6") ["@" WIDTH]
    rs-spec  := ("rs" | "aont-rs") "(" K "," M ")"

Examples: ``raid5``, ``raid6@5``, ``rs(6,3)``, ``aont-rs(4,2)``.

Families
--------

* ``raid0/1/5/6`` -- the legacy stripe layouts.  Width is chosen at
  upload time (or pinned with ``@width``); (k, m) derive from it.  The
  ``raid6`` family pins the *legacy Vandermonde-derived* RS generator so
  parity bytes -- and the shard checksums recorded next to them -- stay
  rebuildable byte-exactly across codec generations.
* ``rs(k,m)`` -- general systematic Reed-Solomon: k data + m parity
  shards over k+m providers, any m losses survivable.  Uses the Cauchy
  generator (every erasure pattern provably decodable).
* ``aont-rs(k,m)`` -- all-or-nothing transform over the chunk, then
  ``rs(k,m)`` over the package: any shard subset below k reveals
  *nothing* (not even partial plaintext), keylessly.  See
  :mod:`repro.raid.aont`.

Serialization
-------------

``StripeMeta.codec`` stores the family label exactly as the legacy chunk
table stored ``RaidLevel.value`` (``"raid5"``...), so pre-codec metadata
round-trips bidirectionally; the new families serialize as their spec
string (``"rs(6,3)"``).  :func:`stripe_meta_from_fields` is the single
deserialization choke point -- it raises :class:`UnknownCodecError`
(typed, carrying filename/virtual id) instead of a bare ``ValueError``,
so metadata loaders quarantine the one bad chunk instead of dying.
"""

from __future__ import annotations

import re
import time
from dataclasses import dataclass
from typing import Iterable

from repro.core.errors import ReconstructionError, UnknownCodecError
from repro.obs.metrics import get_metrics
from repro.raid.aont import AONT_OVERHEAD, aont_unwrap, aont_wrap
from repro.raid.parity import recover_with_parity, xor_parity
from repro.raid.striping import RaidLevel, StripeMeta, _rs_code

RAID_FAMILIES = ("raid0", "raid1", "raid5", "raid6")
RS_FAMILIES = ("rs", "aont-rs")

_RAID_RE = re.compile(r"^(raid[0156])(?:@(\d+))?$")
_RS_RE = re.compile(r"^(rs|aont-rs)\(\s*(\d+)\s*,\s*(\d+)\s*\)$")


@dataclass(frozen=True)
class CodecSpec:
    """A parsed codec name: family plus optional (k, m) or pinned width."""

    family: str
    k: int | None = None
    m: int | None = None
    width: int | None = None

    # -- construction ---------------------------------------------------------

    @classmethod
    def parse(
        cls,
        text: str,
        *,
        filename: str | None = None,
        virtual_id: int | None = None,
    ) -> "CodecSpec":
        """Parse a spec string; raises :class:`UnknownCodecError` on failure."""
        raw = str(text).strip().lower()
        match = _RAID_RE.match(raw)
        if match:
            family, width = match.group(1), match.group(2)
            spec = cls(family=family, width=int(width) if width else None)
            level = RaidLevel(family)
            if spec.width is not None and spec.width < level.min_width:
                raise UnknownCodecError(
                    f"codec {raw!r}: {family} needs width >= {level.min_width}",
                    spec=raw,
                    filename=filename,
                    virtual_id=virtual_id,
                )
            return spec
        match = _RS_RE.match(raw)
        if match:
            family, k, m = match.group(1), int(match.group(2)), int(match.group(3))
            if k < 1 or m < 0 or k + m > 256:
                raise UnknownCodecError(
                    f"codec {raw!r}: need k >= 1, m >= 0, k+m <= 256",
                    spec=raw,
                    filename=filename,
                    virtual_id=virtual_id,
                )
            if family == "aont-rs" and k < 2:
                raise UnknownCodecError(
                    f"codec {raw!r}: aont-rs needs k >= 2 (k=1 puts the whole "
                    "package on one provider, defeating the transform)",
                    spec=raw,
                    filename=filename,
                    virtual_id=virtual_id,
                )
            return cls(family=family, k=k, m=m)
        raise UnknownCodecError(
            f"unknown codec spec {raw!r} (expected raid0|raid1|raid5|raid6"
            "[@WIDTH], rs(K,M), or aont-rs(K,M))",
            spec=raw,
            filename=filename,
            virtual_id=virtual_id,
        )

    @classmethod
    def coerce(cls, value: "CodecSpec | RaidLevel | str") -> "CodecSpec":
        """Accept a spec, a RaidLevel, or a spec string."""
        if isinstance(value, CodecSpec):
            return value
        if isinstance(value, RaidLevel):
            return cls(family=value.value)
        return cls.parse(value)

    # -- introspection --------------------------------------------------------

    def canonical(self) -> str:
        if self.family in RS_FAMILIES:
            return f"{self.family}({self.k},{self.m})"
        if self.width is not None:
            return f"{self.family}@{self.width}"
        return self.family

    @property
    def raid_level(self) -> RaidLevel | None:
        if self.family in RAID_FAMILIES:
            return RaidLevel(self.family)
        return None

    @property
    def fixed_width(self) -> int | None:
        """The stripe width this spec forces, or None if chosen at upload."""
        if self.family in RS_FAMILIES:
            return self.k + self.m  # type: ignore[operator]
        return self.width

    @property
    def min_width(self) -> int:
        if self.family in RS_FAMILIES:
            return self.k + self.m  # type: ignore[operator]
        return RaidLevel(self.family).min_width

    def instantiate(self, width: int | None = None) -> "ErasureCodec":
        """Build the codec, resolving the stripe width.

        RS-family specs carry their own width (k+m); raid families take it
        from the spec's ``@width`` pin or the *width* argument.
        """
        if self.family in RS_FAMILIES:
            if width is not None and width != self.k + self.m:  # type: ignore[operator]
                raise ValueError(
                    f"{self.canonical()} fixes width at {self.k + self.m}, "  # type: ignore[operator]
                    f"got {width}"
                )
            if self.family == "rs":
                return RSStripeCodec(self.k, self.m)  # type: ignore[arg-type]
            return AontRSCodec(self.k, self.m)  # type: ignore[arg-type]
        resolved = self.width if self.width is not None else width
        if resolved is None:
            raise ValueError(f"{self.canonical()} needs a stripe width")
        if self.width is not None and width is not None and width != self.width:
            raise ValueError(
                f"{self.canonical()} pins width {self.width}, got {width}"
            )
        return RaidCodec(RaidLevel(self.family), resolved)


class ErasureCodec:
    """Uniform stripe codec API the whole stack consumes.

    Subclasses set ``label`` (the family string stored in
    ``StripeMeta.codec``), ``k``/``m``/``n``, and implement ``_encode``,
    ``decode``, and ``rebuild``.  ``encode`` wraps ``_encode`` with the
    shared metrics so every codec reports ``raid_encode_*`` uniformly.
    """

    label: str
    k: int
    m: int

    @property
    def n(self) -> int:
        return self.k + self.m

    @property
    def raid_level(self) -> RaidLevel | None:
        """The RaidLevel for raid-family codecs, None otherwise."""
        return None

    @property
    def spec(self) -> CodecSpec:
        return CodecSpec.parse(self.label)

    # -- API ------------------------------------------------------------------

    def encode(
        self, payload: "bytes | memoryview"
    ) -> tuple[StripeMeta, list[bytes]]:
        """Encode *payload* into (meta, shards); shards are independent bytes."""
        t0 = time.perf_counter()
        meta, shards = self._encode(payload)
        metrics = get_metrics()
        metrics.histogram("raid_encode_seconds", codec=self.label).observe(
            time.perf_counter() - t0
        )
        metrics.counter("raid_encode_bytes_total", codec=self.label).inc(
            meta.orig_len
        )
        return meta, shards

    def _encode(
        self, payload: "bytes | memoryview"
    ) -> tuple[StripeMeta, list[bytes]]:
        raise NotImplementedError

    def decode(self, meta: StripeMeta, shards: dict[int, bytes]) -> bytes:
        """Reassemble the payload from >= k stripe members."""
        raise NotImplementedError

    def rebuild(self, meta: StripeMeta, index: int, shards: dict[int, bytes]) -> bytes:
        """Regenerate the single shard *index* byte-exactly from survivors."""
        raise NotImplementedError

    # -- shared helpers -------------------------------------------------------

    @staticmethod
    def _split(
        payload: "bytes | memoryview", k: int
    ) -> tuple[int, int, list[bytes]]:
        """Split *payload* into k zero-padded data shards.

        Returns (orig_len, shard_size, shards).  Each byte is copied
        exactly once into its shard -- the streaming path passes slices of
        a reused window buffer, so shards must never alias the input.
        """
        view = memoryview(payload)
        orig_len = len(view)
        shard_size = -(-orig_len // k) if orig_len else 0
        shards = []
        for i in range(k):
            shard = bytes(view[i * shard_size : (i + 1) * shard_size])
            if len(shard) < shard_size:
                shard += b"\x00" * (shard_size - len(shard))
            shards.append(shard)
        view.release()
        return orig_len, shard_size, shards

    @staticmethod
    def _require(meta: StripeMeta, shards: dict[int, bytes], k: int) -> None:
        if len(shards) < k:
            raise ReconstructionError(
                f"{meta.codec} stripe needs {k} shards, only "
                f"{len(shards)} available"
            )


class RaidCodec(ErasureCodec):
    """The legacy RAID-0/1/5/6 layouts behind the codec API.

    Byte-compatible with pre-codec stripes: RAID-6 parity still comes
    from the Vandermonde-derived generator (see
    :mod:`repro.raid.reed_solomon`), RAID-5 from XOR, RAID-1 from copies.
    """

    def __init__(self, level: RaidLevel, width: int) -> None:
        self.level = level
        self.width = width
        self.k, self.m = level.shard_counts(width)
        self.label = level.value

    @property
    def raid_level(self) -> RaidLevel | None:
        return self.level

    def _encode(
        self, payload: "bytes | memoryview"
    ) -> tuple[StripeMeta, list[bytes]]:
        orig_len, shard_size, data_shards = self._split(payload, self.k)
        if self.level is RaidLevel.RAID1:
            parity = [bytes(data_shards[0]) for _ in range(self.m)]
        elif self.level is RaidLevel.RAID5:
            parity = [xor_parity(data_shards)] if shard_size else [b""]
        elif self.m > 0:
            parity = (
                _rs_code(self.k, self.m, "vandermonde").encode(data_shards)
                if shard_size
                else [b""] * self.m
            )
        else:
            parity = []
        meta = StripeMeta(
            codec=self.label,
            width=self.width,
            k=self.k,
            m=self.m,
            shard_size=shard_size,
            orig_len=orig_len,
        )
        return meta, data_shards + parity

    def decode(self, meta: StripeMeta, shards: dict[int, bytes]) -> bytes:
        if meta.orig_len == 0:
            return b""
        self._require(meta, shards, meta.k)
        if self.level is RaidLevel.RAID1:
            # Every shard is a full copy.
            payload = next(iter(shards.values()))
            return payload[: meta.orig_len]
        have_data = [i for i in range(meta.k) if i in shards]
        if len(have_data) == meta.k:
            data = [shards[i] for i in range(meta.k)]
        elif self.level is RaidLevel.RAID5:
            # With k shards present and RAID5's single parity, at most one
            # data shard can be absent.
            recovered = recover_with_parity(
                [shards[i] for i in have_data], shards[meta.k]
            )
            data = [
                shards[i] if i in shards else recovered for i in range(meta.k)
            ]
        else:
            data = _rs_code(meta.k, meta.m, "vandermonde").decode(shards)
        return b"".join(data)[: meta.orig_len]

    def rebuild(self, meta: StripeMeta, index: int, shards: dict[int, bytes]) -> bytes:
        if meta.orig_len == 0:
            return b""
        if self.level is RaidLevel.RAID0:
            raise ReconstructionError("RAID0 has no redundancy to rebuild from")
        if self.level is RaidLevel.RAID1:
            if not shards:
                raise ReconstructionError("no surviving mirror copy")
            return next(iter(shards.values()))
        if self.level is RaidLevel.RAID5:
            others = {i: s for i, s in shards.items() if i != index}
            if len(others) < meta.k:
                raise ReconstructionError(
                    f"RAID5 rebuild needs {meta.k} surviving shards, "
                    f"got {len(others)}"
                )
            blocks = [others[i] for i in sorted(others)][: meta.k]
            # XOR of any k of the k+1 stripe members reproduces the missing one.
            return xor_parity(blocks)
        others = {i: s for i, s in shards.items() if i != index}
        return _rs_code(meta.k, meta.m, "vandermonde").reconstruct_shard(
            index, others
        )


class RSStripeCodec(ErasureCodec):
    """General systematic Reed-Solomon rs(k,m) with the Cauchy generator."""

    generator = "cauchy"

    def __init__(self, k: int, m: int) -> None:
        _rs_code(k, m, self.generator)  # validate parameters eagerly
        self.k = k
        self.m = m
        self.width = k + m
        self.label = f"rs({k},{m})"

    def _code(self):
        return _rs_code(self.k, self.m, self.generator)

    def _encode(
        self, payload: "bytes | memoryview"
    ) -> tuple[StripeMeta, list[bytes]]:
        orig_len, shard_size, data_shards = self._split(payload, self.k)
        parity = (
            self._code().encode(data_shards) if shard_size else [b""] * self.m
        )
        meta = StripeMeta(
            codec=self.label,
            width=self.width,
            k=self.k,
            m=self.m,
            shard_size=shard_size,
            orig_len=orig_len,
        )
        return meta, data_shards + parity

    def decode(self, meta: StripeMeta, shards: dict[int, bytes]) -> bytes:
        if meta.orig_len == 0:
            return b""
        self._require(meta, shards, meta.k)
        data = self._code().decode(shards)
        return b"".join(data)[: meta.orig_len]

    def rebuild(self, meta: StripeMeta, index: int, shards: dict[int, bytes]) -> bytes:
        if meta.orig_len == 0:
            return b""
        others = {i: s for i, s in shards.items() if i != index}
        return self._code().reconstruct_shard(index, others)


class AontRSCodec(RSStripeCodec):
    """All-or-nothing transform, then rs(k,m) over the package.

    ``encode`` wraps the chunk with :func:`repro.raid.aont.aont_wrap`
    (adding :data:`AONT_OVERHEAD` bytes) before striping, so any shard
    subset below k reveals nothing about the chunk -- keylessly.  Shard
    *rebuild* is pure RS algebra over the package: the scrubber
    regenerates lost shards byte-exactly without ever recovering (or
    being able to recover) the plaintext.  ``meta.orig_len`` records the
    original payload length; the package length is always
    ``orig_len + AONT_OVERHEAD``.
    """

    def __init__(self, k: int, m: int) -> None:
        super().__init__(k, m)
        self.label = f"aont-rs({k},{m})"

    def _encode(
        self, payload: "bytes | memoryview"
    ) -> tuple[StripeMeta, list[bytes]]:
        orig_len = len(payload)
        package = aont_wrap(payload)
        _, shard_size, data_shards = self._split(package, self.k)
        parity = self._code().encode(data_shards)
        meta = StripeMeta(
            codec=self.label,
            width=self.width,
            k=self.k,
            m=self.m,
            shard_size=shard_size,
            orig_len=orig_len,
        )
        return meta, data_shards + parity

    def decode(self, meta: StripeMeta, shards: dict[int, bytes]) -> bytes:
        self._require(meta, shards, meta.k)
        data = self._code().decode(shards)
        package = b"".join(data)[: meta.orig_len + AONT_OVERHEAD]
        return aont_unwrap(package)

    def rebuild(self, meta: StripeMeta, index: int, shards: dict[int, bytes]) -> bytes:
        # The package is never empty (the masked key alone is 32 bytes),
        # so unlike the other codecs there is no orig_len == 0 shortcut:
        # rebuild real shard bytes even for empty payloads.
        others = {i: s for i, s in shards.items() if i != index}
        return self._code().reconstruct_shard(index, others)


def codec_for_meta(meta: StripeMeta) -> ErasureCodec:
    """The codec instance that encodes/decodes stripes with this metadata."""
    spec = CodecSpec.parse(meta.codec)
    return spec.instantiate(meta.width)


def stripe_meta_from_fields(
    fields: Iterable[object],
    *,
    filename: str | None = None,
    virtual_id: int | None = None,
) -> StripeMeta:
    """Deserialize the packed ``(codec, width, k, m, shard_size, orig_len)``.

    The single choke point for chunk-table and journal stripe specs.
    Raises :class:`UnknownCodecError` (with *filename*/*virtual_id*
    context) for unparseable codec strings so callers can quarantine the
    entry instead of aborting the whole metadata load, and plain
    ``ValueError`` for structurally broken tuples.
    """
    packed = list(fields)
    if len(packed) < 6:
        raise ValueError(
            f"stripe spec needs 6 fields (codec, width, k, m, shard_size, "
            f"orig_len), got {len(packed)}"
        )
    codec_raw = packed[0]
    spec = CodecSpec.parse(
        str(codec_raw), filename=filename, virtual_id=virtual_id
    )
    meta = StripeMeta(
        codec=str(codec_raw).strip().lower(),
        width=int(packed[1]),  # type: ignore[call-overload]
        k=int(packed[2]),  # type: ignore[call-overload]
        m=int(packed[3]),  # type: ignore[call-overload]
        shard_size=int(packed[4]),  # type: ignore[call-overload]
        orig_len=int(packed[5]),  # type: ignore[call-overload]
    )
    fixed = spec.fixed_width
    if fixed is not None and meta.width != fixed:
        raise UnknownCodecError(
            f"codec {meta.codec!r} fixes width {fixed} but stripe spec "
            f"records width {meta.width}",
            spec=meta.codec,
            filename=filename,
            virtual_id=virtual_id,
        )
    return meta
