"""All-or-nothing transform (AONT) for keyless fragmentation.

Rivest's package transform in the AONT-RS arrangement (Resch & Plank,
FAST'11): before erasure-coding a chunk, XOR it with a keystream derived
from a fresh random key, then append the key XOR-masked with a digest of
the ciphertext.  The output "package" has the all-or-nothing property:

* With the *whole* package, recovery is keyless -- hash the ciphertext,
  unmask the key, regenerate the keystream, XOR.  Nothing to store or
  escrow.
* With any *proper subset* of the package bytes, the mask digest is
  uncomputable, so the key -- and therefore every plaintext byte, even
  those whose ciphertext bytes are in hand -- is unrecoverable short of
  brute-forcing the 256-bit key.

Combined with a systematic RS(k, m) code over the package, any shard
subset below k reveals nothing about the chunk: this is what defeats a
single curious provider running mining/linkage attacks over its local
shard pool (the paper's core threat model), without key management.

Primitives are stdlib-only: SHAKE-256 as the keystream XOF, SHA-256 as
the mask digest, ``secrets`` for the key.  The transform is NOT
authenticated encryption -- integrity comes from the distributor's
per-shard checksums, and confidentiality holds only against parties
missing part of the package (any k shards reveal everything, by design).
"""

from __future__ import annotations

import hashlib
import secrets

import numpy as np

#: Bytes appended to the payload by :func:`aont_wrap` (the masked key).
AONT_OVERHEAD = 32

_KEY_BYTES = 32


def _xor(a: bytes, b: bytes) -> bytes:
    if len(a) != len(b):
        raise ValueError(f"length mismatch: {len(a)} vs {len(b)}")
    if not a:
        return b""
    av = np.frombuffer(a, dtype=np.uint8)
    bv = np.frombuffer(b, dtype=np.uint8)
    return np.bitwise_xor(av, bv).tobytes()


def _keystream(key: bytes, length: int) -> bytes:
    return hashlib.shake_256(key).digest(length)


def aont_wrap(payload: "bytes | memoryview") -> bytes:
    """Package *payload* so that all bytes are needed to recover any byte.

    Returns ``ciphertext || masked_key``, exactly ``len(payload) +
    AONT_OVERHEAD`` bytes.  Uses a fresh random key per call, so wrapping
    the same payload twice yields different packages (deliberately: equal
    chunks must not produce equal shards a provider could link).
    """
    data = bytes(payload)
    key = secrets.token_bytes(_KEY_BYTES)
    ciphertext = _xor(data, _keystream(key, len(data)))
    masked_key = _xor(key, hashlib.sha256(ciphertext).digest())
    return ciphertext + masked_key


def aont_unwrap(package: "bytes | memoryview") -> bytes:
    """Invert :func:`aont_wrap`; requires the complete package."""
    data = bytes(package)
    if len(data) < AONT_OVERHEAD:
        raise ValueError(
            f"package too short: {len(data)} < {AONT_OVERHEAD} bytes"
        )
    ciphertext, masked_key = data[:-AONT_OVERHEAD], data[-AONT_OVERHEAD:]
    key = _xor(masked_key, hashlib.sha256(ciphertext).digest())
    return _xor(ciphertext, _keystream(key, len(ciphertext)))
