"""RAID stripe layouts over cloud providers (Sections III-B and IV-A).

"While distributing chunks, the distributor applies Redundant Array of
Independent Disks (RAID) strategy...  The default choice is RAID level 5.
In case of higher assurance, RAID level 6 is used."  Following RACS, each
cloud provider plays the role of one disk; a chunk is encoded into a stripe
of ``width`` shards spread over ``width`` distinct providers.

Level semantics (k data shards, m parity shards, n = k + m = width):

* ``RAID0`` - striping only (k=width, m=0): no redundancy.
* ``RAID1`` - mirroring (k=1, m=width-1): each shard is a full copy.
* ``RAID5`` - single XOR parity (k=width-1, m=1): survives any 1 loss.
* ``RAID6`` - double Reed-Solomon parity (k=width-2, m=2): survives any 2.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from enum import Enum
from functools import lru_cache

from repro.obs.metrics import get_metrics
from repro.raid.parity import xor_parity
from repro.raid.reed_solomon import RSCode


class RaidLevel(Enum):
    RAID0 = "raid0"
    RAID1 = "raid1"
    RAID5 = "raid5"
    RAID6 = "raid6"

    @property
    def min_width(self) -> int:
        return {"raid0": 1, "raid1": 2, "raid5": 3, "raid6": 4}[self.value]

    def shard_counts(self, width: int) -> tuple[int, int]:
        """(data shards k, parity shards m) for a stripe of *width*."""
        if width < self.min_width:
            raise ValueError(
                f"{self.name} needs stripe width >= {self.min_width}, got {width}"
            )
        if self is RaidLevel.RAID0:
            return width, 0
        if self is RaidLevel.RAID1:
            return 1, width - 1
        if self is RaidLevel.RAID5:
            return width - 1, 1
        return width - 2, 2

    @property
    def fault_tolerance(self) -> str:
        """Human description of survivable simultaneous losses."""
        return {
            RaidLevel.RAID0: "none",
            RaidLevel.RAID1: "width-1 losses",
            RaidLevel.RAID5: "any 1 loss",
            RaidLevel.RAID6: "any 2 losses",
        }[self]

    def storage_overhead(self, width: int) -> float:
        """Stored bytes / payload bytes for this level at *width*."""
        k, m = self.shard_counts(width)
        return (k + m) / k


@dataclass(frozen=True)
class StripeMeta:
    """Everything needed to decode a stripe besides the shard bytes."""

    level: RaidLevel
    width: int
    k: int
    m: int
    shard_size: int
    orig_len: int

    @property
    def n(self) -> int:
        return self.k + self.m


@lru_cache(maxsize=64)
def _rs_code(k: int, m: int) -> RSCode:
    return RSCode(k=k, m=m)


def encode_stripe(
    payload: "bytes | memoryview", level: RaidLevel, width: int
) -> tuple[StripeMeta, list[bytes]]:
    """Encode *payload* into a stripe of ``width`` shards.

    Returns (metadata, shards) where shards[0..k-1] are the (zero-padded)
    data shards and shards[k..n-1] the parity shards.  *payload* may be a
    memoryview (the streaming path passes slices of a reused window
    buffer); each byte is copied exactly once, into its shard -- the
    shards are always independent ``bytes``, never views, so the caller
    may overwrite the window immediately.
    """
    t0 = time.perf_counter()
    k, m = level.shard_counts(width)
    view = memoryview(payload)
    orig_len = len(view)
    shard_size = -(-orig_len // k) if orig_len else 0
    data_shards = []
    for i in range(k):
        shard = bytes(view[i * shard_size : (i + 1) * shard_size])
        if len(shard) < shard_size:
            shard += b"\x00" * (shard_size - len(shard))
        data_shards.append(shard)
    view.release()
    if level is RaidLevel.RAID1:
        parity = [bytes(data_shards[0]) for _ in range(m)]
    elif level is RaidLevel.RAID5:
        parity = [xor_parity(data_shards)] if shard_size else [b""]
    elif m > 0:
        parity = (
            _rs_code(k, m).encode(data_shards) if shard_size else [b""] * m
        )
    else:
        parity = []
    meta = StripeMeta(
        level=level, width=width, k=k, m=m, shard_size=shard_size, orig_len=orig_len
    )
    metrics = get_metrics()
    metrics.histogram("raid_encode_seconds", level=level.value).observe(
        time.perf_counter() - t0
    )
    metrics.counter("raid_encode_bytes_total", level=level.value).inc(orig_len)
    return meta, data_shards + parity


def rotate_assignment(n: int, rotation: int) -> list[int]:
    """Shard->slot mapping that rotates parity placement stripe by stripe.

    Classic RAID-5 rotates which disk holds parity; we rotate the whole
    shard order by *rotation* so shard ``i`` goes to slot
    ``(i + rotation) % n``.  Returns ``slot_of_shard`` as a list.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return [(i + rotation) % n for i in range(n)]
