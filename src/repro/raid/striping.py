"""RAID stripe layouts over cloud providers (Sections III-B and IV-A).

"While distributing chunks, the distributor applies Redundant Array of
Independent Disks (RAID) strategy...  The default choice is RAID level 5.
In case of higher assurance, RAID level 6 is used."  Following RACS, each
cloud provider plays the role of one disk; a chunk is encoded into a stripe
of ``width`` shards spread over ``width`` distinct providers.

Level semantics (k data shards, m parity shards, n = k + m = width):

* ``RAID0`` - striping only (k=width, m=0): no redundancy.
* ``RAID1`` - mirroring (k=1, m=width-1): each shard is a full copy.
* ``RAID5`` - single XOR parity (k=width-1, m=1): survives any 1 loss.
* ``RAID6`` - double Reed-Solomon parity (k=width-2, m=2): survives any 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from functools import lru_cache

from repro.raid.reed_solomon import RSCode


class RaidLevel(Enum):
    RAID0 = "raid0"
    RAID1 = "raid1"
    RAID5 = "raid5"
    RAID6 = "raid6"

    @property
    def min_width(self) -> int:
        return {"raid0": 1, "raid1": 2, "raid5": 3, "raid6": 4}[self.value]

    def shard_counts(self, width: int) -> tuple[int, int]:
        """(data shards k, parity shards m) for a stripe of *width*."""
        if width < self.min_width:
            raise ValueError(
                f"{self.name} needs stripe width >= {self.min_width}, got {width}"
            )
        if self is RaidLevel.RAID0:
            return width, 0
        if self is RaidLevel.RAID1:
            return 1, width - 1
        if self is RaidLevel.RAID5:
            return width - 1, 1
        return width - 2, 2

    @property
    def fault_tolerance(self) -> str:
        """Human description of survivable simultaneous losses."""
        return {
            RaidLevel.RAID0: "none",
            RaidLevel.RAID1: "width-1 losses",
            RaidLevel.RAID5: "any 1 loss",
            RaidLevel.RAID6: "any 2 losses",
        }[self]

    def storage_overhead(self, width: int) -> float:
        """Stored bytes / payload bytes for this level at *width*."""
        k, m = self.shard_counts(width)
        return (k + m) / k


@dataclass(frozen=True)
class StripeMeta:
    """Everything needed to decode a stripe besides the shard bytes.

    ``codec`` is the codec family label exactly as serialized in the
    chunk table: ``"raid5"``-style strings for the legacy RAID families
    (unchanged from when this field held ``RaidLevel.value``) or a spec
    string like ``"rs(6,3)"`` / ``"aont-rs(4,2)"`` for the general
    codecs.  ``level`` is kept as a derived property for raid-family
    stripes; it is ``None`` for the new families.
    """

    codec: str
    width: int
    k: int
    m: int
    shard_size: int
    orig_len: int

    @property
    def n(self) -> int:
        return self.k + self.m

    @property
    def level(self) -> "RaidLevel | None":
        try:
            return RaidLevel(self.codec)
        except ValueError:
            return None


@lru_cache(maxsize=64)
def _rs_code(k: int, m: int, generator: str = "cauchy") -> RSCode:
    return RSCode(k=k, m=m, generator=generator)


def encode_stripe(
    payload: "bytes | memoryview", level: RaidLevel, width: int
) -> tuple[StripeMeta, list[bytes]]:
    """Encode *payload* into a stripe of ``width`` shards.

    Returns (metadata, shards) where shards[0..k-1] are the (zero-padded)
    data shards and shards[k..n-1] the parity shards.  *payload* may be a
    memoryview (the streaming path passes slices of a reused window
    buffer); each byte is copied exactly once, into its shard -- the
    shards are always independent ``bytes``, never views, so the caller
    may overwrite the window immediately.

    Compatibility wrapper over :class:`repro.raid.codecs.RaidCodec`; new
    code should instantiate a codec via :class:`repro.raid.codecs.CodecSpec`.
    """
    from repro.raid.codecs import RaidCodec

    return RaidCodec(level, width).encode(payload)


def rotate_assignment(n: int, rotation: int) -> list[int]:
    """Shard->slot mapping that rotates parity placement stripe by stripe.

    Classic RAID-5 rotates which disk holds parity; we rotate the whole
    shard order by *rotation* so shard ``i`` goes to slot
    ``(i + rotation) % n``.  Returns ``slot_of_shard`` as a list.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return [(i + rotation) % n for i in range(n)]
