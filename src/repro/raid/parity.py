"""XOR parity (RAID-5's single-failure protection).

RAID level 5 is the paper's default striping choice ("The default choice is
RAID level 5", Section IV-A).  With one parity shard, any single missing
stripe member is the XOR of the survivors.
"""

from __future__ import annotations

import numpy as np


def _as_matrix(blocks: list[bytes]) -> np.ndarray:
    if not blocks:
        raise ValueError("need at least one block")
    size = len(blocks[0])
    for i, block in enumerate(blocks):
        if len(block) != size:
            raise ValueError(
                f"block {i} has {len(block)} bytes, expected {size}"
            )
    return np.frombuffer(b"".join(blocks), dtype=np.uint8).reshape(len(blocks), size)


def xor_parity(blocks: list[bytes]) -> bytes:
    """The XOR of equally sized *blocks*."""
    matrix = _as_matrix(blocks)
    return np.bitwise_xor.reduce(matrix, axis=0).tobytes()


def recover_with_parity(survivors: list[bytes], parity: bytes) -> bytes:
    """Recover the single missing data block from survivors + parity."""
    return xor_parity(survivors + [parity])


def verify_parity(blocks: list[bytes], parity: bytes) -> bool:
    """True iff *parity* is the XOR of *blocks*."""
    return xor_parity(blocks) == parity
