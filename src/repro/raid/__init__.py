"""RAID-style erasure coding across cloud providers (RACS-inspired).

GF(256) arithmetic, XOR parity (RAID-5), systematic Reed-Solomon coding
(Cauchy generator for the general codecs, legacy Vandermonde for RAID-6),
AONT keyless fragmentation, pluggable codec specs (``raid5@4``,
``rs(6,3)``, ``aont-rs(4,2)``), stripe layout with rotating parity, and
degraded-read/rebuild machinery.
"""

from repro.raid.aont import AONT_OVERHEAD, aont_unwrap, aont_wrap
from repro.raid.codecs import (
    AontRSCodec,
    CodecSpec,
    ErasureCodec,
    RaidCodec,
    RSStripeCodec,
    codec_for_meta,
    stripe_meta_from_fields,
)
from repro.raid.gf256 import (
    gf_div,
    gf_inv,
    gf_mat_inv,
    gf_matmul,
    gf_mul,
    gf_pow,
    vandermonde,
)
from repro.raid.parity import recover_with_parity, verify_parity, xor_parity
from repro.raid.reconstruct import read_stripe, rebuild_shard
from repro.raid.reed_solomon import (
    RSCode,
    cauchy_generator_matrix,
    generator_matrix,
    vandermonde_generator_matrix,
)
from repro.raid.striping import (
    RaidLevel,
    StripeMeta,
    encode_stripe,
    rotate_assignment,
)

__all__ = [
    "AONT_OVERHEAD",
    "aont_unwrap",
    "aont_wrap",
    "AontRSCodec",
    "CodecSpec",
    "ErasureCodec",
    "RaidCodec",
    "RSStripeCodec",
    "codec_for_meta",
    "stripe_meta_from_fields",
    "gf_div",
    "gf_inv",
    "gf_mat_inv",
    "gf_matmul",
    "gf_mul",
    "gf_pow",
    "vandermonde",
    "recover_with_parity",
    "verify_parity",
    "xor_parity",
    "read_stripe",
    "rebuild_shard",
    "RSCode",
    "cauchy_generator_matrix",
    "generator_matrix",
    "vandermonde_generator_matrix",
    "RaidLevel",
    "StripeMeta",
    "encode_stripe",
    "rotate_assignment",
]
