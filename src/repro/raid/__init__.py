"""RAID-style erasure coding across cloud providers (RACS-inspired).

GF(256) arithmetic, XOR parity (RAID-5), systematic Reed-Solomon coding
(RAID-6 and general k-of-n), stripe layout with rotating parity, and
degraded-read/rebuild machinery.
"""

from repro.raid.gf256 import (
    gf_div,
    gf_inv,
    gf_mat_inv,
    gf_matmul,
    gf_mul,
    gf_pow,
    vandermonde,
)
from repro.raid.parity import recover_with_parity, verify_parity, xor_parity
from repro.raid.reconstruct import read_stripe, rebuild_shard
from repro.raid.reed_solomon import RSCode, generator_matrix
from repro.raid.striping import (
    RaidLevel,
    StripeMeta,
    encode_stripe,
    rotate_assignment,
)

__all__ = [
    "gf_div",
    "gf_inv",
    "gf_mat_inv",
    "gf_matmul",
    "gf_mul",
    "gf_pow",
    "vandermonde",
    "recover_with_parity",
    "verify_parity",
    "xor_parity",
    "read_stripe",
    "rebuild_shard",
    "RSCode",
    "generator_matrix",
    "RaidLevel",
    "StripeMeta",
    "encode_stripe",
    "rotate_assignment",
]
