"""GF(2^8) arithmetic, vectorized over numpy uint8 arrays.

The Galois field underpinning Reed-Solomon coding (RAID-6 and general
k-of-n).  Uses the AES/RS-standard primitive polynomial x^8+x^4+x^3+x^2+1
(0x11D) with log/antilog tables; multiplication of arrays is two table
gathers and an add, so shard encoding runs at numpy speed.
"""

from __future__ import annotations

import numpy as np

PRIMITIVE_POLY = 0x11D
FIELD_SIZE = 256

# Build exp/log tables for generator alpha = 2.
_EXP = np.zeros(510, dtype=np.uint8)
_LOG = np.zeros(256, dtype=np.int32)
_x = 1
for _i in range(255):
    _EXP[_i] = _x
    _LOG[_x] = _i
    _x <<= 1
    if _x & 0x100:
        _x ^= PRIMITIVE_POLY
_EXP[255:510] = _EXP[:255]


def gf_mul(a, b):
    """Element-wise product in GF(256); accepts scalars or uint8 arrays."""
    a = np.asarray(a, dtype=np.uint8)
    b = np.asarray(b, dtype=np.uint8)
    out = _EXP[_LOG[a] + _LOG[b]]
    zero = (a == 0) | (b == 0)
    return np.where(zero, np.uint8(0), out)


def gf_inv(a):
    """Element-wise multiplicative inverse; raises on zero."""
    a = np.asarray(a, dtype=np.uint8)
    if np.any(a == 0):
        raise ZeroDivisionError("zero has no inverse in GF(256)")
    return _EXP[255 - _LOG[a]]


def gf_div(a, b):
    """Element-wise a / b in GF(256); raises on division by zero."""
    a = np.asarray(a, dtype=np.uint8)
    b = np.asarray(b, dtype=np.uint8)
    if np.any(b == 0):
        raise ZeroDivisionError("division by zero in GF(256)")
    out = _EXP[(_LOG[a] - _LOG[b]) % 255]
    return np.where(a == 0, np.uint8(0), out)


def gf_pow(a: int, exponent: int) -> int:
    """Scalar a**exponent in GF(256)."""
    a = int(a) & 0xFF
    if exponent == 0:
        return 1
    if a == 0:
        return 0
    return int(_EXP[(_LOG[a] * exponent) % 255])


def gf_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Matrix product over GF(256): XOR-accumulate of gf_mul terms.

    ``a`` is (m, k), ``b`` is (k, n); loops over the small inner dimension
    so each term is a vectorized row operation.
    """
    a = np.asarray(a, dtype=np.uint8)
    b = np.asarray(b, dtype=np.uint8)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ValueError(f"incompatible shapes {a.shape} @ {b.shape}")
    out = np.zeros((a.shape[0], b.shape[1]), dtype=np.uint8)
    for l in range(a.shape[1]):
        out ^= gf_mul(a[:, l : l + 1], b[l : l + 1, :])
    return out


def gf_mat_inv(matrix: np.ndarray) -> np.ndarray:
    """Invert a square matrix over GF(256) via Gauss-Jordan elimination.

    Raises :class:`numpy.linalg.LinAlgError` if the matrix is singular.
    """
    m = np.asarray(matrix, dtype=np.uint8)
    if m.ndim != 2 or m.shape[0] != m.shape[1]:
        raise ValueError(f"matrix must be square, got shape {m.shape}")
    n = m.shape[0]
    aug = np.concatenate([m.copy(), np.eye(n, dtype=np.uint8)], axis=1)
    for col in range(n):
        pivot_rows = np.nonzero(aug[col:, col])[0]
        if pivot_rows.size == 0:
            raise np.linalg.LinAlgError("matrix is singular over GF(256)")
        pivot = col + int(pivot_rows[0])
        if pivot != col:
            aug[[col, pivot]] = aug[[pivot, col]]
        aug[col] = gf_div(aug[col], int(aug[col, col]))
        for row in range(n):
            if row != col and aug[row, col]:
                aug[row] ^= gf_mul(int(aug[row, col]), aug[col])
    return aug[:, n:].copy()


def vandermonde(rows: int, cols: int) -> np.ndarray:
    """Vandermonde matrix V[r, c] = r**c over GF(256).

    Any ``cols`` rows of it are linearly independent provided
    ``rows <= 256``, which is what makes the systematic RS generator matrix
    recoverable from any k surviving shards.
    """
    if rows > FIELD_SIZE:
        raise ValueError(f"at most {FIELD_SIZE} rows supported, got {rows}")
    out = np.zeros((rows, cols), dtype=np.uint8)
    for r in range(rows):
        for c in range(cols):
            out[r, c] = gf_pow(r, c)
    return out
