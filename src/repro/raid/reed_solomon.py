"""Systematic Reed-Solomon erasure coding over GF(256).

Provides the general k-of-n code behind RAID-6 (m = 2) and arbitrary
redundancy levels.  Two systematic generator constructions exist:

* ``cauchy`` (default) -- identity on top, a Cauchy matrix below.  Every
  square submatrix of a Cauchy matrix is invertible (its determinant has
  the closed Cauchy form with all factors nonzero), so *every* k x k row
  submatrix of the generator is invertible by a local argument: deleting
  the identity rows' columns from the remaining Cauchy rows leaves a
  Cauchy minor.  Any k of the k+m shards decode, for all valid (k, m).

* ``vandermonde`` (legacy) -- ``V @ inv(V[:k])`` where V is Vandermonde.
  This derivation is sound, but only by a non-local argument (any k rows
  of the product are the corresponding k rows of V right-multiplied by
  one fixed invertible matrix).  The classic jerasure/ISA-L pitfall is
  the "optimized" variant that skips the column reduction and stacks
  ``[I; V[k:]]`` directly -- that one has singular k-subsets well within
  k+m <= 12 (e.g. k=5, m=5), i.e. undecodable erasure patterns.  We keep
  the reduced Vandermonde form *only* because RAID-6 stripes already on
  disk recorded parity bytes (and shard checksums) produced by it; the
  ``raid6`` codec family pins ``generator="vandermonde"`` forever so the
  scrubber can rebuild legacy stripes byte-exactly.  New code (the
  ``rs``/``aont-rs`` families) uses the Cauchy construction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.raid.gf256 import gf_inv, gf_mat_inv, gf_matmul, vandermonde

#: Generator constructions by name; ``cauchy`` is the default for new codes.
GENERATORS = ("cauchy", "vandermonde")


def _check_params(k: int, m: int) -> None:
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if m < 0:
        raise ValueError(f"m must be >= 0, got {m}")
    if k + m > 256:
        raise ValueError(f"k+m must be <= 256, got {k + m}")


def cauchy_generator_matrix(k: int, m: int) -> np.ndarray:
    """Systematic generator with identity top and Cauchy parity rows.

    Parity row i, column j is ``1 / (x_i ^ y_j)`` with ``x_i = k + i`` and
    ``y_j = j`` -- two disjoint subsets of GF(256), so every denominator is
    nonzero.  Any square submatrix of a Cauchy matrix is invertible, which
    makes every k x k row submatrix of the full generator invertible.
    """
    _check_params(k, m)
    gen = np.zeros((k + m, k), dtype=np.uint8)
    gen[:k] = np.eye(k, dtype=np.uint8)
    for i in range(m):
        for j in range(k):
            gen[k + i, j] = gf_inv((k + i) ^ j)
    return gen


def vandermonde_generator_matrix(k: int, m: int) -> np.ndarray:
    """Legacy generator: Vandermonde column-reduced to a systematic form.

    Kept byte-for-byte identical to the original construction because the
    ``raid6`` codec family's on-disk parity (and recorded shard checksums)
    depend on it.  Do not use for new codec families -- see module docstring.
    """
    _check_params(k, m)
    v = vandermonde(k + m, k)
    return gf_matmul(v, gf_mat_inv(v[:k]))


def generator_matrix(k: int, m: int, generator: str = "cauchy") -> np.ndarray:
    """The (k+m) x k systematic RS generator matrix.

    The top k x k block is the identity: the first k output shards are the
    data shards verbatim (systematic), and any k of the k+m shards suffice
    to reconstruct.  *generator* selects the construction (see module
    docstring); ``cauchy`` is the default, ``vandermonde`` exists for
    legacy RAID-6 byte-compatibility.
    """
    if generator == "cauchy":
        return cauchy_generator_matrix(k, m)
    if generator == "vandermonde":
        return vandermonde_generator_matrix(k, m)
    raise ValueError(f"unknown generator {generator!r}, expected one of {GENERATORS}")


@dataclass(frozen=True)
class RSCode:
    """A (k data, m parity) systematic Reed-Solomon code."""

    k: int
    m: int
    generator: str = "cauchy"

    def __post_init__(self) -> None:
        # Validate parameters by building the matrix once.
        object.__setattr__(
            self, "_gen", generator_matrix(self.k, self.m, self.generator)
        )

    @property
    def n(self) -> int:
        return self.k + self.m

    @property
    def matrix(self) -> np.ndarray:
        return self._gen  # type: ignore[attr-defined]

    # -- encoding -------------------------------------------------------------

    def encode(self, data_shards: list[bytes]) -> list[bytes]:
        """Compute the m parity shards for *data_shards* (all equal-sized)."""
        if len(data_shards) != self.k:
            raise ValueError(f"expected {self.k} data shards, got {len(data_shards)}")
        if self.m == 0:
            return []
        size = len(data_shards[0])
        for i, shard in enumerate(data_shards):
            if len(shard) != size:
                raise ValueError(
                    f"shard {i} has {len(shard)} bytes, expected {size}"
                )
        data = np.frombuffer(b"".join(data_shards), dtype=np.uint8).reshape(
            self.k, size
        )
        parity = gf_matmul(self.matrix[self.k :], data)
        return [parity[i].tobytes() for i in range(self.m)]

    # -- decoding -------------------------------------------------------------

    def decode(self, shards: dict[int, bytes]) -> list[bytes]:
        """Reconstruct the k data shards from any k available shards.

        *shards* maps shard index (0..n-1; data shards first) to bytes.
        Raises ``ValueError`` if fewer than k shards are supplied.
        """
        present = sorted(shards)
        if any(i < 0 or i >= self.n for i in present):
            raise ValueError(f"shard indices must be in 0..{self.n - 1}")
        if len(present) < self.k:
            raise ValueError(
                f"need at least {self.k} shards to decode, got {len(present)}"
            )
        # Fast path: all data shards survived.
        if all(i in shards for i in range(self.k)):
            return [shards[i] for i in range(self.k)]
        use = present[: self.k]
        size = len(shards[use[0]])
        sub = self.matrix[use]
        inv = gf_mat_inv(sub)
        stacked = np.frombuffer(
            b"".join(shards[i] for i in use), dtype=np.uint8
        ).reshape(self.k, size)
        data = gf_matmul(inv, stacked)
        return [data[i].tobytes() for i in range(self.k)]

    def reconstruct_shard(self, index: int, shards: dict[int, bytes]) -> bytes:
        """Rebuild the single shard *index* (data or parity) from survivors."""
        data = self.decode(shards)
        if index < self.k:
            return data[index]
        stacked = np.frombuffer(b"".join(data), dtype=np.uint8).reshape(
            self.k, len(data[0])
        )
        row = gf_matmul(self.matrix[index : index + 1], stacked)
        return row[0].tobytes()
