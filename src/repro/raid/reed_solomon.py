"""Systematic Reed-Solomon erasure coding over GF(256).

Provides the general k-of-n code behind RAID-6 (m = 2) and arbitrary
redundancy levels.  The generator matrix is a Vandermonde matrix
column-reduced so its top k x k block is the identity: the first k output
shards are the data shards verbatim (systematic), and ANY k of the k+m
shards suffice to reconstruct.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.raid.gf256 import gf_mat_inv, gf_matmul, vandermonde


def generator_matrix(k: int, m: int) -> np.ndarray:
    """The (k+m) x k systematic RS generator matrix.

    Built as ``V @ inv(V[:k])`` where V is Vandermonde, which preserves the
    any-k-rows-invertible property while making the top block the identity.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if m < 0:
        raise ValueError(f"m must be >= 0, got {m}")
    if k + m > 256:
        raise ValueError(f"k+m must be <= 256, got {k + m}")
    v = vandermonde(k + m, k)
    return gf_matmul(v, gf_mat_inv(v[:k]))


@dataclass(frozen=True)
class RSCode:
    """A (k data, m parity) systematic Reed-Solomon code."""

    k: int
    m: int

    def __post_init__(self) -> None:
        # Validate parameters by building the matrix once.
        object.__setattr__(self, "_gen", generator_matrix(self.k, self.m))

    @property
    def n(self) -> int:
        return self.k + self.m

    @property
    def matrix(self) -> np.ndarray:
        return self._gen  # type: ignore[attr-defined]

    # -- encoding -------------------------------------------------------------

    def encode(self, data_shards: list[bytes]) -> list[bytes]:
        """Compute the m parity shards for *data_shards* (all equal-sized)."""
        if len(data_shards) != self.k:
            raise ValueError(f"expected {self.k} data shards, got {len(data_shards)}")
        if self.m == 0:
            return []
        size = len(data_shards[0])
        for i, shard in enumerate(data_shards):
            if len(shard) != size:
                raise ValueError(
                    f"shard {i} has {len(shard)} bytes, expected {size}"
                )
        data = np.frombuffer(b"".join(data_shards), dtype=np.uint8).reshape(
            self.k, size
        )
        parity = gf_matmul(self.matrix[self.k :], data)
        return [parity[i].tobytes() for i in range(self.m)]

    # -- decoding -------------------------------------------------------------

    def decode(self, shards: dict[int, bytes]) -> list[bytes]:
        """Reconstruct the k data shards from any k available shards.

        *shards* maps shard index (0..n-1; data shards first) to bytes.
        Raises ``ValueError`` if fewer than k shards are supplied.
        """
        present = sorted(shards)
        if any(i < 0 or i >= self.n for i in present):
            raise ValueError(f"shard indices must be in 0..{self.n - 1}")
        if len(present) < self.k:
            raise ValueError(
                f"need at least {self.k} shards to decode, got {len(present)}"
            )
        # Fast path: all data shards survived.
        if all(i in shards for i in range(self.k)):
            return [shards[i] for i in range(self.k)]
        use = present[: self.k]
        size = len(shards[use[0]])
        sub = self.matrix[use]
        inv = gf_mat_inv(sub)
        stacked = np.frombuffer(
            b"".join(shards[i] for i in use), dtype=np.uint8
        ).reshape(self.k, size)
        data = gf_matmul(inv, stacked)
        return [data[i].tobytes() for i in range(self.k)]

    def reconstruct_shard(self, index: int, shards: dict[int, bytes]) -> bytes:
        """Rebuild the single shard *index* (data or parity) from survivors."""
        data = self.decode(shards)
        if index < self.k:
            return data[index]
        stacked = np.frombuffer(b"".join(data), dtype=np.uint8).reshape(
            self.k, len(data[0])
        )
        row = gf_matmul(self.matrix[index : index + 1], stacked)
        return row[0].tobytes()
