"""Stripe decoding with degraded reads and shard rebuild.

"[RAID] guarantees successful retrieval of data in case of a cloud provider
being blocked by any unlikely event or going out of business" (Section
III-B).  :func:`read_stripe` fetches the data shards first and falls back to
parity decoding when members are missing; :func:`rebuild_shard` regenerates
a lost shard for re-replication to a replacement provider.

Decoding and rebuild are dispatched through the chunk's
:class:`~repro.raid.codecs.ErasureCodec` (resolved from
``StripeMeta.codec``), so these entry points work unchanged for the
legacy RAID families and the general ``rs``/``aont-rs`` codecs alike.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.core.errors import ProviderError, ReconstructionError
from repro.obs.metrics import get_metrics
from repro.raid.striping import StripeMeta


def _decode(meta: StripeMeta, shards: dict[int, bytes]) -> bytes:
    """Reassemble the original payload from enough shards of a stripe."""
    from repro.raid.codecs import codec_for_meta

    return codec_for_meta(meta).decode(meta, shards)


def read_stripe(
    meta: StripeMeta,
    fetch: Callable[[int], bytes],
    prefer_data: bool = True,
) -> tuple[bytes, list[int]]:
    """Fetch shards and decode; returns (payload, failed idxs).

    *fetch* maps shard index -> shard bytes and may raise
    :class:`ProviderError` for unavailable/lost/corrupt shards.  With
    ``prefer_data=True`` (the default read path) shards are fetched data
    first and the loop stops as soon as k members are in hand, so parity
    is only pulled when data shards fail.  With ``prefer_data=False`` all
    n stripe members are fetched eagerly -- parity included, even once k
    are already available -- for verify-style callers that want every
    member exercised and every failure surfaced in ``failed``.  Raises
    :class:`ReconstructionError` once too many shards have failed.
    """
    t0 = time.perf_counter()
    shards: dict[int, bytes] = {}
    failed: list[int] = []
    for index in range(meta.n):
        if prefer_data and len(shards) >= meta.k:
            break
        try:
            shards[index] = fetch(index)
        except ProviderError:
            failed.append(index)
    metrics = get_metrics()
    if failed:
        metrics.counter(
            "raid_degraded_reads_total", codec=meta.codec
        ).inc()
    if len(shards) < meta.k:
        metrics.counter(
            "raid_unrecoverable_reads_total", codec=meta.codec
        ).inc()
        raise ReconstructionError(
            f"{meta.codec} stripe unrecoverable: "
            f"{len(failed)} shard(s) failed ({failed}), "
            f"only {len(shards)}/{meta.k} required shards readable"
        )
    payload = _decode(meta, shards)
    metrics.histogram("raid_decode_seconds", codec=meta.codec).observe(
        time.perf_counter() - t0
    )
    return payload, failed


def rebuild_shard(
    meta: StripeMeta, index: int, shards: dict[int, bytes]
) -> bytes:
    """Regenerate shard *index* from the surviving *shards*."""
    if not (0 <= index < meta.n):
        raise ValueError(f"shard index {index} out of range 0..{meta.n - 1}")
    shard = _rebuild(meta, index, shards)
    get_metrics().counter(
        "raid_shards_rebuilt_total", codec=meta.codec
    ).inc()
    return shard


def _rebuild(meta: StripeMeta, index: int, shards: dict[int, bytes]) -> bytes:
    from repro.raid.codecs import codec_for_meta

    return codec_for_meta(meta).rebuild(meta, index, shards)
