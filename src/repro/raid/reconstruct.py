"""Stripe decoding with degraded reads and shard rebuild.

"[RAID] guarantees successful retrieval of data in case of a cloud provider
being blocked by any unlikely event or going out of business" (Section
III-B).  :func:`read_stripe` fetches the data shards first and falls back to
parity decoding when members are missing; :func:`rebuild_shard` regenerates
a lost shard for re-replication to a replacement provider.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.core.errors import ProviderError, ReconstructionError
from repro.obs.metrics import get_metrics
from repro.raid.parity import recover_with_parity
from repro.raid.striping import RaidLevel, StripeMeta, _rs_code


def _decode(meta: StripeMeta, shards: dict[int, bytes]) -> bytes:
    """Reassemble the original payload from enough shards of a stripe."""
    if meta.orig_len == 0:
        return b""
    have_data = [i for i in range(meta.k) if i in shards]
    if len(shards) < meta.k:
        raise ReconstructionError(
            f"{meta.level.name} stripe needs {meta.k} shards, only "
            f"{len(shards)} available"
        )
    if meta.level is RaidLevel.RAID1:
        # Every shard is a full copy.
        payload = next(iter(shards.values()))
        return payload[: meta.orig_len]
    if len(have_data) == meta.k:
        data = [shards[i] for i in range(meta.k)]
    elif meta.level is RaidLevel.RAID5:
        missing = [i for i in range(meta.k) if i not in shards]
        # With k shards present and RAID5's single parity, at most one data
        # shard can be absent.
        recovered = recover_with_parity(
            [shards[i] for i in have_data], shards[meta.k]
        )
        data = [
            shards[i] if i in shards else recovered for i in range(meta.k)
        ]
        del missing
    else:
        data = _rs_code(meta.k, meta.m).decode(shards)
    return b"".join(data)[: meta.orig_len]


def read_stripe(
    meta: StripeMeta,
    fetch: Callable[[int], bytes],
    prefer_data: bool = True,
) -> tuple[bytes, list[int]]:
    """Fetch shards (data first) and decode; returns (payload, failed idxs).

    *fetch* maps shard index -> shard bytes and may raise
    :class:`ProviderError` for unavailable/lost/corrupt shards.  Parity
    shards are only fetched when needed.  Raises
    :class:`ReconstructionError` once too many shards have failed.
    """
    t0 = time.perf_counter()
    shards: dict[int, bytes] = {}
    failed: list[int] = []
    order = list(range(meta.k)) + list(range(meta.k, meta.n))
    if not prefer_data:
        order = list(range(meta.n))
    for index in order:
        if len(shards) >= meta.k:
            break
        try:
            shards[index] = fetch(index)
        except ProviderError:
            failed.append(index)
    metrics = get_metrics()
    if failed:
        metrics.counter(
            "raid_degraded_reads_total", level=meta.level.value
        ).inc()
    if len(shards) < meta.k:
        metrics.counter(
            "raid_unrecoverable_reads_total", level=meta.level.value
        ).inc()
        raise ReconstructionError(
            f"{meta.level.name} stripe unrecoverable: "
            f"{len(failed)} shard(s) failed ({failed}), "
            f"only {len(shards)}/{meta.k} required shards readable"
        )
    payload = _decode(meta, shards)
    metrics.histogram("raid_decode_seconds", level=meta.level.value).observe(
        time.perf_counter() - t0
    )
    return payload, failed


def rebuild_shard(
    meta: StripeMeta, index: int, shards: dict[int, bytes]
) -> bytes:
    """Regenerate shard *index* from the surviving *shards*."""
    if not (0 <= index < meta.n):
        raise ValueError(f"shard index {index} out of range 0..{meta.n - 1}")
    shard = _rebuild(meta, index, shards)
    get_metrics().counter(
        "raid_shards_rebuilt_total", level=meta.level.value
    ).inc()
    return shard


def _rebuild(meta: StripeMeta, index: int, shards: dict[int, bytes]) -> bytes:
    if meta.orig_len == 0:
        return b""
    if meta.level is RaidLevel.RAID0:
        raise ReconstructionError("RAID0 has no redundancy to rebuild from")
    if meta.level is RaidLevel.RAID1:
        if not shards:
            raise ReconstructionError("no surviving mirror copy")
        return next(iter(shards.values()))
    if meta.level is RaidLevel.RAID5:
        others = {i: s for i, s in shards.items() if i != index}
        if len(others) < meta.k:
            raise ReconstructionError(
                f"RAID5 rebuild needs {meta.k} surviving shards, got {len(others)}"
            )
        blocks = [others[i] for i in sorted(others)][: meta.k]
        # XOR of any k of the k+1 stripe members reproduces the missing one.
        from repro.raid.parity import xor_parity

        return xor_parity(blocks)
    others = {i: s for i, s in shards.items() if i != index}
    return _rs_code(meta.k, meta.m).reconstruct_shard(index, others)
