"""Structured-log events: one JSON-shaped record per notable occurrence.

The third leg of ``repro.obs``: where metrics aggregate and traces time,
events *narrate* -- pool saturation, write-path failover, upload
rollback, audit records, finished traces.  Each event is a plain dict
with a name, a level and arbitrary fields; it is

* appended to a bounded in-memory ring (:attr:`EventLog.recent`), which
  is what tests assert on, and
* emitted as one JSON line through the standard :mod:`logging` logger
  ``repro.events``, which is what operators ship.

Like the other legs, the log is process-wide by default and injectable
per component (:func:`get_events` / :func:`set_events`).
"""

from __future__ import annotations

import json
import logging
import threading
from collections import deque
from typing import Callable

log = logging.getLogger("repro.events")

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
}


class EventLog:
    """Bounded ring of structured events plus a logging bridge.

    ``keep`` bounds the in-memory ring; ``emit_logging=False`` silences
    the ``repro.events`` logger (the ring still fills).  ``on_event``
    hooks every record (used by tests that want a push interface).
    """

    def __init__(self, keep: int = 1024, emit_logging: bool = True) -> None:
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.recent: deque[dict] = deque(maxlen=keep)
        self.emit_logging = emit_logging
        self.on_event: Callable[[dict], None] | None = None
        self._lock = threading.Lock()
        self._seq = 0

    def emit(self, event: str, level: str = "info", **fields: object) -> dict:
        """Record one event; returns the stored dict."""
        if level not in _LEVELS:
            raise ValueError(f"unknown level {level!r}")
        # The record is fully built *before* it becomes reachable: a
        # concurrent ``named()``/``last()`` iterating the ring must never
        # observe a half-populated dict, so the field merge and the
        # publish into ``recent`` both happen under the sequence lock.
        with self._lock:
            self._seq += 1
            record = {"seq": self._seq, "event": event, "level": level}
            record.update(fields)
            self.recent.append(record)
        if self.on_event is not None:
            self.on_event(record)
        if self.emit_logging and log.isEnabledFor(_LEVELS[level]):
            log.log(_LEVELS[level], "%s", json.dumps(record, default=str))
        return record

    # -- queries (tests / CLI) ---------------------------------------------

    def named(self, event: str) -> list[dict]:
        """Every retained record with this event name, oldest first."""
        return [r for r in list(self.recent) if r["event"] == event]

    def last(self, event: str | None = None) -> dict | None:
        if event is None:
            return self.recent[-1] if self.recent else None
        matches = self.named(event)
        return matches[-1] if matches else None

    def clear(self) -> None:
        self.recent.clear()

    def __len__(self) -> int:
        return len(self.recent)


# ---------------------------------------------------------------------------
# process-wide default
# ---------------------------------------------------------------------------

_default = EventLog()
_default_lock = threading.Lock()


def get_events() -> EventLog:
    """The process-wide event log instrumented code falls back to."""
    return _default


def set_events(events: EventLog) -> EventLog:
    """Swap the process-wide event log; returns the previous one."""
    global _default
    with _default_lock:
        previous, _default = _default, events
    return previous
