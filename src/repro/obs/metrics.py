"""Process-wide (but injectable) metrics: counters, gauges, histograms.

The paper's claims are quantitative (exposure per provider, distribution
time vs. chunk size) and the roadmap's north star is a system serving
heavy traffic -- both need always-on measurement, not one-off benches.
This module is the counting half of ``repro.obs``: a
:class:`MetricsRegistry` hands out :class:`Counter` / :class:`Gauge` /
:class:`Histogram` handles that hot paths keep and bump.

Design constraints, in order:

* **lock-cheap** -- one tiny critical section per observation (a plain
  ``threading.Lock`` around an int/float update; no global registry lock
  on the hot path);
* **allocation-free on the hot path** -- handles are resolved once (a
  dict hit keyed by name + label values) and observing allocates
  nothing; histogram buckets are fixed at creation;
* **injectable** -- every instrumented component takes an optional
  registry and falls back to the process-wide default
  (:func:`get_metrics`), so tests and benches can swap in a fresh or
  disabled registry without monkeypatching.

Exposition comes in two formats: :meth:`MetricsRegistry.render` emits
Prometheus text, :meth:`MetricsRegistry.snapshot` a JSON-ready dict.
Snapshots round-trip through :meth:`export_state` / :meth:`import_state`
(counters and histograms merge additively), which is how the CLI
accumulates one ops view across short-lived invocations.
"""

from __future__ import annotations

import threading
from bisect import bisect_right

#: Latency buckets (seconds) covering sub-millisecond crypto transforms
#: through multi-second degraded reads.  Fixed at handle creation; a
#: cumulative ``+Inf`` bucket is implicit.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def geometric_buckets(
    lo: float = 1e-4, hi: float = 60.0, ratio: float = 1.05
) -> tuple[float, ...]:
    """Geometric bucket bounds from *lo* to at least *hi*.

    Consecutive bounds grow by *ratio*, so any value inside the covered
    range sits in a bucket whose width is at most ``(ratio - 1)`` of its
    lower bound -- which caps the relative error of in-bucket quantile
    interpolation at ``ratio - 1`` (5% for the default).
    """
    if lo <= 0 or hi <= lo:
        raise ValueError(f"need 0 < lo < hi, got lo={lo} hi={hi}")
    if ratio <= 1.0:
        raise ValueError(f"ratio must be > 1, got {ratio}")
    bounds = [lo]
    while bounds[-1] < hi:
        bounds.append(bounds[-1] * ratio)
    return tuple(bounds)


#: Quantile-accurate latency bounds: ~280 geometric buckets spanning
#: 100 us to 60 s at <= 5% relative error per bucket.
LATENCY_BUCKETS: tuple[float, ...] = geometric_buckets()

_LabelKey = tuple[tuple[str, str], ...]


class Counter:
    """Monotonically increasing count (requests, bytes, events)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def _merge(self, value: float) -> None:
        with self._lock:
            self._value += value


class Gauge:
    """Point-in-time level (pool idle sockets, chunks tracked)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def _merge(self, value: float) -> None:
        # A merged snapshot's gauge is "last writer wins": levels do not
        # add across process lifetimes the way counters do.
        self.set(value)


class Histogram:
    """Fixed-bucket distribution (latencies, batch sizes).

    ``observe`` is a bisect plus two adds under one lock -- no per-sample
    allocation.  Bucket counts are stored per-bucket and cumulated only
    at render time.
    """

    __slots__ = ("_lock", "buckets", "_counts", "_sum", "_count")

    def __init__(self, buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("buckets must be non-empty and ascending")
        self._lock = threading.Lock()
        self.buckets = tuple(float(b) for b in buckets)
        self._counts = [0] * (len(self.buckets) + 1)  # last = +Inf overflow
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        index = bisect_right(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def cumulative(self) -> list[tuple[float, int]]:
        """(upper bound, cumulative count) pairs, ending at +Inf."""
        with self._lock:
            counts = list(self._counts)
        total = 0
        out: list[tuple[float, int]] = []
        for bound, count in zip(self.buckets, counts):
            total += count
            out.append((bound, total))
        out.append((float("inf"), total + counts[-1]))
        return out

    def percentile(self, q: float) -> float:
        """Estimate the *q*-th percentile (``q`` in (0, 100]).

        The straddling bucket is found on the cumulative counts, then the
        value is linearly interpolated between the bucket's bounds by rank
        position.  Samples in the ``+Inf`` overflow bucket are clamped to
        the top finite bound -- the histogram cannot say more than "at
        least this".  Returns 0.0 for an empty histogram.
        """
        if not 0.0 < q <= 100.0:
            raise ValueError(f"q must be in (0, 100], got {q}")
        with self._lock:
            counts = list(self._counts)
            total = self._count
        if total == 0:
            return 0.0
        target = q / 100.0 * total
        cum = 0
        for i, count in enumerate(counts):
            if count == 0:
                continue
            below, cum = cum, cum + count
            if cum >= target:
                if i == len(self.buckets):  # +Inf overflow
                    return self.buckets[-1]
                lo = self.buckets[i - 1] if i > 0 else 0.0
                hi = self.buckets[i]
                return lo + (hi - lo) * ((target - below) / count)
        return self.buckets[-1]

    def merge_from(self, other: "Histogram") -> None:
        """Fold *other*'s samples into this histogram.

        Both histograms must share the same bucket bounds -- this is the
        aggregation step for per-worker histograms kept lock-private
        during a run and combined at the end.
        """
        if other.buckets != self.buckets:
            raise ValueError(
                "cannot merge histograms with different buckets "
                f"({len(other.buckets)} vs {len(self.buckets)} bounds)"
            )
        self._merge(*other._state())

    def _state(self) -> tuple[list[int], float, int]:
        with self._lock:
            return list(self._counts), self._sum, self._count

    def _merge(self, counts: list[int], total: float, n: int) -> None:
        with self._lock:
            if len(counts) == len(self._counts):
                for i, c in enumerate(counts):
                    self._counts[i] += c
            self._sum += total
            self._count += n


class LatencyHistogram(Histogram):
    """Log-bucketed latency distribution with accurate tail quantiles.

    The fixed :data:`DEFAULT_BUCKETS` are fine for dashboards but too
    coarse to *gate* on: a p99 interpolated between 0.25 s and 0.5 s can
    be off by almost 2x.  This variant uses :data:`LATENCY_BUCKETS` --
    geometric bounds growing 5% per bucket from 100 us to 60 s -- so
    :meth:`percentile` is within ~5% relative error anywhere in that
    range.  Same observe cost (one bisect over a tuple, two adds under a
    lock), same ``_merge`` machinery, and it round-trips through
    :meth:`MetricsRegistry.export_state` like any other histogram.
    """

    __slots__ = ()

    def __init__(self, buckets: tuple[float, ...] = LATENCY_BUCKETS) -> None:
        super().__init__(buckets)

    def p50(self) -> float:
        return self.percentile(50.0)

    def p95(self) -> float:
        return self.percentile(95.0)

    def p99(self) -> float:
        return self.percentile(99.0)


class _Null:
    """Shared do-nothing handle a disabled registry hands out.

    Quacks like all three metric types so instrumented code needs no
    branches; every operation is one attribute lookup and a pass.
    """

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def percentile(self, q: float) -> float:
        return 0.0

    value = 0.0
    count = 0
    sum = 0.0


_NULL = _Null()


class MetricsRegistry:
    """Names + labels -> metric handles, with two exposition formats.

    ``enabled=False`` turns every handle into a shared no-op -- the knob
    the overhead benchmark uses to price the instrumentation itself, and
    an escape hatch for deployments that want zero accounting.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._counters: dict[tuple[str, _LabelKey], Counter] = {}
        self._gauges: dict[tuple[str, _LabelKey], Gauge] = {}
        self._histograms: dict[tuple[str, _LabelKey], Histogram] = {}
        self._help: dict[str, str] = {}
        self._buckets: dict[str, tuple[float, ...]] = {}

    # -- handle resolution -------------------------------------------------

    @staticmethod
    def _key(name: str, labels: dict[str, str]) -> tuple[str, _LabelKey]:
        return name, tuple(sorted((k, str(v)) for k, v in labels.items()))

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        if not self.enabled:
            return _NULL  # type: ignore[return-value]
        key = self._key(name, labels)
        # Lock-free fast path: dict reads are atomic under the GIL and
        # handles are never removed, so a hit needs no synchronization.
        # Call sites resolve handles per operation (RAID encodes a chunk
        # a thousand times per file), which makes this read the hot path.
        handle = self._counters.get(key)
        if handle is not None:
            return handle
        with self._lock:
            handle = self._counters.get(key)
            if handle is None:
                handle = self._counters[key] = Counter()
                if help:
                    self._help.setdefault(name, help)
            return handle

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        if not self.enabled:
            return _NULL  # type: ignore[return-value]
        key = self._key(name, labels)
        handle = self._gauges.get(key)
        if handle is not None:
            return handle
        with self._lock:
            handle = self._gauges.get(key)
            if handle is None:
                handle = self._gauges[key] = Gauge()
                if help:
                    self._help.setdefault(name, help)
            return handle

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] | None = None,
        **labels: str,
    ) -> Histogram:
        if not self.enabled:
            return _NULL  # type: ignore[return-value]
        key = self._key(name, labels)
        handle = self._histograms.get(key)
        if handle is not None:
            return handle
        with self._lock:
            handle = self._histograms.get(key)
            if handle is None:
                chosen = buckets or self._buckets.get(name) or DEFAULT_BUCKETS
                handle = self._histograms[key] = Histogram(chosen)
                self._buckets.setdefault(name, handle.buckets)
                if help:
                    self._help.setdefault(name, help)
            return handle

    # -- introspection -----------------------------------------------------

    def value(self, name: str, **labels: str) -> float:
        """Current value of one counter/gauge (0.0 if never touched)."""
        key = self._key(name, labels)
        with self._lock:
            handle = self._counters.get(key) or self._gauges.get(key)
        return handle.value if handle is not None else 0.0

    def sum_counter(self, name: str) -> float:
        """Total of one counter family across all label sets."""
        with self._lock:
            handles = [
                h for (n, _), h in self._counters.items() if n == name
            ]
        return sum(h.value for h in handles)

    # -- exposition --------------------------------------------------------

    @staticmethod
    def _labels_text(labels: _LabelKey) -> str:
        if not labels:
            return ""
        inner = ",".join(f'{k}="{v}"' for k, v in labels)
        return "{" + inner + "}"

    @staticmethod
    def _number(value: float) -> str:
        return str(int(value)) if float(value).is_integer() else repr(value)

    def render(self) -> str:
        """Prometheus text exposition of every live handle."""
        with self._lock:
            counters = sorted(self._counters.items())
            gauges = sorted(self._gauges.items())
            histograms = sorted(self._histograms.items())
            helps = dict(self._help)
        lines: list[str] = []

        def header(name: str, kind: str, seen: set[str]) -> None:
            if name in seen:
                return
            seen.add(name)
            if name in helps:
                lines.append(f"# HELP {name} {helps[name]}")
            lines.append(f"# TYPE {name} {kind}")

        seen: set[str] = set()
        for (name, labels), handle in counters:
            header(name, "counter", seen)
            lines.append(
                f"{name}{self._labels_text(labels)} "
                f"{self._number(handle.value)}"
            )
        for (name, labels), handle in gauges:
            header(name, "gauge", seen)
            lines.append(
                f"{name}{self._labels_text(labels)} "
                f"{self._number(handle.value)}"
            )
        for (name, labels), handle in histograms:
            header(name, "histogram", seen)
            for bound, cumulative in handle.cumulative():
                le = "+Inf" if bound == float("inf") else self._number(bound)
                bucket_labels = labels + (("le", le),)
                lines.append(
                    f"{name}_bucket{self._labels_text(bucket_labels)} "
                    f"{cumulative}"
                )
            lines.append(
                f"{name}_sum{self._labels_text(labels)} "
                f"{self._number(handle.sum)}"
            )
            lines.append(
                f"{name}_count{self._labels_text(labels)} {handle.count}"
            )
        return "\n".join(lines) + ("\n" if lines else "")

    def snapshot(self) -> dict:
        """JSON-ready view: name -> {label text -> value/summary}."""
        with self._lock:
            counters = list(self._counters.items())
            gauges = list(self._gauges.items())
            histograms = list(self._histograms.items())
        out: dict = {"counters": {}, "gauges": {}, "histograms": {}}
        for (name, labels), handle in counters:
            out["counters"].setdefault(name, {})[
                self._labels_text(labels) or "{}"
            ] = handle.value
        for (name, labels), handle in gauges:
            out["gauges"].setdefault(name, {})[
                self._labels_text(labels) or "{}"
            ] = handle.value
        for (name, labels), handle in histograms:
            summary = {"count": handle.count, "sum": handle.sum}
            if summary["count"]:
                summary["p50"] = handle.percentile(50.0)
                summary["p95"] = handle.percentile(95.0)
                summary["p99"] = handle.percentile(99.0)
            out["histograms"].setdefault(name, {})[
                self._labels_text(labels) or "{}"
            ] = summary
        return out

    # -- persistence (CLI accumulates across invocations) ------------------

    @staticmethod
    def _pack_key(name: str, labels: _LabelKey) -> str:
        return name + "|" + ",".join(f"{k}={v}" for k, v in labels)

    @staticmethod
    def _unpack_key(packed: str) -> tuple[str, dict[str, str]]:
        name, _, label_text = packed.partition("|")
        labels: dict[str, str] = {}
        if label_text:
            for pair in label_text.split(","):
                k, _, v = pair.partition("=")
                labels[k] = v
        return name, labels

    def export_state(self) -> dict:
        """Serializable full state (exact, unlike :meth:`snapshot`)."""
        with self._lock:
            counters = list(self._counters.items())
            gauges = list(self._gauges.items())
            histograms = list(self._histograms.items())
        return {
            "counters": {
                self._pack_key(n, ls): h.value for (n, ls), h in counters
            },
            "gauges": {
                self._pack_key(n, ls): h.value for (n, ls), h in gauges
            },
            "histograms": {
                self._pack_key(n, ls): {
                    "buckets": list(h.buckets),
                    "counts": h._state()[0],
                    "sum": h._state()[1],
                    "count": h._state()[2],
                }
                for (n, ls), h in histograms
            },
        }

    def import_state(self, state: dict) -> None:
        """Merge an exported state in (counters/histograms add up)."""
        for packed, value in state.get("counters", {}).items():
            name, labels = self._unpack_key(packed)
            self.counter(name, **labels)._merge(float(value))
        for packed, value in state.get("gauges", {}).items():
            name, labels = self._unpack_key(packed)
            self.gauge(name, **labels)._merge(float(value))
        for packed, payload in state.get("histograms", {}).items():
            name, labels = self._unpack_key(packed)
            handle = self.histogram(
                name, buckets=tuple(payload["buckets"]), **labels
            )
            handle._merge(
                list(payload["counts"]),
                float(payload["sum"]),
                int(payload["count"]),
            )


# ---------------------------------------------------------------------------
# process-wide default
# ---------------------------------------------------------------------------

_default = MetricsRegistry()
_default_lock = threading.Lock()


def get_metrics() -> MetricsRegistry:
    """The process-wide registry instrumented code falls back to."""
    return _default


def set_metrics(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry; returns the previous one.

    Components resolve the default lazily at construction, so swap
    *before* building the distributor/providers under measurement.
    """
    global _default
    with _default_lock:
        previous, _default = _default, registry
    return previous
