"""Per-request causal timing: spans, traces, and wire propagation.

Metrics answer "how much, how often"; a trace answers "where did *this*
request's time go".  A :class:`Tracer` keeps a thread-local active span;
:meth:`Tracer.trace` opens a root span (one client request), and
:meth:`Tracer.span` nests children under whatever is active.  When no
trace is active, ``span()`` returns one shared no-op context manager --
the instrumented data path costs a thread-local read and nothing else,
which is what lets tracing stay compiled-in on the hot path.

Traces cross the wire: :meth:`Tracer.wire_context` packs the active
``trace_id:span_id`` for the TRACED frame extension
(:mod:`repro.net.protocol`), a :class:`~repro.net.server.ChunkServer`
opens its server-side spans under that parent via
:meth:`Tracer.serve_remote`, and :meth:`Tracer.attach_remote` grafts the
records it ships back into the client's tree -- so ``repro trace``
prints one joined client->server view of a request.

Finished root traces land in :attr:`Tracer.finished` (a bounded deque)
and are exported as one structured-log event each, which is how tests
assert on span taxonomy without parsing rendered trees.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field


class _IdSource:
    """Process-unique span/trace ids without per-call randomness."""

    def __init__(self, prefix: str) -> None:
        self._prefix = prefix
        self._lock = threading.Lock()
        self._next = 0

    def next_id(self) -> str:
        with self._lock:
            self._next += 1
            return f"{self._prefix}{self._next:08x}"


_tracer_seq = _IdSource("")


def _tracer_ordinal() -> str:
    """A process-unique ordinal so two tracers never mint the same id.

    A client tracer and a (different-process or just different-instance)
    server tracer both contribute span ids to one trace; distinct prefixes
    keep the grafted tree acyclic without coordination.
    """
    return _tracer_seq.next_id().lstrip("0") or "0"


@dataclass
class Span:
    """One timed operation inside a trace.

    ``remote=True`` marks spans imported from a chunk server; their
    ``start_offset`` is relative to the *server's* receipt of the request
    (clocks are not assumed synchronized), so renders show durations and
    structure rather than absolute alignment.
    """

    name: str
    trace_id: str
    span_id: str
    parent_id: str | None
    start_offset: float = 0.0
    duration: float = 0.0
    tags: dict[str, str] = field(default_factory=dict)
    status: str = "ok"
    remote: bool = False

    def to_record(self) -> dict:
        """JSON-ready form (wire export + structured-log export)."""
        record = {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_offset": round(self.start_offset, 6),
            "duration": round(self.duration, 6),
            "status": self.status,
        }
        if self.tags:
            record["tags"] = dict(self.tags)
        if self.remote:
            record["remote"] = True
        return record

    @classmethod
    def from_record(cls, trace_id: str, record: dict) -> "Span":
        return cls(
            name=str(record.get("name", "?")),
            trace_id=trace_id,
            span_id=str(record.get("span_id", "?")),
            parent_id=record.get("parent_id"),
            start_offset=float(record.get("start_offset", 0.0)),
            duration=float(record.get("duration", 0.0)),
            tags={
                str(k): str(v)
                for k, v in (record.get("tags") or {}).items()
            },
            status=str(record.get("status", "ok")),
            remote=bool(record.get("remote", False)),
        )


@dataclass
class Trace:
    """One root span plus everything that happened beneath it.

    ``remote=True`` marks a server-side trace fragment assembled while
    answering a TRACED request; it is shipped back to the client rather
    than exported locally.
    """

    trace_id: str
    root_name: str
    spans: list[Span] = field(default_factory=list)
    started: float = 0.0
    remote: bool = False

    @property
    def root(self) -> Span | None:
        for span in self.spans:
            if span.parent_id is None:
                return span
        return None

    def span_names(self) -> list[str]:
        return [span.name for span in self.spans]

    def render_tree(self) -> str:
        """ASCII span tree, children indented under their parents."""
        by_id = {span.span_id: span for span in self.spans}
        children: dict[str | None, list[Span]] = {}
        for span in self.spans:
            parent = span.parent_id if span.parent_id in by_id else None
            children.setdefault(parent, []).append(span)
        for kids in children.values():
            kids.sort(key=lambda s: (s.remote, s.start_offset))
        lines: list[str] = [f"trace {self.trace_id} ({len(self.spans)} spans)"]

        def walk(span: Span, prefix: str, last: bool) -> None:
            joint = "└─ " if last else "├─ "
            suffix = " [server]" if span.remote else ""
            mark = "" if span.status == "ok" else f" !{span.status}"
            tags = (
                " " + " ".join(f"{k}={v}" for k, v in sorted(span.tags.items()))
                if span.tags
                else ""
            )
            lines.append(
                f"{prefix}{joint}{span.name} "
                f"({span.duration * 1000:.2f} ms){tags}{mark}{suffix}"
            )
            child_prefix = prefix + ("   " if last else "│  ")
            kids = children.get(span.span_id, [])
            for i, kid in enumerate(kids):
                walk(kid, child_prefix, i == len(kids) - 1)

        roots = children.get(None, [])
        for i, root in enumerate(roots):
            walk(root, "", i == len(roots) - 1)
        return "\n".join(lines)


class _ActiveSpan:
    """Context manager recording one span into its trace on exit."""

    __slots__ = (
        "_tracer", "_trace", "span", "_root", "_t0",
        "_restore", "_restore_trace",
    )

    def __init__(
        self, tracer: "Tracer", trace: Trace, span: Span, root: bool
    ) -> None:
        self._tracer = tracer
        self._trace = trace
        self.span = span
        self._root = root
        self._t0 = 0.0
        self._restore: Span | None = None
        self._restore_trace: Trace | None = None

    def tag(self, **tags: object) -> None:
        for key, value in tags.items():
            self.span.tags[key] = str(value)

    def __enter__(self) -> "_ActiveSpan":
        local = self._tracer._local()
        self._restore = local.span
        self._restore_trace = local.trace
        local.span = self.span
        local.trace = self._trace
        self._t0 = time.perf_counter()
        self.span.start_offset = self._t0 - self._trace.started
        return self

    def __exit__(self, exc_type, exc, _tb) -> None:
        self.span.duration = time.perf_counter() - self._t0
        if exc_type is not None and self.span.status == "ok":
            self.span.status = exc_type.__name__
        self._trace.spans.append(self.span)
        local = self._tracer._local()
        local.span = self._restore
        local.trace = self._restore_trace
        if self._root:
            self._tracer._finish(self._trace)


class _AdoptedContext:
    """Make a captured (trace, span) active on the current thread."""

    __slots__ = ("_tracer", "_trace", "_span", "_restore", "_restore_trace")

    def __init__(self, tracer: "Tracer", trace: Trace, span: Span) -> None:
        self._tracer = tracer
        self._trace = trace
        self._span = span
        self._restore: Span | None = None
        self._restore_trace: Trace | None = None

    def __enter__(self) -> "_AdoptedContext":
        local = self._tracer._local()
        self._restore = local.span
        self._restore_trace = local.trace
        local.span = self._span
        local.trace = self._trace
        return self

    def __exit__(self, *exc) -> None:
        local = self._tracer._local()
        local.span = self._restore
        local.trace = self._restore_trace


class _NoopSpan:
    """Shared, allocation-free stand-in when no trace is active."""

    __slots__ = ()
    span = None

    def tag(self, **tags: object) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


_NOOP = _NoopSpan()


class Tracer:
    """Thread-local span stacks over a bounded finished-trace buffer.

    ``on_finish`` (if set) receives each completed client :class:`Trace`;
    the default export path additionally emits one ``trace``
    structured-log event via :mod:`repro.obs.events` so tests and log
    shippers see span records without holding a tracer reference.
    """

    def __init__(self, keep: int = 64, export_events: bool = True) -> None:
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.finished: deque[Trace] = deque(maxlen=keep)
        self.export_events = export_events
        self.on_finish = None
        ordinal = _tracer_ordinal()
        self._ids = _IdSource(f"s{ordinal}.")
        self._trace_ids = _IdSource(f"t{ordinal}.")
        self._tls = threading.local()
        self._remote_done: dict[str, list[Trace]] = {}
        self._lock = threading.Lock()

    def _local(self):
        local = self._tls
        if not hasattr(local, "span"):
            local.span = None
            local.trace = None
        return local

    # -- span API ----------------------------------------------------------

    def trace(self, name: str, **tags: object) -> _ActiveSpan:
        """Open a root span (a fresh trace) on this thread."""
        trace = Trace(
            trace_id=self._trace_ids.next_id(),
            root_name=name,
            started=time.perf_counter(),
        )
        span = Span(
            name=name,
            trace_id=trace.trace_id,
            span_id=self._ids.next_id(),
            parent_id=None,
            tags={k: str(v) for k, v in tags.items()},
        )
        return _ActiveSpan(self, trace, span, root=True)

    def span(self, name: str, **tags: object):
        """A child span of whatever is active; no-op outside a trace."""
        local = self._local()
        parent: Span | None = local.span
        if parent is None or local.trace is None:
            return _NOOP
        span = Span(
            name=name,
            trace_id=parent.trace_id,
            span_id=self._ids.next_id(),
            parent_id=parent.span_id,
            tags={k: str(v) for k, v in tags.items()},
        )
        return _ActiveSpan(self, local.trace, span, root=False)

    def active(self) -> bool:
        return self._local().span is not None

    # -- cross-thread propagation ------------------------------------------

    def capture(self):
        """Snapshot the active (trace, span) for another thread.

        The span stack is thread-local, so work fanned out to a pool
        vanishes from the trace unless the dispatching thread captures
        its context and each worker resumes under it.  Returns ``None``
        outside a trace; hand the result to :meth:`resume`.
        """
        local = self._local()
        if local.span is None or local.trace is None:
            return None
        return (local.trace, local.span)

    def adopt(self, captured):
        """Install a :meth:`capture` context as this thread's active span.

        No new span is opened -- spans the adopting thread creates (and
        wire contexts it exports) parent under the captured span, exactly
        as if they ran on the dispatching thread.  Safe concurrently:
        span lists append under the GIL, and dispatchers join their
        workers before closing the captured parent.  No-op when
        ``captured`` is ``None`` (the dispatcher ran untraced).
        """
        if captured is None:
            return _NOOP
        trace, parent = captured
        return _AdoptedContext(self, trace, parent)

    # -- wire propagation (client side) ------------------------------------

    def wire_context(self) -> str | None:
        """``trace_id:span_id`` of the active span, or ``None``.

        This is the string the TRACED frame extension carries; the
        receiving chunk server parents its spans under ``span_id``.
        """
        span = self._local().span
        if span is None:
            return None
        return f"{span.trace_id}:{span.span_id}"

    def attach_remote(self, records: list[dict]) -> None:
        """Graft span records a server shipped back into the active trace.

        Records whose ``parent_id`` matches no local or shipped span are
        re-parented under the active span, so a partial export still
        renders attached instead of orphaned.  Shipped span ids come from
        the *server's* id source and may collide with local ones, so they
        are remapped onto fresh local ids before grafting.
        """
        local = self._local()
        if local.trace is None or not records:
            return
        active: Span | None = local.span
        remap = {str(r.get("span_id")): self._ids.next_id() for r in records}
        known = {s.span_id for s in local.trace.spans}
        if active is not None:
            known.add(active.span_id)
        for record in records:
            span = Span.from_record(local.trace.trace_id, record)
            span.remote = True
            span.span_id = remap[span.span_id]
            if span.parent_id in remap:
                span.parent_id = remap[span.parent_id]
            elif span.parent_id not in known:
                span.parent_id = (
                    active.span_id if active is not None else None
                )
            local.trace.spans.append(span)

    # -- wire propagation (server side) ------------------------------------

    def serve_remote(self, context: str, name: str, **tags: object):
        """Open a span under a *remote* parent (server side of TRACED).

        ``context`` is the client's ``wire_context()`` string.  The
        resulting trace fragment is queued for :meth:`drain_remote`
        instead of :attr:`finished` -- the trace belongs to the client.
        """
        trace_id, _, parent_id = context.partition(":")
        trace = Trace(
            trace_id=trace_id or "remote",
            root_name=name,
            started=time.perf_counter(),
            remote=True,
        )
        span = Span(
            name=name,
            trace_id=trace.trace_id,
            span_id=self._ids.next_id(),
            parent_id=parent_id or None,
            tags={k: str(v) for k, v in tags.items()},
        )
        return _ActiveSpan(self, trace, span, root=True)

    def drain_remote(self, trace_id: str) -> list[dict]:
        """Pop one finished server-side trace fragment as wire records."""
        with self._lock:
            queue = self._remote_done.get(trace_id)
            if not queue:
                return []
            trace = queue.pop(0)
            if not queue:
                del self._remote_done[trace_id]
        return [span.to_record() for span in trace.spans]

    # -- completion --------------------------------------------------------

    def _finish(self, trace: Trace) -> None:
        if trace.remote:
            with self._lock:
                self._remote_done.setdefault(trace.trace_id, []).append(trace)
            return
        self.finished.append(trace)
        if self.on_finish is not None:
            self.on_finish(trace)
        if self.export_events:
            from repro.obs.events import get_events

            get_events().emit(
                "trace",
                trace_id=trace.trace_id,
                root=trace.root_name,
                spans=[span.to_record() for span in trace.spans],
            )

    def last_trace(self) -> Trace | None:
        return self.finished[-1] if self.finished else None


# ---------------------------------------------------------------------------
# process-wide default
# ---------------------------------------------------------------------------

_default = Tracer()
_default_lock = threading.Lock()


def get_tracer() -> Tracer:
    """The process-wide tracer instrumented code falls back to."""
    return _default


def set_tracer(tracer: Tracer) -> Tracer:
    """Swap the process-wide tracer; returns the previous one."""
    global _default
    with _default_lock:
        previous, _default = _default, tracer
    return previous
