"""``repro.obs``: end-to-end telemetry for the distributor stack.

Three legs, each process-wide by default and injectable per component:

* :mod:`repro.obs.metrics` -- counters, gauges and fixed-bucket latency
  histograms (:class:`MetricsRegistry`), with Prometheus-text and JSON
  exposition plus mergeable snapshots for the CLI ops surface;
* :mod:`repro.obs.trace` -- :class:`Span`/:class:`Tracer` causal timing
  per request, carried across the wire by the TRACED frame extension so
  chunk-server spans join the client's trace;
* :mod:`repro.obs.events` -- structured-log events (pool saturation,
  failover, rollback, audit, finished traces).

The instrumented layers are: distributor phases (plan/transfer/commit,
fetch/assemble), RAID encode/decode, cipher and misleading-byte
transforms, the chunk cache, the socket transport (per-opcode counts,
wire bytes, pool waits, retries, circuit-breaker flips), and the
health/scrub loop.  ``docs/observability.md`` catalogues every metric
and span name.
"""

from repro.obs.events import EventLog, get_events, set_events
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_metrics,
    set_metrics,
)
from repro.obs.trace import Span, Trace, Tracer, get_tracer, set_tracer

__all__ = [
    "Counter",
    "EventLog",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Trace",
    "Tracer",
    "get_events",
    "get_metrics",
    "get_tracer",
    "set_events",
    "set_metrics",
    "set_tracer",
]
