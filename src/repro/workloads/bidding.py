"""The Hercules bidding workload (Table IV and Section VII-A).

Contains the paper's Table IV verbatim, the ground-truth pricing model the
paper's insider recovers (``bid ~ 1.4*Materials + 1.5*Production +
3.1*Maintenance + 5436``), and a parametric generator drawing more bidding
records from that model for the sample-size ablations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.rng import SeedLike, derive_rng
from repro.workloads.serialization import encode_records

#: Table IV of the paper, verbatim: (Year, Company, Materials, Production,
#: Maintenance, Bid).
TABLE_IV: list[tuple[int, str, int, int, int, int]] = [
    (2001, "Greece", 1300, 600, 3200, 18111),
    (2002, "Rome", 1400, 600, 3300, 18627),
    (2002, "Greece", 1900, 800, 3200, 19337),
    (2004, "Rome", 1700, 900, 3500, 20078),
    (2005, "Greece", 1700, 700, 3100, 18383),
    (2006, "Rome", 1800, 800, 3300, 19600),
    (2009, "Greece", 1500, 1000, 3600, 20320),
    (2010, "Rome", 1700, 900, 3700, 20667),
    (2010, "Greece", 1800, 700, 3500, 19937),
    (2011, "Rome", 2100, 800, 3700, 21135),
    (2011, "Greece", 1900, 1100, 3600, 20945),
    (2011, "Rome", 2000, 1000, 3700, 21199),
]

HEADER = ("Year", "Company", "Materials", "Production", "Maintenance", "Bid")

#: The pricing model the paper's insider extracts from the full table:
#: coefficients for (Materials, Production, Maintenance) and the intercept.
TRUE_COEFFICIENTS = np.array([1.4, 1.5, 3.1])
TRUE_INTERCEPT = 5436.0

FEATURE_NAMES = ["Materials", "Production", "Maintenance"]

PARSERS = (int, str, int, int, int, int)


@dataclass(frozen=True)
class BiddingDataset:
    """Bidding rows plus their regression design (features, target)."""

    rows: list[tuple]

    def features(self) -> np.ndarray:
        """(n, 3) matrix of (Materials, Production, Maintenance)."""
        return np.array([[r[2], r[3], r[4]] for r in self.rows], dtype=np.float64)

    def bids(self) -> np.ndarray:
        return np.array([r[5] for r in self.rows], dtype=np.float64)

    def to_bytes(self, header: bool = False) -> bytes:
        """Serialize as the CSV file Hercules uploads to the cloud."""
        return encode_records(self.rows, header=HEADER if header else None)

    def split_equally(self, parts: int) -> list["BiddingDataset"]:
        """The paper's fragmentation: consecutive equal row blocks.

        "if Hercules distributes his data equally among 3 providers ...
        Hera gets the first four rows of the above table."
        """
        if parts < 1:
            raise ValueError(f"parts must be >= 1, got {parts}")
        size = -(-len(self.rows) // parts)
        return [
            BiddingDataset(rows=self.rows[i * size : (i + 1) * size])
            for i in range(parts)
            if self.rows[i * size : (i + 1) * size]
        ]

    def __len__(self) -> int:
        return len(self.rows)


def table_iv() -> BiddingDataset:
    """The paper's 12-row Hercules bidding history."""
    return BiddingDataset(rows=list(TABLE_IV))


def generate_bidding_history(
    n: int,
    seed: SeedLike = None,
    noise_std: float = 120.0,
    start_year: int = 2001,
) -> BiddingDataset:
    """Draw *n* bidding records from the paper's ground-truth model.

    Cost features are sampled in the ranges Table IV spans; the bid is the
    true linear model plus Gaussian noise (``noise_std`` ~ the residual
    scale of Table IV itself).
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    rng = derive_rng(seed)
    materials = rng.integers(12, 22, size=n) * 100
    production = rng.integers(5, 12, size=n) * 100
    maintenance = rng.integers(30, 38, size=n) * 100
    bid = (
        TRUE_COEFFICIENTS[0] * materials
        + TRUE_COEFFICIENTS[1] * production
        + TRUE_COEFFICIENTS[2] * maintenance
        + TRUE_INTERCEPT
        + rng.normal(0.0, noise_std, size=n)
    )
    companies = np.where(rng.random(n) < 0.5, "Greece", "Rome")
    years = start_year + rng.integers(0, 12, size=n)
    rows = [
        (
            int(years[i]),
            str(companies[i]),
            int(materials[i]),
            int(production[i]),
            int(maintenance[i]),
            int(round(bid[i])),
        )
        for i in range(n)
    ]
    return BiddingDataset(rows=rows)


def rows_from_salvaged(salvaged: list[tuple]) -> BiddingDataset:
    """Wrap attacker-salvaged rows back into a dataset for mining."""
    return BiddingDataset(rows=list(salvaged))
