"""Market-basket workload for the association-rule attack (Section II-B).

Generates transaction logs with *planted* association rules (e.g. clients
who buy {bread, butter} almost always buy {milk}), so rule recall against
the planted ground truth measures how much of the association structure an
attacker's fragment still reveals.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.rng import SeedLike, derive_rng
from repro.workloads.serialization import encode_records

#: Filler items never referenced by a planted rule, so random baskets do
#: not dilute rule confidences.
NEUTRAL_ITEMS = [
    "eggs", "tea", "rice", "beans", "soap", "paper", "towels", "batteries",
    "candles", "matches", "foil", "bags",
]

#: Planted rules: (antecedent items, consequent item, probability the
#: consequent joins when the antecedent is present).
PLANTED_RULES: list[tuple[tuple[str, ...], str, float]] = [
    (("bread", "butter"), "milk", 0.9),
    (("coffee",), "sugar", 0.85),
    (("chips",), "salsa", 0.9),
    (("pasta",), "sauce", 0.85),
    (("beer",), "peanuts", 0.9),
]

CATALOG = sorted(
    set(NEUTRAL_ITEMS)
    | {item for antecedent, _, _ in PLANTED_RULES for item in antecedent}
    | {consequent for _, consequent, _ in PLANTED_RULES}
)

PARSERS = (int, str)


@dataclass(frozen=True)
class TransactionLog:
    """A list of basket sets plus flat (txn_id, item) rows for upload."""

    baskets: list[set]

    def __len__(self) -> int:
        return len(self.baskets)

    def rows(self) -> list[tuple]:
        return [
            (txn_id, item)
            for txn_id, basket in enumerate(self.baskets)
            for item in sorted(basket)
        ]

    def to_bytes(self) -> bytes:
        return encode_records(self.rows())

    def split_equally(self, parts: int) -> list["TransactionLog"]:
        if parts < 1:
            raise ValueError(f"parts must be >= 1, got {parts}")
        size = -(-len(self.baskets) // parts)
        return [
            TransactionLog(baskets=self.baskets[i * size : (i + 1) * size])
            for i in range(parts)
            if self.baskets[i * size : (i + 1) * size]
        ]


def baskets_from_rows(rows: list[tuple]) -> TransactionLog:
    """Regroup salvaged (txn_id, item) rows into baskets.

    Attacker-side: rows lost at fragment boundaries simply shrink or drop
    baskets, mirroring real mining over incomplete logs.
    """
    grouped: dict[int, set] = {}
    for txn_id, item in rows:
        grouped.setdefault(int(txn_id), set()).add(item)
    return TransactionLog(baskets=[grouped[k] for k in sorted(grouped)])


def generate_transactions(
    n: int,
    seed: SeedLike = None,
    base_items: float = 2.5,
    rule_prob: float = 0.12,
) -> TransactionLog:
    """Generate *n* baskets containing the planted association structure.

    Each basket gets ``1 + Poisson(base_items)`` neutral filler items;
    independently, each planted rule's antecedent joins the basket with
    probability *rule_prob*, and its consequent follows with the rule's
    own probability.  Filler items are disjoint from rule items so the
    planted confidences survive in the aggregate log.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    rng = derive_rng(seed)
    baskets: list[set] = []
    for _ in range(n):
        basket: set = set()
        n_filler = 1 + rng.poisson(base_items)
        basket.update(
            NEUTRAL_ITEMS[int(i)]
            for i in rng.integers(0, len(NEUTRAL_ITEMS), size=n_filler)
        )
        for antecedent, consequent, prob in PLANTED_RULES:
            if rng.random() < rule_prob:
                basket.update(antecedent)
                if rng.random() < prob:
                    basket.add(consequent)
        baskets.append(basket)
    return TransactionLog(baskets=baskets)


def planted_rule_pairs() -> list[tuple[frozenset, frozenset]]:
    """The ground-truth (antecedent, consequent) pairs for recall scoring."""
    return [
        (frozenset(antecedent), frozenset([consequent]))
        for antecedent, consequent, _ in PLANTED_RULES
    ]
