"""Tabular person-records workload for the prediction attack.

Section II-A: leaked mining results can reveal "the financial condition of
a customer, the likelihood of an individual getting a terminal illness".
This generator produces customer records whose sensitive label (high
illness risk) is a noisy function of observable features, so a naive-Bayes
attacker's accuracy quantifies the leak.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.rng import SeedLike, derive_rng
from repro.workloads.serialization import encode_records

HEADER = ("id", "age", "income", "visits", "cholesterol", "risk")
PARSERS = (int, int, int, int, float, int)


@dataclass(frozen=True)
class RecordSet:
    rows: list[tuple]

    def features(self) -> np.ndarray:
        """(n, 4) matrix: age, income, clinic visits, cholesterol."""
        return np.array(
            [[r[1], r[2], r[3], r[4]] for r in self.rows], dtype=np.float64
        )

    def labels(self) -> np.ndarray:
        return np.array([r[5] for r in self.rows], dtype=np.int64)

    def to_bytes(self) -> bytes:
        return encode_records(self.rows)

    def split_equally(self, parts: int) -> list["RecordSet"]:
        if parts < 1:
            raise ValueError(f"parts must be >= 1, got {parts}")
        size = -(-len(self.rows) // parts)
        return [
            RecordSet(rows=self.rows[i * size : (i + 1) * size])
            for i in range(parts)
            if self.rows[i * size : (i + 1) * size]
        ]

    def __len__(self) -> int:
        return len(self.rows)


def generate_records(n: int, seed: SeedLike = None) -> RecordSet:
    """Customer records with a learnable illness-risk label.

    Risk rises with age, cholesterol and clinic visits; income is mostly a
    distractor.  Label noise keeps the Bayes-optimal accuracy below 1.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    rng = derive_rng(seed)
    age = rng.integers(18, 90, size=n)
    income = rng.integers(10, 200, size=n) * 1000
    visits = rng.poisson(2 + (age - 18) / 25.0)
    cholesterol = rng.normal(180 + (age - 18) * 0.8, 25, size=n)
    logit = (
        0.06 * (age - 50)
        + 0.02 * (cholesterol - 200)
        + 0.25 * (visits - 3)
        - 0.000002 * (income - 100_000)
    )
    prob = 1.0 / (1.0 + np.exp(-logit))
    risk = (rng.random(n) < prob).astype(np.int64)
    rows = [
        (
            i,
            int(age[i]),
            int(income[i]),
            int(visits[i]),
            round(float(cholesterol[i]), 1),
            int(risk[i]),
        )
        for i in range(n)
    ]
    return RecordSet(rows=rows)
