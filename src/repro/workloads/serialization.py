"""Record codec: how tabular client data becomes file bytes.

Clients store tabular data (bidding histories, GPS logs, transactions) as
newline-delimited CSV.  The attacker's view is raw shard bytes; chunking
and striping cut the byte stream mid-row, so the adversary toolkit uses
:func:`salvage_records` to pull out the complete, parseable rows a
fragment contains -- precisely the "reduced number of samples" effect the
paper's Section VII-A describes.
"""

from __future__ import annotations

from typing import Callable, Sequence

FIELD_SEP = ","
ROW_SEP = "\n"


def encode_records(
    rows: Sequence[Sequence[object]], header: Sequence[str] | None = None
) -> bytes:
    """Encode *rows* (optionally with a header line) to CSV bytes."""
    lines: list[str] = []
    if header is not None:
        lines.append(FIELD_SEP.join(str(h) for h in header))
    for row in rows:
        fields = [str(value) for value in row]
        for f in fields:
            if FIELD_SEP in f or ROW_SEP in f:
                raise ValueError(f"field {f!r} contains a separator")
        lines.append(FIELD_SEP.join(fields))
    return (ROW_SEP.join(lines) + ROW_SEP).encode("utf-8")


def decode_records(
    data: bytes,
    parsers: Sequence[Callable[[str], object]],
    has_header: bool = False,
) -> list[tuple]:
    """Strict decode of a complete file (raises on any malformed row)."""
    text = data.decode("utf-8")
    lines = [line for line in text.split(ROW_SEP) if line]
    if has_header:
        lines = lines[1:]
    out = []
    for line in lines:
        fields = line.split(FIELD_SEP)
        if len(fields) != len(parsers):
            raise ValueError(
                f"row has {len(fields)} fields, expected {len(parsers)}: {line!r}"
            )
        out.append(tuple(parse(f) for parse, f in zip(parsers, fields)))
    return out


def salvage_records(
    fragment: bytes,
    parsers: Sequence[Callable[[str], object]],
) -> list[tuple]:
    """Best-effort extraction of complete rows from a byte fragment.

    This is the adversary's parser: partial rows at the fragment edges,
    rows damaged by misleading bytes, parity-shard garbage and header
    lines are silently dropped; only rows with the right arity whose every
    field parses survive.
    """
    try:
        text = fragment.decode("utf-8", errors="replace")
    except Exception:  # pragma: no cover - decode with replace cannot fail
        return []
    lines = text.split(ROW_SEP)
    # The first and last elements may be cut mid-row, but if they happen to
    # parse cleanly the attacker keeps them; interior lines are complete.
    if len(lines) == 1:
        candidates = lines
    else:
        candidates = [lines[0]] + lines[1:-1] + [lines[-1]]
    out = []
    for line in candidates:
        if not line:
            continue
        parsed = _try_parse(line, parsers)
        if parsed is not None:
            out.append(parsed)
    return out


def _try_parse(line: str, parsers: Sequence[Callable[[str], object]]):
    fields = line.split(FIELD_SEP)
    if len(fields) != len(parsers):
        return None
    try:
        return tuple(parse(f) for parse, f in zip(parsers, fields))
    except (ValueError, TypeError):
        return None
