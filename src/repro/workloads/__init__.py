"""Workload generators: the datasets the paper's experiments mine.

Table IV's Hercules bidding history (verbatim + parametric generator),
synthetic 30-user GPS traces (Figs. 4-6), market-basket transactions with
planted association rules, customer records with a predictable sensitive
label, raw file payloads, and the CSV record codec the adversary parses
from fragments.
"""

from repro.workloads.access_patterns import (
    sequential_scan,
    uniform_accesses,
    zipf_accesses,
)
from repro.workloads.bidding import (
    FEATURE_NAMES,
    TABLE_IV,
    TRUE_COEFFICIENTS,
    TRUE_INTERCEPT,
    BiddingDataset,
    generate_bidding_history,
    rows_from_salvaged,
    table_iv,
)
from repro.workloads.files import random_bytes, text_like
from repro.workloads.gps import (
    GPSTrace,
    GPSUser,
    feature_matrix,
    generate_city,
    generate_trace,
    generate_users,
    user_features,
)
from repro.workloads.records import RecordSet, generate_records
from repro.workloads.serialization import (
    decode_records,
    encode_records,
    salvage_records,
)
from repro.workloads.transactions import (
    PLANTED_RULES,
    TransactionLog,
    baskets_from_rows,
    generate_transactions,
    planted_rule_pairs,
)

__all__ = [
    "sequential_scan",
    "uniform_accesses",
    "zipf_accesses",
    "FEATURE_NAMES",
    "TABLE_IV",
    "TRUE_COEFFICIENTS",
    "TRUE_INTERCEPT",
    "BiddingDataset",
    "generate_bidding_history",
    "rows_from_salvaged",
    "table_iv",
    "random_bytes",
    "text_like",
    "GPSTrace",
    "GPSUser",
    "feature_matrix",
    "generate_city",
    "generate_trace",
    "generate_users",
    "user_features",
    "RecordSet",
    "generate_records",
    "decode_records",
    "encode_records",
    "salvage_records",
    "PLANTED_RULES",
    "TransactionLog",
    "baskets_from_rows",
    "generate_transactions",
    "planted_rule_pairs",
]
