"""Access-pattern generators for retrieval/caching experiments.

The paper's noted weakness is frequent access ("performance overhead when
client needs to access all data frequently", Section X).  Real access is
rarely uniform; these generators produce the patterns the cache ablation
sweeps: Zipf-skewed point reads (hot chunks), sequential scans (global
analysis), and uniform random access (worst case for caching).
"""

from __future__ import annotations

import numpy as np

from repro.util.rng import SeedLike, derive_rng


def zipf_accesses(
    n_chunks: int, n_accesses: int, alpha: float = 1.1, seed: SeedLike = None
) -> list[int]:
    """Zipf-skewed chunk serials: a few hot chunks dominate.

    ``alpha`` > 1 controls skew (higher = hotter head).  Ranks are mapped
    to chunk serials through a seeded shuffle so the hot set is arbitrary,
    not the low serials.
    """
    if n_chunks < 1:
        raise ValueError(f"n_chunks must be >= 1, got {n_chunks}")
    if n_accesses < 0:
        raise ValueError(f"n_accesses must be >= 0, got {n_accesses}")
    if alpha <= 1.0:
        raise ValueError(f"alpha must be > 1 for a proper Zipf, got {alpha}")
    rng = derive_rng(seed)
    weights = 1.0 / np.arange(1, n_chunks + 1, dtype=np.float64) ** alpha
    weights /= weights.sum()
    ranks = rng.choice(n_chunks, size=n_accesses, p=weights)
    serial_of_rank = rng.permutation(n_chunks)
    return [int(serial_of_rank[r]) for r in ranks]


def sequential_scan(
    n_chunks: int, n_passes: int = 1
) -> list[int]:
    """Full sequential scans -- the paper's "global data analysis" case."""
    if n_chunks < 1:
        raise ValueError(f"n_chunks must be >= 1, got {n_chunks}")
    if n_passes < 0:
        raise ValueError(f"n_passes must be >= 0, got {n_passes}")
    return list(range(n_chunks)) * n_passes


def uniform_accesses(
    n_chunks: int, n_accesses: int, seed: SeedLike = None
) -> list[int]:
    """Uniform random chunk serials (no locality to exploit)."""
    if n_chunks < 1:
        raise ValueError(f"n_chunks must be >= 1, got {n_chunks}")
    if n_accesses < 0:
        raise ValueError(f"n_accesses must be >= 0, got {n_accesses}")
    rng = derive_rng(seed)
    return [int(x) for x in rng.integers(0, n_chunks, size=n_accesses)]
