"""Raw file payload generators for throughput/distribution-time benches."""

from __future__ import annotations

from repro.util.rng import SeedLike, derive_rng

_WORDS = (
    "the quick brown fox jumps over a lazy dog while ninety cloud providers "
    "store fragmented chunks of sensitive data"
).split()


def random_bytes(n: int, seed: SeedLike = None) -> bytes:
    """*n* uniformly random bytes (incompressible payload)."""
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    return derive_rng(seed).integers(0, 256, size=n, dtype="u1").tobytes()


def text_like(n: int, seed: SeedLike = None) -> bytes:
    """Roughly *n* bytes of word-salad text (compressible payload)."""
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    rng = derive_rng(seed)
    parts: list[str] = []
    size = 0
    while size < n:
        word = _WORDS[int(rng.integers(0, len(_WORDS)))]
        parts.append(word)
        size += len(word) + 1
    return (" ".join(parts)).encode("utf-8")[:n]
