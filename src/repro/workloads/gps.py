"""Synthetic GPS workload (Section VIII's clustering experiment).

The paper collected GPS traces "from 30 people living in Dhaka city" via an
Android location app, clustered users hierarchically over >3000
observations each (Fig. 4), then re-clustered over 500-observation
fragments (Figs. 5-6) and observed entities moving between clusters.

The generator reproduces that setup synthetically: users live on a city
grid with home/work/errand anchor points; each observation is an anchor
visit plus GPS noise.  Users are drawn from a handful of behavioural
archetypes (neighbourhood + commute pattern) so the full-data clustering
has real structure for fragmentation to destroy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.rng import SeedLike, derive_rng
from repro.workloads.serialization import encode_records

HEADER = ("user", "t", "lat", "lon")
PARSERS = (int, int, float, float)

#: City extent in abstract kilometres (Dhaka is roughly 15 km x 20 km).
CITY_KM = (15.0, 20.0)


@dataclass(frozen=True)
class GPSUser:
    """One synthetic user: anchors plus visit propensities."""

    user_id: int
    archetype: int
    home: tuple[float, float]
    work: tuple[float, float]
    errand: tuple[float, float]
    visit_probs: tuple[float, float, float]  # home / work / errand


@dataclass(frozen=True)
class GPSTrace:
    """Observations of one user: integer timestamps + (lat, lon) in km."""

    user: GPSUser
    times: np.ndarray
    points: np.ndarray  # (n, 2)

    def __len__(self) -> int:
        return self.points.shape[0]

    def head(self, n: int) -> "GPSTrace":
        """The first *n* observations (a provider's fragment of the trace)."""
        return GPSTrace(user=self.user, times=self.times[:n], points=self.points[:n])

    def slice(self, start: int, stop: int) -> "GPSTrace":
        return GPSTrace(
            user=self.user, times=self.times[start:stop], points=self.points[start:stop]
        )

    def rows(self) -> list[tuple]:
        return [
            (self.user.user_id, int(t), round(float(p[0]), 5), round(float(p[1]), 5))
            for t, p in zip(self.times, self.points)
        ]

    def to_bytes(self) -> bytes:
        return encode_records(self.rows())


def generate_users(
    n_users: int = 30, n_archetypes: int = 4, seed: SeedLike = None
) -> list[GPSUser]:
    """Synthesize *n_users* with behavioural-archetype structure."""
    if n_users < 1:
        raise ValueError(f"n_users must be >= 1, got {n_users}")
    if n_archetypes < 1:
        raise ValueError(f"n_archetypes must be >= 1, got {n_archetypes}")
    rng = derive_rng(seed)
    # Archetype centers: a neighbourhood and a business district per type.
    archetype_home = rng.uniform([0, 0], CITY_KM, size=(n_archetypes, 2))
    archetype_work = rng.uniform([0, 0], CITY_KM, size=(n_archetypes, 2))
    users = []
    for uid in range(n_users):
        a = uid % n_archetypes
        home = archetype_home[a] + rng.normal(0, 0.8, size=2)
        work = archetype_work[a] + rng.normal(0, 0.8, size=2)
        errand = rng.uniform([0, 0], CITY_KM, size=2)
        # Visit mix varies by archetype: some users are homebodies, some
        # heavy commuters.
        base = np.array([0.5, 0.35, 0.15])
        tilt = rng.dirichlet(alpha=8 * base + a)
        users.append(
            GPSUser(
                user_id=uid,
                archetype=a,
                home=(float(home[0]), float(home[1])),
                work=(float(work[0]), float(work[1])),
                errand=(float(errand[0]), float(errand[1])),
                visit_probs=(float(tilt[0]), float(tilt[1]), float(tilt[2])),
            )
        )
    return users


def generate_trace(
    user: GPSUser, n_obs: int, seed: SeedLike = None, gps_noise_km: float = 0.15
) -> GPSTrace:
    """Draw *n_obs* observations of *user* from their anchor mixture."""
    if n_obs < 1:
        raise ValueError(f"n_obs must be >= 1, got {n_obs}")
    rng = derive_rng(seed)
    anchors = np.array([user.home, user.work, user.errand])
    choices = rng.choice(3, size=n_obs, p=np.array(user.visit_probs))
    points = anchors[choices] + rng.normal(0, gps_noise_km, size=(n_obs, 2))
    times = np.arange(n_obs) * 600  # one fix every 10 minutes
    return GPSTrace(user=user, times=times, points=points)


def generate_city(
    n_users: int = 30,
    n_obs: int = 3200,
    seed: SeedLike = None,
) -> list[GPSTrace]:
    """The paper's dataset: 30 users x >3000 observations each."""
    rng = derive_rng(seed)
    users = generate_users(n_users, seed=rng)
    return [generate_trace(u, n_obs, seed=rng) for u in users]


def user_features(trace: GPSTrace) -> np.ndarray:
    """Behavioural feature vector for clustering one user.

    Mean position, positional spread, radius of gyration and top-anchor
    dwell fraction -- the profile features the paper warns GPS analysis
    can build ("a comprehensive profile of a person").
    """
    pts = trace.points
    if pts.shape[0] == 0:
        raise ValueError("cannot featurize an empty trace")
    mean = pts.mean(axis=0)
    std = pts.std(axis=0)
    centered = pts - mean
    gyration = float(np.sqrt(np.mean(np.sum(centered**2, axis=1))))
    # Dwell fraction at the densest 500 m cell ~ "how anchored" the user is.
    cells = np.floor(pts / 0.5).astype(np.int64)
    _, counts = np.unique(cells, axis=0, return_counts=True)
    dwell = float(counts.max() / pts.shape[0])
    return np.array([mean[0], mean[1], std[0], std[1], gyration, dwell])


def feature_matrix(traces: list[GPSTrace]) -> np.ndarray:
    """Stacked, z-normalized user features (rows ordered by user id)."""
    matrix = np.stack([user_features(t) for t in traces])
    mean = matrix.mean(axis=0)
    std = matrix.std(axis=0)
    std[std == 0] = 1.0
    return (matrix - mean) / std
