"""Snapshot-provider bookkeeping (Table III's ``SP`` column).

"Snapshot of a chunk refers to the state of the chunk before the chunk is
modified.  That is, snapshot provider stores the pre-state and cloud
provider stores the post-state of a chunk after each modification."

The snapshot is the whole pre-modification chunk payload stored as a single
object (key ``S<virtual id>``) at one eligible provider, preferably outside
the chunk's current stripe group so a provider never holds both states.
"""

from __future__ import annotations

from repro.core.errors import BlobNotFoundError, PlacementError
from repro.core.placement import PlacementPolicy
from repro.core.privacy import PrivacyLevel
from repro.core.virtual_id import snapshot_key
from repro.providers.registry import ProviderRegistry


class SnapshotManager:
    """Writes/reads/drops per-chunk snapshots."""

    def __init__(self, registry: ProviderRegistry, policy: PlacementPolicy) -> None:
        self.registry = registry
        self.policy = policy

    def choose_provider(
        self,
        chunk_level: PrivacyLevel | int,
        exclude: set[str],
        load: dict[str, int] | None = None,
    ) -> str:
        """Pick a snapshot provider, avoiding the stripe members if possible."""
        candidates = self.policy.candidates(self.registry, chunk_level)
        outside = [c for c in candidates if c.name not in exclude]
        pool = outside or candidates
        if not pool:
            raise PlacementError(
                f"no provider eligible to snapshot a PL-"
                f"{int(PrivacyLevel.coerce(chunk_level))} chunk"
            )
        load = load or {}
        pool = sorted(pool, key=lambda e: (int(e.cost_level), load.get(e.name, 0)))
        return pool[0].name

    def write(self, provider_name: str, virtual_id: int, pre_state: bytes) -> str:
        """Store *pre_state* as the snapshot of chunk *virtual_id*."""
        key = snapshot_key(virtual_id)
        self.registry.get(provider_name).provider.put(key, pre_state)
        return key

    def read(self, provider_name: str, virtual_id: int) -> bytes:
        return self.registry.get(provider_name).provider.get(snapshot_key(virtual_id))

    def drop(self, provider_name: str, virtual_id: int) -> None:
        """Delete the snapshot of *virtual_id*, idempotently.

        A ``contains()``-then-``delete()`` sequence races with concurrent
        drops (and with crash recovery replaying one): the object can
        vanish between the two calls.  Delete unconditionally and swallow
        only the already-gone case; every other provider failure still
        surfaces to the caller.
        """
        provider = self.registry.get(provider_name).provider
        try:
            provider.delete(snapshot_key(virtual_id))
        except BlobNotFoundError:
            pass
