"""Provider churn: admission, decommissioning, and load rebalancing.

"Number of cloud service providers is rapidly increasing" (Section IV-B)
-- and they also leave ("the cloud provider going out of business",
Section III-A).  This module keeps a live deployment healthy through both:

* :func:`admit_provider` registers a new provider with the distributor so
  future placement can use it;
* :func:`decommission_provider` drains every shard off a provider (reading
  it directly, or rebuilding from the stripe when the provider is already
  dark) before it leaves the fleet;
* :func:`rebalance` migrates shards from the most- to the least-loaded
  eligible providers until loads are even.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.distributor import CloudDataDistributor
from repro.core.errors import PlacementError, ProviderError
from repro.core.privacy import CostLevel, PrivacyLevel
from repro.core.virtual_id import shard_key
from repro.providers.base import CloudProvider
from repro.raid.reconstruct import rebuild_shard


@dataclass
class MigrationReport:
    """Outcome of a drain or rebalance pass."""

    shards_moved: int = 0
    shards_rebuilt: int = 0
    shards_stuck: int = 0
    moves: list[tuple[int, int, str, str]] = field(default_factory=list)
    # (virtual_id, shard_index, from_provider, to_provider)


def admit_provider(
    distributor: CloudDataDistributor,
    provider: CloudProvider,
    privacy_level: PrivacyLevel | int,
    cost_level: CostLevel | int,
    region: str = "default",
) -> int:
    """Register a new provider mid-flight; returns its table index."""
    distributor.registry.register(provider, privacy_level, cost_level, region=region)
    return distributor.provider_table.add(provider.name, privacy_level, cost_level)


def _move_shard(
    distributor: CloudDataDistributor,
    entry,
    shard_index: int,
    target_name: str,
    shard_bytes: bytes,
) -> None:
    """Write one shard at its new home and update both tables."""
    vid = entry.virtual_id
    key = shard_key(vid, shard_index)
    old_index = entry.provider_indices[shard_index]
    old_name = distributor.provider_table.get(old_index).name
    distributor.registry.get(target_name).provider.put(key, shard_bytes)
    new_index = distributor.provider_table.index_of(target_name)
    distributor.provider_table.record_store(new_index, key)
    try:
        distributor.registry.get(old_name).provider.delete(key)
    except ProviderError:
        pass  # dead/dark source keeps an orphan blob under an opaque key
    distributor.provider_table.record_remove(old_index, key)
    entry.provider_indices[shard_index] = new_index


def _fetch_or_rebuild(
    distributor: CloudDataDistributor, entry, shard_index: int
) -> tuple[bytes | None, bool]:
    """Shard bytes for migration: direct read, else stripe rebuild.

    Returns (bytes or None, rebuilt?).
    """
    vid = entry.virtual_id
    source_name = distributor.provider_table.get(
        entry.provider_indices[shard_index]
    ).name
    try:
        return (
            distributor.registry.get(source_name).provider.get(
                shard_key(vid, shard_index)
            ),
            False,
        )
    except ProviderError:
        pass
    state = distributor._chunk_state.get(vid)
    if state is None:
        # Unknown-codec quarantine: without the codec there is no rebuild.
        return None, False
    survivors: dict[int, bytes] = {}
    for other_index, table_index in enumerate(entry.provider_indices):
        if other_index == shard_index:
            continue
        name = distributor.provider_table.get(table_index).name
        try:
            survivors[other_index] = distributor.registry.get(name).provider.get(
                shard_key(vid, other_index)
            )
        except ProviderError:
            continue
    if len(survivors) < state.stripe.k:
        return None, False
    return rebuild_shard(state.stripe, shard_index, survivors), True


def _replacement_target(
    distributor: CloudDataDistributor,
    entry,
    exclude: set[str],
) -> str | None:
    candidates = [
        c
        for c in distributor.placement.candidates(
            distributor.registry, entry.privacy_level
        )
        if c.name not in exclude
        and getattr(distributor.registry.get(c.name).provider, "available", True)
    ]
    if not candidates:
        return None
    load = distributor.provider_loads()
    candidates.sort(key=lambda e: (int(e.cost_level), load.get(e.name, 0)))
    return candidates[0].name


def decommission_provider(
    distributor: CloudDataDistributor, name: str
) -> MigrationReport:
    """Drain every shard (and snapshot) off provider *name*.

    Shards whose provider is already unreachable are rebuilt from their
    stripes.  Raises :class:`PlacementError` if nothing eligible can host
    the displaced shards.  The provider stays registered (empty) so stale
    readers fail cleanly; remove it from the registry afterwards if
    desired.
    """
    victim_index = distributor.provider_table.index_of(name)
    report = MigrationReport()
    for _, entry in list(distributor.chunk_table):
        group_names = {
            distributor.provider_table.get(i).name for i in entry.provider_indices
        }
        for shard_index, table_index in enumerate(entry.provider_indices):
            if table_index != victim_index:
                continue
            shard_bytes, rebuilt = _fetch_or_rebuild(distributor, entry, shard_index)
            if shard_bytes is None:
                report.shards_stuck += 1
                continue
            target = _replacement_target(
                distributor, entry, exclude=group_names | {name}
            )
            if target is None:
                raise PlacementError(
                    f"no eligible provider can absorb PL-"
                    f"{int(entry.privacy_level)} shards from {name!r}"
                )
            _move_shard(distributor, entry, shard_index, target, shard_bytes)
            group_names.add(target)
            report.shards_moved += 1
            report.shards_rebuilt += int(rebuilt)
            report.moves.append((entry.virtual_id, shard_index, name, target))

        # Relocate any snapshot hosted at the victim.
        if entry.snapshot_index == victim_index:
            try:
                pre_state = distributor.snapshots.read(name, entry.virtual_id)
            except ProviderError:
                report.shards_stuck += 1
                continue
            target = distributor.snapshots.choose_provider(
                entry.privacy_level,
                exclude={name}
                | {
                    distributor.provider_table.get(i).name
                    for i in entry.provider_indices
                },
                load=distributor.provider_loads(),
            )
            key = distributor.snapshots.write(target, entry.virtual_id, pre_state)
            distributor.provider_table.record_store(
                distributor.provider_table.index_of(target), key
            )
            try:
                distributor.snapshots.drop(name, entry.virtual_id)
            except ProviderError:
                pass
            distributor.provider_table.record_remove(victim_index, key)
            entry.snapshot_index = distributor.provider_table.index_of(target)
            report.shards_moved += 1
    return report


def rebalance(
    distributor: CloudDataDistributor, max_moves: int | None = None
) -> MigrationReport:
    """Even out shard counts by migrating from hottest to coldest providers.

    Moves one shard at a time from the most-loaded provider to the
    least-loaded provider eligible for that shard's privacy level (and not
    already in its stripe group), stopping when the spread is <= 1 shard
    or *max_moves* is reached.
    """
    report = MigrationReport()
    budget = max_moves if max_moves is not None else 10_000
    while budget > 0:
        loads = distributor.provider_loads()
        if not loads:
            break
        hottest = max(loads, key=lambda n: (loads[n], n))
        # Find a shard on the hottest provider that a colder eligible
        # provider can take.
        hottest_index = distributor.provider_table.index_of(hottest)
        moved = False
        for _, entry in distributor.chunk_table:
            for shard_index, table_index in enumerate(entry.provider_indices):
                if table_index != hottest_index:
                    continue
                group_names = {
                    distributor.provider_table.get(i).name
                    for i in entry.provider_indices
                }
                candidates = [
                    c
                    for c in distributor.placement.candidates(
                        distributor.registry, entry.privacy_level
                    )
                    if c.name not in group_names
                    and loads.get(c.name, 0) + 1 < loads[hottest]
                ]
                if not candidates:
                    continue
                candidates.sort(key=lambda c: (loads.get(c.name, 0), c.name))
                shard_bytes, rebuilt = _fetch_or_rebuild(
                    distributor, entry, shard_index
                )
                if shard_bytes is None:
                    continue
                target = candidates[0].name
                _move_shard(distributor, entry, shard_index, target, shard_bytes)
                report.shards_moved += 1
                report.shards_rebuilt += int(rebuilt)
                report.moves.append(
                    (entry.virtual_id, shard_index, hottest, target)
                )
                moved = True
                budget -= 1
                break
            if moved:
                break
        if not moved:
            break
    return report
