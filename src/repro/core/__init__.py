"""The paper's primary contribution: the Cloud Data Distributor.

Categorization (privacy levels), fragmentation (PL-sized chunking),
distribution (PL/cost-aware RAID placement over providers), virtual-id
client concealment, misleading-byte injection, ⟨password, PL⟩ access
control, snapshotting, repair, and the multi-distributor extension.
"""

from repro.core.access_control import AccessController
from repro.core.audit import AuditEvent, AuditLog
from repro.core.cache import ChunkCache
from repro.core.categorize import (
    CategorySuggestion,
    check_level,
    shannon_entropy,
    suggest_level,
)
from repro.core.chunking import Chunk, chunk_count, join, split
from repro.core.client import CloudClient
from repro.core.distributor import (
    CloudDataDistributor,
    FileReceipt,
    RepairReport,
)
from repro.core.errors import (
    AuthenticationError,
    AuthorizationError,
    BlobCorruptedError,
    BlobNotFoundError,
    DHTError,
    DistributorUnavailableError,
    PlacementError,
    ProviderError,
    ProviderUnavailableError,
    ReconstructionError,
    ReproError,
    UnknownChunkError,
    UnknownClientError,
    UnknownFileError,
)
from repro.core.misleading import InjectionResult, inject
from repro.core.misleading import remove as remove_misleading
from repro.core.multi_distributor import DistributorGroup
from repro.core.persistence import (
    MetadataCorruptedError,
    load_metadata,
    save_metadata,
)
from repro.core.placement import PlacementPolicy
from repro.core.rebalance import (
    MigrationReport,
    admit_provider,
    decommission_provider,
    rebalance,
)
from repro.core.privacy import (
    DEFAULT_CHUNK_SIZES,
    ChunkSizePolicy,
    CostLevel,
    PrivacyLevel,
    provider_may_store,
)
from repro.core.snapshots import SnapshotManager
from repro.core.tables import (
    ChunkEntry,
    ChunkTable,
    ClientEntry,
    ClientTable,
    CloudProviderTable,
    FileChunkRef,
    ProviderEntry,
)
from repro.core.virtual_id import (
    VirtualIdAllocator,
    shard_key,
    snapshot_key,
    storage_key,
)

__all__ = [
    "AccessController",
    "AuditEvent",
    "AuditLog",
    "ChunkCache",
    "CategorySuggestion",
    "check_level",
    "shannon_entropy",
    "suggest_level",
    "MetadataCorruptedError",
    "load_metadata",
    "save_metadata",
    "MigrationReport",
    "admit_provider",
    "decommission_provider",
    "rebalance",
    "Chunk",
    "chunk_count",
    "join",
    "split",
    "CloudClient",
    "CloudDataDistributor",
    "FileReceipt",
    "RepairReport",
    "AuthenticationError",
    "AuthorizationError",
    "BlobCorruptedError",
    "BlobNotFoundError",
    "DHTError",
    "DistributorUnavailableError",
    "PlacementError",
    "ProviderError",
    "ProviderUnavailableError",
    "ReconstructionError",
    "ReproError",
    "UnknownChunkError",
    "UnknownClientError",
    "UnknownFileError",
    "InjectionResult",
    "inject",
    "remove_misleading",
    "DistributorGroup",
    "PlacementPolicy",
    "DEFAULT_CHUNK_SIZES",
    "ChunkSizePolicy",
    "CostLevel",
    "PrivacyLevel",
    "provider_may_store",
    "SnapshotManager",
    "ChunkEntry",
    "ChunkTable",
    "ClientEntry",
    "ClientTable",
    "CloudProviderTable",
    "FileChunkRef",
    "ProviderEntry",
    "VirtualIdAllocator",
    "shard_key",
    "snapshot_key",
    "storage_key",
]
