"""File fragmentation and reassembly (Sections IV-A and VI).

``split`` cuts a file into fixed-size chunks whose size is dictated by the
file's privacy level (higher sensitivity -> smaller chunks, starving a
single provider of observations); ``join`` is its exact inverse.  Each chunk
carries the parent file's privacy level and its serial number ("Serial no.
corresponds to the position of the chunk within the file").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.privacy import ChunkSizePolicy, PrivacyLevel


@dataclass(frozen=True)
class Chunk:
    """One fragment of a client file.

    ``serial`` is the chunk's position in the file, ``level`` is inherited
    from the parent file, and ``payload`` is the raw fragment bytes (before
    any misleading-byte injection).
    """

    serial: int
    level: PrivacyLevel
    payload: bytes

    def __post_init__(self) -> None:
        if self.serial < 0:
            raise ValueError(f"serial must be >= 0, got {self.serial}")

    @property
    def size(self) -> int:
        return len(self.payload)


def split(
    data: bytes,
    level: PrivacyLevel | int,
    policy: ChunkSizePolicy | None = None,
    chunk_size: int | None = None,
) -> list[Chunk]:
    """Split *data* into serially numbered chunks.

    The chunk size comes from *chunk_size* if given, otherwise from
    *policy* (defaulting to the paper's PL-based schedule).  An empty file
    yields a single empty chunk so that every stored file has at least one
    retrievable unit.
    """
    pl = PrivacyLevel.coerce(level)
    if chunk_size is None:
        chunk_size = (policy or ChunkSizePolicy()).chunk_size(pl)
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    if not data:
        return [Chunk(serial=0, level=pl, payload=b"")]
    return [
        Chunk(serial=i, level=pl, payload=data[off : off + chunk_size])
        for i, off in enumerate(range(0, len(data), chunk_size))
    ]


def read_into(fileobj, buffer: memoryview) -> int:
    """Fill *buffer* from *fileobj*; returns bytes read (< len at EOF only).

    The streaming upload path's window filler: prefers ``readinto`` (no
    intermediate copy), falls back to ``read`` for file objects without
    it, and always loops -- a short read before EOF (pipes, sockets,
    synthetic streams) must not end the window early or chunk boundaries
    would drift from :func:`split`'s.
    """
    filled = 0
    reader = getattr(fileobj, "readinto", None)
    while filled < len(buffer):
        if reader is not None:
            n = reader(buffer[filled:])
            if n is None:
                raise BlockingIOError(
                    "read_into requires a blocking file object"
                )
        else:
            data = fileobj.read(len(buffer) - filled)
            n = len(data)
            buffer[filled : filled + n] = data
        if n == 0:
            break
        filled += n
    return filled


def join(chunks: list[Chunk]) -> bytes:
    """Reassemble a file from its chunks (inverse of :func:`split`).

    Chunks may arrive in any order; serial numbers must form the contiguous
    range ``0..n-1`` with no duplicates.
    """
    if not chunks:
        raise ValueError("cannot join an empty chunk list")
    ordered = sorted(chunks, key=lambda c: c.serial)
    serials = [c.serial for c in ordered]
    if serials != list(range(len(ordered))):
        raise ValueError(
            f"chunk serials must be contiguous 0..{len(ordered) - 1}, got {serials}"
        )
    return b"".join(c.payload for c in ordered)


def chunk_count(file_size: int, chunk_size: int) -> int:
    """Number of chunks :func:`split` produces for a file of *file_size*."""
    if file_size < 0:
        raise ValueError(f"file_size must be >= 0, got {file_size}")
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    if file_size == 0:
        return 1
    return -(-file_size // chunk_size)
