"""Privacy and cost levels (Section IV-A of the paper).

The paper assigns every file -- and every provider -- one of four *privacy
levels* PL 0..3 capturing mining sensitivity, and every provider one of four
*cost levels* CL 0..3 capturing its storage price.  Chunk size shrinks as
sensitivity grows ("The higher the privilege level, the lower the chunk
size", Section VI), because smaller per-provider samples starve mining
algorithms of observations.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

from repro.util.units import KiB


class PrivacyLevel(IntEnum):
    """Mining-sensitivity levels from the paper (Section IV-A).

    ``PUBLIC``      (PL 0) data accessible to everyone including the adversary.
    ``LOW``         (PL 1) reveals nothing private but usable to find patterns.
    ``MODERATE``    (PL 2) protected; can yield non-trivial financial/legal/
                    health information.
    ``PRIVATE``     (PL 3) personal/private data whose leak is disastrous.
    """

    PUBLIC = 0
    LOW = 1
    MODERATE = 2
    PRIVATE = 3

    @classmethod
    def coerce(cls, value: "PrivacyLevel | int") -> "PrivacyLevel":
        """Validate and convert an int (or level) into a :class:`PrivacyLevel`."""
        try:
            return cls(int(value))
        except ValueError as exc:
            raise ValueError(
                f"privacy level must be one of 0..3, got {value!r}"
            ) from exc


class CostLevel(IntEnum):
    """Storage-price buckets per provider ("4 cost levels and the higher the
    cost level, the more costly the provider", Section IV-A)."""

    CHEAPEST = 0
    CHEAP = 1
    EXPENSIVE = 2
    PREMIUM = 3

    @classmethod
    def coerce(cls, value: "CostLevel | int") -> "CostLevel":
        try:
            return cls(int(value))
        except ValueError as exc:
            raise ValueError(
                f"cost level must be one of 0..3, got {value!r}"
            ) from exc


#: Default chunk-size schedule.  PL 0 (public) data "can be split into larger
#: chunks compared to sensitive data ... minimiz[ing] the overhead associated
#: with splitting" (Section VII-B); PL 3 gets the smallest chunks.
DEFAULT_CHUNK_SIZES: dict[PrivacyLevel, int] = {
    PrivacyLevel.PUBLIC: 64 * KiB,
    PrivacyLevel.LOW: 16 * KiB,
    PrivacyLevel.MODERATE: 4 * KiB,
    PrivacyLevel.PRIVATE: 1 * KiB,
}


@dataclass(frozen=True)
class ChunkSizePolicy:
    """Maps a privacy level to the fixed chunk size used when splitting.

    The mapping must be monotonically non-increasing in PL: more sensitive
    files are never split into *larger* chunks than less sensitive ones.
    """

    sizes: tuple[int, int, int, int] = tuple(
        DEFAULT_CHUNK_SIZES[pl] for pl in PrivacyLevel
    )

    def __post_init__(self) -> None:
        if len(self.sizes) != len(PrivacyLevel):
            raise ValueError(
                f"need {len(PrivacyLevel)} chunk sizes, got {len(self.sizes)}"
            )
        for size in self.sizes:
            if size <= 0:
                raise ValueError(f"chunk sizes must be positive, got {size}")
        for lower, higher in zip(self.sizes, self.sizes[1:]):
            if higher > lower:
                raise ValueError(
                    "chunk size must not increase with privacy level: "
                    f"{self.sizes}"
                )

    def chunk_size(self, level: PrivacyLevel | int) -> int:
        """Chunk size in bytes for files at *level*."""
        return self.sizes[PrivacyLevel.coerce(level)]

    @classmethod
    def uniform(cls, size: int) -> "ChunkSizePolicy":
        """A policy using the same chunk size at every privacy level."""
        return cls(sizes=(size,) * len(PrivacyLevel))


def provider_may_store(provider_pl: PrivacyLevel, chunk_pl: PrivacyLevel) -> bool:
    """Placement eligibility rule (Section IV-A): "A chunk is given to a
    provider having equal or higher privacy level compared to the privacy
    level of the chunk."""
    return int(provider_pl) >= int(chunk_pl)
