"""Distributor audit trail.

A privacy system needs to answer "who touched what, when" -- both for the
client's own assurance and to surface the attack precursor the paper
worries about: an intruder probing many chunks.  The log records every
data-path operation with its simulated timestamp and outcome, and offers
simple anomaly queries (repeated authentication failures, unusually broad
read sweeps).

Every record is additionally emitted through the structured-log event
path (:mod:`repro.obs.events`), so audit entries interleave with the rest
of the telemetry stream -- ``repro stats`` consumers and tests tail one
feed instead of two.  Records carry the virtual ids and provider names
the operation touched, which is what the provider-sweep anomaly query
keys on: a client whose reads fan out across many virtual ids *and* many
providers inside a short window looks like data-mining reconnaissance,
not normal file access.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.obs.events import EventLog, get_events


@dataclass(frozen=True)
class AuditEvent:
    """One data-path operation as seen by the distributor."""

    timestamp: float
    operation: str  # upload / get_chunk / get_file / remove / update / auth
    client: str
    filename: str | None
    serial: int | None
    ok: bool
    detail: str = ""
    virtual_ids: tuple[int, ...] = ()
    providers: tuple[str, ...] = ()


@dataclass(frozen=True)
class SweepBreadth:
    """Breadth of a client's trailing read activity, keyed by virtual id."""

    virtual_ids: int  # distinct virtual ids read
    providers: int  # distinct providers those reads touched


@dataclass
class AuditLog:
    """Append-only audit trail with query helpers.

    ``now`` supplies timestamps (wire it to a SimulatedClock's ``now`` for
    simulated deployments; defaults to a monotone counter so the log works
    without a clock).  ``event_log`` is the structured-log sink; it
    defaults to the process-wide event log at record time.
    """

    now: Callable[[], float] | None = None
    events: list[AuditEvent] = field(default_factory=list)
    event_log: EventLog | None = None
    _counter: int = 0

    def _timestamp(self) -> float:
        if self.now is not None:
            return float(self.now())
        self._counter += 1
        return float(self._counter)

    def record(
        self,
        operation: str,
        client: str,
        filename: str | None = None,
        serial: int | None = None,
        ok: bool = True,
        detail: str = "",
        virtual_ids: tuple[int, ...] = (),
        providers: tuple[str, ...] = (),
    ) -> AuditEvent:
        event = AuditEvent(
            timestamp=self._timestamp(),
            operation=operation,
            client=client,
            filename=filename,
            serial=serial,
            ok=ok,
            detail=detail,
            virtual_ids=tuple(virtual_ids),
            providers=tuple(providers),
        )
        self.events.append(event)
        sink = self.event_log if self.event_log is not None else get_events()
        sink.emit(
            "audit",
            level="info" if ok else "warning",
            op=operation,
            client=client,
            file=filename,
            serial=serial,
            ok=ok,
            detail=detail,
            virtual_ids=list(event.virtual_ids),
            providers=list(event.providers),
        )
        return event

    # -- queries -----------------------------------------------------------

    def for_client(self, client: str) -> list[AuditEvent]:
        return [e for e in self.events if e.client == client]

    def failures(self, client: str | None = None) -> list[AuditEvent]:
        return [
            e
            for e in self.events
            if not e.ok and (client is None or e.client == client)
        ]

    def auth_failure_streak(self, client: str) -> int:
        """Consecutive trailing failed operations for *client* -- the
        brute-force / probing signal."""
        streak = 0
        for event in reversed(self.for_client(client)):
            if event.ok:
                break
            streak += 1
        return streak

    def _trailing_reads(self, client: str, window: float) -> list[AuditEvent]:
        if not self.events:
            return []
        cutoff = self.events[-1].timestamp - window
        return [
            e
            for e in self.events
            if e.client == client
            and e.timestamp >= cutoff
            and e.operation in ("get_chunk", "get_file")
            and e.ok
        ]

    def read_sweep_breadth(self, client: str, window: float) -> int:
        """Distinct (filename, serial) pairs read in the trailing *window*
        of time -- a full-corpus sweep is what an exfiltrating intruder
        with a stolen password looks like."""
        seen = {
            (e.filename, e.serial)
            for e in self._trailing_reads(client, window)
        }
        return len(seen)

    def provider_sweep_breadth(
        self, client: str, window: float
    ) -> SweepBreadth:
        """How broadly *client*'s trailing reads fanned out, keyed by
        virtual id.

        Counts the distinct virtual ids read in the trailing *window* and
        the distinct providers those reads touched.  High breadth on both
        axes is the "broad read sweep across providers" precursor: an
        intruder collecting chunks fleet-wide to mine, where a legitimate
        client re-reading one file keeps both counts small.
        """
        vids: set[int] = set()
        providers: set[str] = set()
        for event in self._trailing_reads(client, window):
            vids.update(event.virtual_ids)
            providers.update(event.providers)
        return SweepBreadth(virtual_ids=len(vids), providers=len(providers))

    def __len__(self) -> int:
        return len(self.events)
