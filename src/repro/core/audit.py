"""Distributor audit trail.

A privacy system needs to answer "who touched what, when" -- both for the
client's own assurance and to surface the attack precursor the paper
worries about: an intruder probing many chunks.  The log records every
data-path operation with its simulated timestamp and outcome, and offers
simple anomaly queries (repeated authentication failures, unusually broad
read sweeps).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable


@dataclass(frozen=True)
class AuditEvent:
    """One data-path operation as seen by the distributor."""

    timestamp: float
    operation: str  # upload / get_chunk / get_file / remove / update / auth
    client: str
    filename: str | None
    serial: int | None
    ok: bool
    detail: str = ""


@dataclass
class AuditLog:
    """Append-only audit trail with query helpers.

    ``now`` supplies timestamps (wire it to a SimulatedClock's ``now`` for
    simulated deployments; defaults to a monotone counter so the log works
    without a clock).
    """

    now: Callable[[], float] | None = None
    events: list[AuditEvent] = field(default_factory=list)
    _counter: int = 0

    def _timestamp(self) -> float:
        if self.now is not None:
            return float(self.now())
        self._counter += 1
        return float(self._counter)

    def record(
        self,
        operation: str,
        client: str,
        filename: str | None = None,
        serial: int | None = None,
        ok: bool = True,
        detail: str = "",
    ) -> AuditEvent:
        event = AuditEvent(
            timestamp=self._timestamp(),
            operation=operation,
            client=client,
            filename=filename,
            serial=serial,
            ok=ok,
            detail=detail,
        )
        self.events.append(event)
        return event

    # -- queries -----------------------------------------------------------

    def for_client(self, client: str) -> list[AuditEvent]:
        return [e for e in self.events if e.client == client]

    def failures(self, client: str | None = None) -> list[AuditEvent]:
        return [
            e
            for e in self.events
            if not e.ok and (client is None or e.client == client)
        ]

    def auth_failure_streak(self, client: str) -> int:
        """Consecutive trailing failed operations for *client* -- the
        brute-force / probing signal."""
        streak = 0
        for event in reversed(self.for_client(client)):
            if event.ok:
                break
            streak += 1
        return streak

    def read_sweep_breadth(self, client: str, window: float) -> int:
        """Distinct (filename, serial) pairs read in the trailing *window*
        of time -- a full-corpus sweep is what an exfiltrating intruder
        with a stolen password looks like."""
        if not self.events:
            return 0
        cutoff = self.events[-1].timestamp - window
        seen = {
            (e.filename, e.serial)
            for e in self.events
            if e.client == client
            and e.timestamp >= cutoff
            and e.operation in ("get_chunk", "get_file")
            and e.ok
        }
        return len(seen)

    def __len__(self) -> int:
        return len(self.events)
