"""Mining-sensitivity categorization (Section I's first pipeline stage).

"The categorization of data is done according to mining sensitivity.
Mining sensitivity in this context refers to the significance of
information that can be leaked by mining."  The paper has clients pick the
privacy level by hand; this module adds an advisory classifier that scores
a file's mining sensitivity from its content, so a client (or a policy
engine) can sanity-check the chosen PL.

The heuristics mirror the paper's own examples of what mining leaks:
financial records (Table IV's bidding history), health/legal attributes
(Section II-A), GPS trajectories (Section VIII), and credentials.  The
result is advisory -- ``suggest_level`` never *overrides* a client choice,
and ``check_level`` only flags when a file looks more sensitive than the
level the client assigned.
"""

from __future__ import annotations

import math
import re
from collections import Counter
from dataclasses import dataclass

from repro.core.privacy import PrivacyLevel

#: Keyword families, each with the sensitivity weight its presence adds.
_KEYWORDS: dict[str, tuple[float, tuple[str, ...]]] = {
    "financial": (2.0, ("salary", "income", "account", "bid", "invoice",
                        "balance", "payment", "iban", "price")),
    "health": (3.0, ("diagnosis", "cholesterol", "illness", "patient",
                     "prescription", "blood", "disease", "risk")),
    "legal": (2.5, ("criminal", "lawsuit", "verdict", "conviction", "court")),
    "credentials": (3.0, ("password", "passwd", "secret", "token", "apikey",
                          "private_key")),
    "identity": (2.5, ("ssn", "passport", "national_id", "birthdate",
                       "address", "phone")),
}

_GPS_PAIR = re.compile(
    r"(?<![\d.])-?\d{1,3}\.\d{3,}\s*,\s*-?\d{1,3}\.\d{3,}(?![\d.])"
)
_MONEY = re.compile(r"(?:\$|usd|eur|bdt)\s?\d[\d,]*(?:\.\d+)?", re.IGNORECASE)
_EMAIL = re.compile(r"[\w.+-]+@[\w-]+\.[\w.]+")


@dataclass(frozen=True)
class CategorySuggestion:
    """An advisory sensitivity assessment for one file."""

    level: PrivacyLevel
    score: float
    reasons: tuple[str, ...]
    tabular: bool

    def __str__(self) -> str:  # pragma: no cover - display helper
        why = "; ".join(self.reasons) or "no sensitive signals"
        return f"PL {int(self.level)} (score {self.score:.1f}): {why}"


def shannon_entropy(data: bytes) -> float:
    """Bits of entropy per byte (8.0 = uniformly random)."""
    if not data:
        return 0.0
    counts = Counter(data)
    total = len(data)
    return -sum(
        (c / total) * math.log2(c / total) for c in counts.values()
    )


def _looks_tabular(text: str) -> bool:
    lines = [line for line in text.splitlines() if line.strip()]
    if len(lines) < 3:
        return False
    arities = Counter(line.count(",") for line in lines[:50])
    arity, hits = arities.most_common(1)[0]
    return arity >= 1 and hits >= 0.7 * min(len(lines), 50)


def suggest_level(data: bytes, sample_bytes: int = 64 * 1024) -> CategorySuggestion:
    """Advisory mining-sensitivity classification of *data*.

    Scores content signals (sensitive keyword families, GPS coordinate
    pairs, money amounts, e-mail addresses, tabular structure) and maps
    the total to PL 0-3.  High-entropy opaque blobs score MODERATE by
    default: unparseable data leaks little to mining, but the classifier
    cannot vouch for it either.
    """
    sample = data[:sample_bytes]
    if not sample:
        return CategorySuggestion(
            level=PrivacyLevel.PUBLIC, score=0.0, reasons=("empty file",),
            tabular=False,
        )
    entropy = shannon_entropy(sample)
    try:
        text = sample.decode("utf-8")
    except UnicodeDecodeError:
        text = None
    if text is None or entropy > 7.5:
        return CategorySuggestion(
            level=PrivacyLevel.MODERATE,
            score=4.0,
            reasons=(f"opaque binary (entropy {entropy:.2f} bits/byte)",),
            tabular=False,
        )

    lowered = text.lower()
    score = 0.0
    reasons: list[str] = []
    for family, (weight, words) in _KEYWORDS.items():
        hits = [w for w in words if w in lowered]
        if hits:
            score += weight
            reasons.append(f"{family} terms ({', '.join(hits[:3])})")

    gps_hits = len(_GPS_PAIR.findall(text))
    if gps_hits >= 3:
        score += 3.0
        reasons.append(f"{gps_hits} GPS-like coordinate pairs")
    money_hits = len(_MONEY.findall(text))
    if money_hits >= 3:
        score += 2.0
        reasons.append(f"{money_hits} money amounts")
    email_hits = len(_EMAIL.findall(text))
    if email_hits >= 2:
        score += 1.5
        reasons.append(f"{email_hits} e-mail addresses")

    tabular = _looks_tabular(text)
    if tabular and score > 0:
        # Structured sensitive records are exactly what mining eats.
        score += 1.5
        reasons.append("tabular record structure (mineable)")

    if score >= 6.0:
        level = PrivacyLevel.PRIVATE
    elif score >= 3.5:
        level = PrivacyLevel.MODERATE
    elif score >= 1.5:
        level = PrivacyLevel.LOW
    else:
        level = PrivacyLevel.PUBLIC
    return CategorySuggestion(
        level=level, score=score, reasons=tuple(reasons), tabular=tabular
    )


def check_level(
    data: bytes, chosen: PrivacyLevel | int
) -> tuple[bool, CategorySuggestion]:
    """Does the client's *chosen* PL look sufficient for *data*?

    Returns ``(ok, suggestion)``: ``ok`` is False when the classifier
    scores the content strictly more sensitive than the chosen level.
    """
    suggestion = suggest_level(data)
    return int(PrivacyLevel.coerce(chosen)) >= int(suggestion.level), suggestion
