"""Provider-selection policy (Sections IV-A and IV-B).

Placement applies, in order:

1. **Eligibility** - "A chunk is given to a provider having equal or higher
   privacy level compared to the privacy level of the chunk"; optionally,
   chunks at or above a sensitivity threshold additionally require a
   TCCP-attested provider.
2. **Cost preference** - "in case of equal privacy level, the one with a
   lower cost level is given preference" -- i.e. among eligible providers
   the cheaper cost bucket wins.
3. **Random spread / load balance** - chunks are distributed "in a random
   way" among the preferred providers, tie-breaking toward the least-loaded
   so the fleet fills evenly.

The policy returns a *stripe group*: ``width`` distinct provider names to
hold one chunk's RAID shards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.errors import PlacementError
from repro.core.privacy import PrivacyLevel
from repro.providers.registry import ProviderRegistry, RegisteredProvider
from repro.util.rng import SeedLike, derive_rng

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.health.monitor import HealthMonitor


@dataclass
class PlacementPolicy:
    """Configurable stripe-group selection.

    ``prefer_cheap``: apply the paper's cost-level preference (disable to
    spread uniformly across all eligible providers regardless of price).
    ``require_attested_at``: if set, chunks with PL >= this threshold only
    go to providers with a valid TCCP attestation.
    ``preferred_regions``: regions in preference order, the paper's
    locality optimization ("storing the chunks in the locations where
    they are frequently used", Section VII-E); providers in earlier
    regions win before cost is considered, unlisted regions rank last.
    """

    prefer_cheap: bool = True
    require_attested_at: PrivacyLevel | None = None
    preferred_regions: tuple[str, ...] = ()
    seed: SeedLike = None

    def _region_rank(self, region: str) -> int:
        try:
            return self.preferred_regions.index(region)
        except ValueError:
            return len(self.preferred_regions)

    def __post_init__(self) -> None:
        self._rng = derive_rng(self.seed)

    # -- candidate filtering -------------------------------------------------

    def candidates(
        self,
        registry: ProviderRegistry,
        chunk_level: PrivacyLevel | int,
        include_unavailable: bool = False,
        health: "HealthMonitor | None" = None,
    ) -> list[RegisteredProvider]:
        """All providers eligible to store a chunk at *chunk_level*.

        Providers currently known to be down are excluded (new shards
        should never target a dark provider) unless
        ``include_unavailable`` is set.  With a *health* monitor attached,
        "down" means the monitor's evidence-based DOWN verdict (which
        covers real disk/socket backends); the simulated-only ``available``
        flag remains honoured as a fallback signal.
        """
        pl = PrivacyLevel.coerce(chunk_level)
        eligible = registry.eligible(pl)
        if (
            self.require_attested_at is not None
            and int(pl) >= int(self.require_attested_at)
        ):
            eligible = [
                e
                for e in eligible
                if registry.attestation.is_attested(e.name)
            ]
        if not include_unavailable:
            eligible = [
                e
                for e in eligible
                if getattr(e.provider, "available", True)
            ]
            if health is not None:
                eligible = [e for e in eligible if health.is_usable(e.name)]
        # Capacity enforcement is coarse (a provider already at its limit
        # stops receiving shards; the shard that crosses the line still
        # lands) -- adequate for steering, not a hard quota.
        eligible = [e for e in eligible if e.has_capacity_for(1)]
        return eligible

    # -- stripe-group selection ------------------------------------------------

    def stripe_group(
        self,
        registry: ProviderRegistry,
        chunk_level: PrivacyLevel | int,
        width: int,
        load: dict[str, int] | None = None,
        health: "HealthMonitor | None" = None,
    ) -> list[str]:
        """Pick ``width`` distinct provider names for one chunk's stripe.

        ``load`` maps provider name -> current chunk-shard count and is used
        for least-loaded tie-breaking inside a cost tier.  With a *health*
        monitor, DOWN providers are excluded and SUSPECT ones (elevated
        error rate) rank after healthy peers regardless of cost.
        Raises :class:`PlacementError` if fewer than ``width`` providers are
        eligible.
        """
        if width < 1:
            raise ValueError(f"stripe width must be >= 1, got {width}")
        eligible = self.candidates(registry, chunk_level, health=health)
        if len(eligible) < width:
            raise PlacementError(
                f"need {width} providers eligible for PL "
                f"{int(PrivacyLevel.coerce(chunk_level))}, only {len(eligible)} "
                f"available"
            )
        load = load or {}

        # Randomize first so equal-key providers are picked uniformly, then
        # stable-sort by (region preference, cost tier, load).
        shuffled = list(eligible)
        self._rng.shuffle(shuffled)

        def sort_key(e):
            key = []
            if health is not None:
                # Suspect providers (elevated error EWMA) are a last
                # resort: correctness of future reads beats cost.
                key.append(1 if health.suspect(e.name) else 0)
            if self.preferred_regions:
                key.append(self._region_rank(e.region))
            if self.prefer_cheap:
                key.append(int(e.cost_level))
            key.append(load.get(e.name, 0))
            return tuple(key)

        shuffled.sort(key=sort_key)
        return [e.name for e in shuffled[:width]]

    def max_stripe_width(
        self,
        registry: ProviderRegistry,
        chunk_level: PrivacyLevel | int,
        health: "HealthMonitor | None" = None,
    ) -> int:
        """Largest stripe width placeable at *chunk_level*."""
        return len(self.candidates(registry, chunk_level, health=health))
