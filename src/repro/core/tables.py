"""The distributor's three metadata tables (Tables I, II, III).

"To perform distribution and retrieval of data (chunks), the Cloud Data
Distributor needs to maintain information regarding providers, clients and
chunks.  Hence, it maintains three types of tables describing the providers,
the clients and the chunks."

Entries cross-reference each other by *table index*, exactly as the paper's
application-architecture walk-through does: Client Table row -> Chunk Table
index -> Cloud Provider Table index -> provider.  Indices are stable for
the lifetime of an entry (removals leave holes rather than renumbering).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.core.errors import UnknownChunkError, UnknownClientError, UnknownFileError
from repro.core.privacy import CostLevel, PrivacyLevel


# ---------------------------------------------------------------------------
# Table I — Cloud Provider Table
# ---------------------------------------------------------------------------


@dataclass
class ProviderEntry:
    """One row of the Cloud Provider Table.

    ``name``/``privacy_level``/``cost_level`` are the provider's identity
    and trust/price buckets; ``virtual_ids`` is "the list of ids
    corresponding to the chunks given to this provider" and ``count`` is
    its length (kept explicit to match Table I).
    """

    name: str
    privacy_level: PrivacyLevel
    cost_level: CostLevel
    virtual_ids: set[str] = field(default_factory=set)

    @property
    def count(self) -> int:
        return len(self.virtual_ids)


class CloudProviderTable:
    """Index-addressable registry of providers (Table I)."""

    def __init__(self) -> None:
        self._entries: dict[int, ProviderEntry] = {}
        self._by_name: dict[str, int] = {}
        self._next_index = 0

    def add(
        self,
        name: str,
        privacy_level: PrivacyLevel | int,
        cost_level: CostLevel | int,
    ) -> int:
        """Register a provider; returns its stable table index."""
        if name in self._by_name:
            raise ValueError(f"provider {name!r} already registered")
        index = self._next_index
        self._next_index += 1
        self._entries[index] = ProviderEntry(
            name=name,
            privacy_level=PrivacyLevel.coerce(privacy_level),
            cost_level=CostLevel.coerce(cost_level),
        )
        self._by_name[name] = index
        return index

    def get(self, index: int) -> ProviderEntry:
        try:
            return self._entries[index]
        except KeyError:
            raise KeyError(f"no provider at table index {index}") from None

    def index_of(self, name: str) -> int:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"no provider named {name!r}") from None

    def record_store(self, index: int, key: str) -> None:
        """Note that object *key* now lives at provider *index*."""
        self.get(index).virtual_ids.add(key)

    def record_remove(self, index: int, key: str) -> None:
        self.get(index).virtual_ids.discard(key)

    def indices(self) -> list[int]:
        return sorted(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[tuple[int, ProviderEntry]]:
        return iter(sorted(self._entries.items()))

    def export_state(self) -> dict:
        """Serializable snapshot for replication/persistence."""
        return {
            "next_index": self._next_index,
            "entries": {
                index: (
                    e.name,
                    int(e.privacy_level),
                    int(e.cost_level),
                    sorted(e.virtual_ids),
                )
                for index, e in self._entries.items()
            },
        }

    def import_state(self, state: dict) -> None:
        self._entries = {
            int(index): ProviderEntry(
                name=name,
                privacy_level=PrivacyLevel.coerce(pl),
                cost_level=CostLevel.coerce(cl),
                virtual_ids=set(vids),
            )
            for index, (name, pl, cl, vids) in state["entries"].items()
        }
        self._by_name = {e.name: i for i, e in self._entries.items()}
        self._next_index = int(state["next_index"])

    def rows(self, id_preview: int = 1) -> list[list[object]]:
        """Render rows shaped like the paper's Table I."""
        out: list[list[object]] = []
        for _, entry in self:
            ids = sorted(entry.virtual_ids)
            preview = ", ".join(str(v) for v in ids[:id_preview])
            suffix = ", ..." if len(ids) > id_preview else ""
            out.append(
                [
                    entry.name,
                    int(entry.privacy_level),
                    int(entry.cost_level),
                    entry.count,
                    "{" + preview + suffix + "}",
                ]
            )
        return out


# ---------------------------------------------------------------------------
# Table III — Chunk Table (defined before the Client Table so the latter can
# reference chunk indices)
# ---------------------------------------------------------------------------


@dataclass
class ChunkEntry:
    """One row of the Chunk Table.

    ``virtual_id`` is the provider-facing key; ``privacy_level`` the chunk's
    sensitivity; ``provider_indices`` the Cloud Provider Table indices of
    the stripe members currently storing the chunk (the paper shows one
    ``CP index`` -- with RAID striping a chunk's stripe may span several
    providers, so we keep the full list with the primary first);
    ``snapshot_index`` the provider holding the pre-modification snapshot
    (``None`` -> the paper's ``NA``); ``misleading_positions`` the ``M``
    column.
    """

    virtual_id: int
    privacy_level: PrivacyLevel
    provider_indices: list[int]
    snapshot_index: int | None = None
    misleading_positions: tuple[int, ...] = ()

    @property
    def provider_index(self) -> int:
        """Primary provider index (the paper's ``CP index`` column)."""
        return self.provider_indices[0]


class ChunkTable:
    """Index-addressable registry of chunk metadata (Table III)."""

    def __init__(self) -> None:
        self._entries: dict[int, ChunkEntry] = {}
        self._by_vid: dict[int, int] = {}
        self._next_index = 0

    def add(self, entry: ChunkEntry) -> int:
        if entry.virtual_id in self._by_vid:
            raise ValueError(f"virtual id {entry.virtual_id} already tabled")
        if not entry.provider_indices:
            raise ValueError("chunk entry needs at least one provider index")
        index = self._next_index
        self._next_index += 1
        self._entries[index] = entry
        self._by_vid[entry.virtual_id] = index
        return index

    def get(self, index: int) -> ChunkEntry:
        try:
            return self._entries[index]
        except KeyError:
            raise UnknownChunkError(f"no chunk at table index {index}") from None

    def by_virtual_id(self, vid: int) -> ChunkEntry:
        try:
            return self._entries[self._by_vid[vid]]
        except KeyError:
            raise UnknownChunkError(f"no chunk with virtual id {vid}") from None

    def remove(self, index: int) -> ChunkEntry:
        entry = self.get(index)
        del self._entries[index]
        del self._by_vid[entry.virtual_id]
        return entry

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[tuple[int, ChunkEntry]]:
        return iter(sorted(self._entries.items()))

    def export_state(self) -> dict:
        """Serializable snapshot for replication/persistence."""
        return {
            "next_index": self._next_index,
            "entries": {
                index: (
                    e.virtual_id,
                    int(e.privacy_level),
                    list(e.provider_indices),
                    e.snapshot_index,
                    list(e.misleading_positions),
                )
                for index, e in self._entries.items()
            },
        }

    def import_state(self, state: dict) -> None:
        self._entries = {
            int(index): ChunkEntry(
                virtual_id=int(vid),
                privacy_level=PrivacyLevel.coerce(pl),
                provider_indices=list(cps),
                snapshot_index=sp,
                misleading_positions=tuple(m),
            )
            for index, (vid, pl, cps, sp, m) in state["entries"].items()
        }
        self._by_vid = {e.virtual_id: i for i, e in self._entries.items()}
        self._next_index = int(state["next_index"])

    def rows(self, m_preview: int = 2) -> list[list[object]]:
        """Render rows shaped like the paper's Table III."""
        out: list[list[object]] = []
        for _, e in self:
            if e.misleading_positions:
                mm = ", ".join(str(p) for p in e.misleading_positions[:m_preview])
                m_cell = "{" + mm + (", ...}" if len(e.misleading_positions) > m_preview else "}")
            else:
                m_cell = "NA"
            out.append(
                [
                    e.virtual_id,
                    int(e.privacy_level),
                    e.provider_index,
                    "NA" if e.snapshot_index is None else e.snapshot_index,
                    m_cell,
                ]
            )
        return out


# ---------------------------------------------------------------------------
# Table II — Client Table
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FileChunkRef:
    """One (filename, sl, PL, chunk-table-index) quadruple from Table II."""

    filename: str
    serial: int
    privacy_level: PrivacyLevel
    chunk_index: int


@dataclass
class ClientEntry:
    """One row of the Client Table.

    Passwords live in :class:`repro.core.access_control.AccessController`
    (hashed); this entry records the password *levels* for rendering plus
    the client's chunk quadruples.
    """

    name: str
    password_levels: list[PrivacyLevel] = field(default_factory=list)
    chunk_refs: list[FileChunkRef] = field(default_factory=list)

    @property
    def count(self) -> int:
        return len(self.chunk_refs)

    def refs_for_file(self, filename: str) -> list[FileChunkRef]:
        refs = sorted(
            (r for r in self.chunk_refs if r.filename == filename),
            key=lambda r: r.serial,
        )
        if not refs:
            raise UnknownFileError(f"client {self.name!r} has no file {filename!r}")
        return refs

    def ref_for_chunk(self, filename: str, serial: int) -> FileChunkRef:
        for ref in self.chunk_refs:
            if ref.filename == filename and ref.serial == serial:
                return ref
        # Distinguish "no such file" from "no such serial".
        if not any(r.filename == filename for r in self.chunk_refs):
            raise UnknownFileError(f"client {self.name!r} has no file {filename!r}")
        raise UnknownChunkError(
            f"file {filename!r} of client {self.name!r} has no chunk {serial}"
        )

    def filenames(self) -> list[str]:
        seen: dict[str, None] = {}
        for ref in self.chunk_refs:
            seen.setdefault(ref.filename, None)
        return list(seen)


class ClientTable:
    """Registry of client metadata (Table II), keyed by client name."""

    def __init__(self) -> None:
        self._entries: dict[str, ClientEntry] = {}

    def add(self, name: str) -> ClientEntry:
        if name in self._entries:
            raise ValueError(f"client {name!r} already tabled")
        entry = ClientEntry(name=name)
        self._entries[name] = entry
        return entry

    def get(self, name: str) -> ClientEntry:
        try:
            return self._entries[name]
        except KeyError:
            raise UnknownClientError(f"no client named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[ClientEntry]:
        return iter(self._entries.values())

    def export_state(self) -> dict:
        """Serializable snapshot for replication/persistence."""
        return {
            name: (
                [int(pl) for pl in e.password_levels],
                [
                    (r.filename, r.serial, int(r.privacy_level), r.chunk_index)
                    for r in e.chunk_refs
                ],
            )
            for name, e in self._entries.items()
        }

    def import_state(self, state: dict) -> None:
        self._entries = {
            name: ClientEntry(
                name=name,
                password_levels=[PrivacyLevel.coerce(pl) for pl in levels],
                chunk_refs=[
                    FileChunkRef(
                        filename=f,
                        serial=int(sl),
                        privacy_level=PrivacyLevel.coerce(pl),
                        chunk_index=int(idx),
                    )
                    for f, sl, pl, idx in refs
                ],
            )
            for name, (levels, refs) in state.items()
        }

    def rows(self, ref_preview: int = 2) -> list[list[object]]:
        """Render rows shaped like the paper's Table II."""
        out: list[list[object]] = []
        for entry in self:
            pls = ", ".join(f"(****, {int(pl)})" for pl in entry.password_levels)
            refs = entry.chunk_refs[:ref_preview]
            quad = "; ".join(
                f"({r.filename}, {r.serial}, {int(r.privacy_level)}, {r.chunk_index})"
                for r in refs
            )
            if len(entry.chunk_refs) > ref_preview:
                quad += "; ..."
            out.append([entry.name, pls, entry.count, quad])
        return out
