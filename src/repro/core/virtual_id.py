"""Virtual-id allocation (Section IV-A).

Inside the Cloud Data Distributor "each chunk is given a unique virtual id
and this id is used to identify the chunk within the Cloud Data Distributor
and Cloud Providers.  This virtualization conceals the identity of a client
from the provider."  A provider storing a chunk therefore only ever sees an
opaque integer key -- never the client name, filename, or serial number.

The paper's Cloud Provider Table (Table I) shows snapshot copies stored
under a distinguishable key (``S16948`` for chunk ``16948``); we model that
with :func:`snapshot_key`.
"""

from __future__ import annotations

from repro.util.rng import SeedLike, derive_rng

#: Virtual ids are drawn from this half-open range; the paper's examples use
#: 5-digit ids (10986, 16948, ...) so we default to the same order of
#: magnitude but allow far more ids before exhaustion.
ID_SPACE = 10_000_000


class VirtualIdAllocator:
    """Allocates unique, unpredictable virtual ids.

    Ids are drawn pseudo-randomly (so a provider cannot infer upload order
    or client grouping from adjacent ids) and uniqueness is enforced with a
    seen-set.  The allocator is deterministic given its seed.
    """

    def __init__(self, seed: SeedLike = None, id_space: int = ID_SPACE) -> None:
        if id_space < 2:
            raise ValueError(f"id_space must be >= 2, got {id_space}")
        self._rng = derive_rng(seed)
        self._id_space = id_space
        self._used: set[int] = set()

    def allocate(self) -> int:
        """Return a fresh virtual id, never previously returned."""
        if len(self._used) >= self._id_space:
            raise RuntimeError("virtual id space exhausted")
        while True:
            vid = int(self._rng.integers(0, self._id_space))
            if vid not in self._used:
                self._used.add(vid)
                return vid

    def reserve(self, vid: int) -> None:
        """Mark *vid* as used (e.g. when rebuilding state from metadata)."""
        if vid in self._used:
            raise ValueError(f"virtual id {vid} already in use")
        self._used.add(vid)

    def release(self, vid: int) -> None:
        """Return *vid* to the free pool after its chunk is removed."""
        self._used.discard(vid)

    @property
    def allocated_count(self) -> int:
        return len(self._used)

    def __contains__(self, vid: int) -> bool:
        return vid in self._used

    def export_state(self) -> dict:
        """Serializable snapshot (used-id set) for replication."""
        return {"used": sorted(self._used), "id_space": self._id_space}

    def import_state(self, state: dict) -> None:
        self._id_space = int(state["id_space"])
        self._used = set(state["used"])


def storage_key(virtual_id: int) -> str:
    """The provider-side object key for a live chunk."""
    return str(virtual_id)


def shard_key(virtual_id: int, shard_index: int) -> str:
    """The provider-side object key for one RAID shard of a chunk.

    Each stripe member holds its shard under ``<id>.<shard>``; a provider
    still learns nothing but an opaque key.
    """
    return f"{virtual_id}.{shard_index}"


def snapshot_key(virtual_id: int) -> str:
    """The provider-side object key for a chunk's snapshot (pre-state).

    Mirrors Table I of the paper where snapshot copies appear as ``S<id>``.
    """
    return f"S{virtual_id}"
