"""Distributor metadata persistence.

The distributor's metadata (the three tables, hashed credentials, stripe
geometry) is the only state that lives outside the providers; losing it
orphans every chunk.  This module serializes
:meth:`CloudDataDistributor.export_metadata` snapshots to JSON on disk --
with integrity checksums -- so a distributor can restart, or a secondary
can bootstrap, from a file.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.core.distributor import CloudDataDistributor
from repro.util.atomic import atomic_write_text

FORMAT_VERSION = 1


class MetadataCorruptedError(RuntimeError):
    """The persisted metadata file failed its integrity check."""


def _canonical(snapshot) -> str:
    """Canonical JSON text of a snapshot, stable across save/load.

    A round-trip through JSON first so int dict keys become strings (as
    they will be after loading) before sorted serialization -- otherwise
    key order differs between the in-memory and reloaded forms.
    """
    return json.dumps(json.loads(json.dumps(snapshot)), sort_keys=True)


def save_metadata(distributor: CloudDataDistributor, path: str | Path) -> None:
    """Atomically and durably write the distributor's metadata to *path*.

    Routed through :func:`repro.util.atomic.atomic_write_text`: the
    snapshot is fsynced before the rename and the directory entry after
    it, so a power cut leaves either the previous snapshot or the new one
    -- never an empty or torn file under the final name.
    """
    snapshot = distributor.export_metadata()
    digest = hashlib.sha256(_canonical(snapshot).encode("utf-8")).hexdigest()
    document = {"version": FORMAT_VERSION, "sha256": digest, "metadata": snapshot}
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    atomic_write_text(path, json.dumps(document, sort_keys=True))


def _intify_keys(mapping: dict) -> dict:
    return {int(k): v for k, v in mapping.items()}


def load_metadata(distributor: CloudDataDistributor, path: str | Path) -> None:
    """Restore a distributor's metadata from a file written by
    :func:`save_metadata`.

    Verifies the integrity checksum and format version, then rebuilds the
    int-keyed structures JSON stringified.
    """
    try:
        document = json.loads(Path(path).read_text())
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        # Truncated or garbage file: surface it as corruption, not as a
        # parser traceback -- the operator's next stop is the .tmp/backup.
        raise MetadataCorruptedError(
            f"metadata file {path} is not valid JSON (truncated?): {exc}"
        ) from exc
    if not isinstance(document, dict):
        raise MetadataCorruptedError(
            f"metadata file {path} does not hold a JSON object"
        )
    if document.get("version") != FORMAT_VERSION:
        raise MetadataCorruptedError(
            f"unsupported metadata format version {document.get('version')!r}"
        )
    snapshot = document["metadata"]
    digest = hashlib.sha256(_canonical(snapshot).encode("utf-8")).hexdigest()
    if digest != document.get("sha256"):
        raise MetadataCorruptedError(f"metadata checksum mismatch in {path}")

    # JSON stringified the int keys; coerce them back before import.
    snapshot["provider_table"]["entries"] = _intify_keys(
        snapshot["provider_table"]["entries"]
    )
    snapshot["chunk_table"]["entries"] = _intify_keys(
        snapshot["chunk_table"]["entries"]
    )
    snapshot["chunk_state"] = _intify_keys(snapshot["chunk_state"])
    distributor.import_metadata(snapshot)
