"""Typed exception hierarchy for the distributor and provider layers."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class AuthenticationError(ReproError):
    """Unknown client or wrong password."""


class AuthorizationError(ReproError):
    """Password is valid but not privileged enough for the requested chunk."""


class UnknownClientError(AuthenticationError):
    """No such client is registered at the distributor."""


class UnknownFileError(ReproError):
    """The client has no file by that name."""


class UnknownChunkError(ReproError):
    """No chunk with that (filename, serial) or virtual id exists."""


class ProviderError(ReproError):
    """Base class for provider-side failures."""


class ProviderUnavailableError(ProviderError):
    """The provider is down (outage window / churned out)."""


class BlobNotFoundError(ProviderError):
    """The provider has no object under the requested key."""


class BlobCorruptedError(ProviderError):
    """The stored object failed its integrity check."""


class PlacementError(ReproError):
    """No eligible provider set satisfies the placement constraints."""


class ReconstructionError(ReproError):
    """Too many stripe members lost for the RAID level to recover."""


class DistributorUnavailableError(ReproError):
    """The (primary) distributor is offline and no secondary can serve."""


class DHTError(ReproError):
    """Lookup/maintenance failure inside a DHT overlay."""


class QuotaExceededError(AuthorizationError):
    """A tenant operation would exceed its configured fleet quota."""


class FleetError(ReproError):
    """Sharded-fleet control-plane failure (routing, membership, migration)."""
