"""Typed exception hierarchy for the distributor and provider layers."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class AuthenticationError(ReproError):
    """Unknown client or wrong password."""


class AuthorizationError(ReproError):
    """Password is valid but not privileged enough for the requested chunk."""


class UnknownClientError(AuthenticationError):
    """No such client is registered at the distributor."""


class UnknownFileError(ReproError):
    """The client has no file by that name."""


class UnknownChunkError(ReproError):
    """No chunk with that (filename, serial) or virtual id exists."""


class ProviderError(ReproError):
    """Base class for provider-side failures."""


class ProviderUnavailableError(ProviderError):
    """The provider is down (outage window / churned out)."""


class BlobNotFoundError(ProviderError):
    """The provider has no object under the requested key."""


class BlobCorruptedError(ProviderError):
    """The stored object failed its integrity check."""


class DeadlineExceeded(ProviderError):
    """The request's deadline expired before the operation completed.

    Subclasses :class:`ProviderError` deliberately: a deadline that
    expires mid-operation must flow through the same failover, degraded
    read, and rollback machinery a failed provider does -- the caller
    gave up, so grinding on (or crashing a transfer loop with an
    unexpected exception type) would be worse than failing the shard.
    """


class ResourceExhaustedError(ProviderUnavailableError):
    """The server shed the request at admission (overloaded).

    Carries an optional ``retry_after`` hint (seconds) the server attached
    to the rejection; retry loops honor it (with jitter) instead of their
    default backoff.  The request was never started, so retrying is safe.
    """

    def __init__(self, message: str, retry_after: float | None = None) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class RequestTooLargeError(ReproError):
    """A wire request exceeded the server's framing limit."""


class PlacementError(ReproError):
    """No eligible provider set satisfies the placement constraints."""


class UnknownCodecError(ReproError):
    """A chunk's stored codec spec cannot be parsed or instantiated.

    Raised when metadata (chunk table, journal, snapshot) names an erasure
    codec this build does not understand -- a corrupted level value or a
    spec written by a newer codec generation.  Carries enough context to
    classify the chunk instead of crashing the whole metadata load:
    ``spec`` is the offending codec string, ``filename`` the client file
    (or metadata file) it belongs to when known, ``virtual_id`` the chunk.
    """

    def __init__(
        self,
        message: str,
        *,
        spec: str | None = None,
        filename: str | None = None,
        virtual_id: int | None = None,
    ) -> None:
        super().__init__(message)
        self.spec = spec
        self.filename = filename
        self.virtual_id = virtual_id


class ReconstructionError(ReproError):
    """Too many stripe members lost for the RAID level to recover."""


class DistributorUnavailableError(ReproError):
    """The (primary) distributor is offline and no secondary can serve."""


class DHTError(ReproError):
    """Lookup/maintenance failure inside a DHT overlay."""


class QuotaExceededError(AuthorizationError):
    """A tenant operation would exceed its configured fleet quota."""


class FleetError(ReproError):
    """Sharded-fleet control-plane failure (routing, membership, migration)."""


class ShardUnavailable(FleetError):
    """The owning shard is degraded; writes fail fast instead of timing out.

    Reads are unaffected -- the gateway keeps them alive through its
    ``_locate`` fan-out -- so this is a *read-only degradation* verdict,
    not an outage.  Carries an optional ``retry_after`` hint mirroring
    :class:`ResourceExhaustedError`.
    """

    def __init__(self, message: str, retry_after: float | None = None) -> None:
        super().__init__(message)
        self.retry_after = retry_after
