"""Client-side façade (Section V's application architecture).

Applications "request for individual chunk by providing (client name,
password, filename, sl no.) or for all chunks of a file by providing
(client name, password, filename)".  :class:`CloudClient` packages that
quadruple-passing so application code reads naturally; it holds no secret
state beyond what the caller passes in.
"""

from __future__ import annotations

from typing import Protocol

from repro.core.distributor import FileReceipt, RepairReport
from repro.core.privacy import PrivacyLevel


class DistributorLike(Protocol):
    """Anything that speaks the distributor protocol (single or group)."""

    def register_client(self, name: str) -> None: ...
    def add_password(self, client: str, password: str, level) -> None: ...
    def upload_file(self, client, password, filename, data, level, **kw): ...
    def get_chunk(self, client, password, filename, serial) -> bytes: ...
    def get_file(self, client, password, filename) -> bytes: ...
    def remove_chunk(self, client, password, filename, serial) -> None: ...
    def remove_file(self, client, password, filename) -> None: ...
    def chunk_count(self, client, filename) -> int: ...


class CloudClient:
    """One client's handle on a distributor (or distributor group)."""

    def __init__(self, distributor: DistributorLike, name: str) -> None:
        self.distributor = distributor
        self.name = name

    @classmethod
    def register(
        cls,
        distributor: DistributorLike,
        name: str,
        passwords: dict[str, PrivacyLevel | int] | None = None,
    ) -> "CloudClient":
        """Create the account and attach its ⟨password, PL⟩ pairs."""
        distributor.register_client(name)
        for password, level in (passwords or {}).items():
            distributor.add_password(name, password, level)
        return cls(distributor, name)

    def add_password(self, password: str, level: PrivacyLevel | int) -> None:
        self.distributor.add_password(self.name, password, level)

    def upload(
        self,
        password: str,
        filename: str,
        data: bytes,
        level: PrivacyLevel | int,
        **kwargs,
    ) -> FileReceipt:
        return self.distributor.upload_file(
            self.name, password, filename, data, level, **kwargs
        )

    def download(self, password: str, filename: str) -> bytes:
        return self.distributor.get_file(self.name, password, filename)

    def download_chunk(self, password: str, filename: str, serial: int) -> bytes:
        return self.distributor.get_chunk(self.name, password, filename, serial)

    def remove(self, password: str, filename: str) -> None:
        self.distributor.remove_file(self.name, password, filename)

    def remove_chunk(self, password: str, filename: str, serial: int) -> None:
        self.distributor.remove_chunk(self.name, password, filename, serial)

    def update_chunk(
        self, password: str, filename: str, serial: int, new_payload: bytes
    ) -> None:
        self.distributor.update_chunk(
            self.name, password, filename, serial, new_payload
        )

    def chunk_count(self, filename: str) -> int:
        return self.distributor.chunk_count(self.name, filename)

    def repair(self, password: str, filename: str) -> RepairReport:
        return self.distributor.repair_file(self.name, password, filename)  # type: ignore[attr-defined]
