"""The Cloud Data Distributor (Sections IV-A, V and VI).

"Cloud Data Distributor is the entity that receives data (files) from
clients, performs fragmentation of data (splits files into chunks) and
distributes these fragments (chunks) among Cloud Providers.  It also
participates in data retrieving procedure...  Clients do not interact with
Cloud Providers directly rather via Cloud Data Distributor."

This module implements the abstract functions of Section VI --
``split``/``distribute`` for upload, ``get_chunk``/``get_file``/``get`` for
retrieval, ``remove_chunk``/``remove_file``/``remove`` for deletion -- plus
chunk modification with snapshotting, RAID repair, and the bookkeeping of
the three metadata tables.
"""

from __future__ import annotations

import contextlib
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, TypeVar

from repro.core import chunking
from repro.core.access_control import AccessController
from repro.core.audit import AuditLog
from repro.core.cache import ChunkCache
from repro.core.errors import (
    AuthorizationError,
    PlacementError,
    ProviderError,
    ReproError,
    UnknownChunkError,
)
from repro.core.misleading import inject, remove as remove_misleading
from repro.core.placement import PlacementPolicy
from repro.core.privacy import ChunkSizePolicy, PrivacyLevel
from repro.core.snapshots import SnapshotManager
from repro.core.tables import (
    ChunkEntry,
    ChunkTable,
    ClientTable,
    CloudProviderTable,
    FileChunkRef,
)
from repro.core.virtual_id import VirtualIdAllocator, shard_key
from repro.providers.registry import ProviderRegistry
from repro.providers.simulated import ParallelWindow, SimulatedProvider
from repro.raid.reconstruct import read_stripe, rebuild_shard
from repro.raid.striping import RaidLevel, StripeMeta, encode_stripe
from repro.util.rng import SeedLike, derive_rng, spawn_seeds


@dataclass(frozen=True)
class FileReceipt:
    """Returned to the client after upload: "The total number of chunks for
    each file is notified to the client so that any chunk can be asked by
    the client by mentioning the filename and serial no."""

    filename: str
    privacy_level: PrivacyLevel
    chunk_count: int
    file_size: int
    raid_level: RaidLevel
    stripe_width: int


@dataclass(frozen=True)
class RepairReport:
    """Outcome of a repair pass over one file."""

    filename: str
    chunks_checked: int
    shards_missing: int
    shards_rebuilt: int
    chunks_unrecoverable: int
    relocations: list[tuple[int, int, str, str]] = field(default_factory=list)
    # (virtual_id, shard_index, old_provider, new_provider)


@dataclass
class _ChunkState:
    """Distributor-private per-chunk state beyond the paper's Table III."""

    stripe: StripeMeta
    rotation: int


_T = TypeVar("_T")
_R = TypeVar("_R")


class CloudDataDistributor:
    """The agent of clients toward the provider fleet."""

    def __init__(
        self,
        registry: ProviderRegistry,
        chunk_policy: ChunkSizePolicy | None = None,
        placement: PlacementPolicy | None = None,
        raid_level: RaidLevel = RaidLevel.RAID5,
        stripe_width: int | None = None,
        seed: SeedLike = None,
        audit: "AuditLog | None" = None,
        cache: "ChunkCache | None" = None,
        max_transport_workers: int | None = None,
    ) -> None:
        seeds = spawn_seeds(seed, 3)
        self.audit = audit
        self.cache = cache
        self.registry = registry
        self.chunk_policy = chunk_policy or ChunkSizePolicy()
        self.placement = placement or PlacementPolicy(seed=seeds[0])
        self.default_raid_level = raid_level
        self.default_stripe_width = stripe_width
        self.ids = VirtualIdAllocator(seed=seeds[1])
        self._rng = derive_rng(seeds[2])

        self.access = AccessController()
        self.provider_table = CloudProviderTable()
        self.client_table = ClientTable()
        self.chunk_table = ChunkTable()
        self.snapshots = SnapshotManager(registry, self.placement)
        self._chunk_state: dict[int, _ChunkState] = {}
        if max_transport_workers is not None and max_transport_workers < 1:
            raise ValueError(
                f"max_transport_workers must be >= 1, got {max_transport_workers}"
            )
        self.max_transport_workers = max_transport_workers
        self._transport_pool: ThreadPoolExecutor | None = None

        for entry in registry.all():
            self.provider_table.add(
                entry.name, entry.privacy_level, entry.cost_level
            )

    # ------------------------------------------------------------------
    # client management
    # ------------------------------------------------------------------

    def register_client(self, name: str) -> None:
        """Create a client account (no credentials yet)."""
        self.access.register_client(name)
        self.client_table.add(name)

    def add_password(
        self, client: str, password: str, level: PrivacyLevel | int
    ) -> None:
        """Attach a ⟨password, PL⟩ pair to an existing client."""
        pl = PrivacyLevel.coerce(level)
        self.access.add_password(client, password, pl)
        self.client_table.get(client).password_levels.append(pl)

    # ------------------------------------------------------------------
    # internal helpers
    # ------------------------------------------------------------------

    def _authorize(
        self, client: str, password: str, level: PrivacyLevel | int
    ) -> None:
        if not self.access.is_authorized(client, password, level):
            raise AuthorizationError(
                f"password of client {client!r} is not privileged enough for "
                f"PL {int(PrivacyLevel.coerce(level))} data"
            )

    def _provider_load(self) -> dict[str, int]:
        return {
            entry.name: entry.count for _, entry in self.provider_table
        }

    def _audited(self, operation, client, filename, serial, fn):
        """Run *fn*, recording the outcome in the audit log (if attached)."""
        if self.audit is None:
            return fn()
        try:
            result = fn()
        except ReproError as exc:
            self.audit.record(
                operation, client, filename, serial,
                ok=False, detail=type(exc).__name__,
            )
            raise
        self.audit.record(operation, client, filename, serial, ok=True)
        return result

    def _parallel_window(self):
        """A context that charges overlapping provider requests as
        concurrent (Section VII-E's "parallel query processing").

        Falls back to a no-op when the fleet is not simulated-clock based.
        """
        for entry in self.registry.all():
            if isinstance(entry.provider, SimulatedProvider):
                return ParallelWindow(entry.provider.clock)
        return contextlib.nullcontext()

    # ------------------------------------------------------------------
    # transport executor (concurrent fan-out across providers)
    # ------------------------------------------------------------------

    def _transport_workers(self) -> int:
        """How many provider requests of one stripe may be in flight.

        Simulated fleets always run serially: their shared clock is not
        thread-safe and :class:`ParallelWindow` already models concurrency
        in simulated time, so threading them would double-count overlap.
        Real transports (remote/disk/memory) default to one worker per
        provider, capped at 8; ``max_transport_workers=1`` forces the
        serial path.
        """
        for entry in self.registry.all():
            if isinstance(entry.provider, SimulatedProvider):
                return 1
        if self.max_transport_workers is not None:
            return self.max_transport_workers
        return min(8, max(1, len(self.registry)))

    def _executor(self, workers: int) -> ThreadPoolExecutor:
        if self._transport_pool is None:
            self._transport_pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-transport"
            )
        return self._transport_pool

    def close(self) -> None:
        """Release the transport executor (idle fleets need no cleanup)."""
        if self._transport_pool is not None:
            self._transport_pool.shutdown(wait=True)
            self._transport_pool = None

    def __enter__(self) -> "CloudDataDistributor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _transport_map(
        self, fn: Callable[[_T], _R], items: list[_T]
    ) -> list[tuple[_R | None, ProviderError | None]]:
        """Run one provider request per item; returns (result, error) pairs.

        With multiple transport workers every request is dispatched at
        once and all outcomes are collected; on the serial path requests
        run in order and stop at the first failure (preserving the
        simulated-time cost of the historical serial loop), so the
        returned list may be shorter than *items*.
        """
        workers = self._transport_workers()
        if workers <= 1 or len(items) <= 1:
            outcomes: list[tuple[_R | None, ProviderError | None]] = []
            for item in items:
                try:
                    outcomes.append((fn(item), None))
                except ProviderError as exc:
                    outcomes.append((None, exc))
                    break
            return outcomes
        futures = [self._executor(workers).submit(fn, item) for item in items]
        outcomes = []
        for future in futures:
            try:
                outcomes.append((future.result(), None))
            except ProviderError as exc:
                outcomes.append((None, exc))
        return outcomes

    def _stripe_width_for(self, level: PrivacyLevel, raid: RaidLevel) -> int:
        if self.default_stripe_width is not None:
            return self.default_stripe_width
        available = self.placement.max_stripe_width(self.registry, level)
        # Spread as wide as the paper intends (more targets for the
        # attacker) but cap so huge fleets don't shred tiny chunks.
        return max(raid.min_width, min(available, 4))

    def _store_chunk(
        self,
        payload: bytes,
        level: PrivacyLevel,
        serial: int,
        raid: RaidLevel,
        width: int,
        misleading_fraction: float,
    ) -> int:
        """Encode, place and upload one chunk; returns its chunk-table index."""
        positions: tuple[int, ...] = ()
        stored = payload
        if misleading_fraction > 0:
            result = inject(payload, misleading_fraction, rng=self._rng)
            stored, positions = result.stored, result.positions

        meta, shards = encode_stripe(stored, raid, width)
        group = self.placement.stripe_group(
            self.registry, level, width, load=self._provider_load()
        )
        vid = self.ids.allocate()
        # Rotate the shard->provider assignment by serial so parity cycles
        # around the group, RAID-5 style.
        rotated = group[serial % width :] + group[: serial % width]

        def put_shard(assignment: tuple[int, str]) -> None:
            shard_index, provider_name = assignment
            self.registry.get(provider_name).provider.put(
                shard_key(vid, shard_index), shards[shard_index]
            )

        # Fan the shard uploads out across the stripe's providers (each
        # worker talks to a distinct provider); table bookkeeping stays on
        # this thread.
        outcomes = self._transport_map(put_shard, list(enumerate(rotated)))
        first_error = next((exc for _, exc in outcomes if exc is not None), None)
        if first_error is not None:
            # A stripe member failed mid-upload: roll the chunk back so no
            # partial state leaks into the tables or the fleet.
            for shard_index, (_, exc) in enumerate(outcomes):
                if exc is not None:
                    continue
                name = rotated[shard_index]
                with contextlib.suppress(ProviderError):
                    self.registry.get(name).provider.delete(
                        shard_key(vid, shard_index)
                    )
            self.ids.release(vid)
            raise first_error
        provider_indices: list[int] = []
        for shard_index, provider_name in enumerate(rotated):
            table_index = self.provider_table.index_of(provider_name)
            self.provider_table.record_store(
                table_index, shard_key(vid, shard_index)
            )
            provider_indices.append(table_index)

        chunk_index = self.chunk_table.add(
            ChunkEntry(
                virtual_id=vid,
                privacy_level=level,
                provider_indices=provider_indices,
                snapshot_index=None,
                misleading_positions=positions,
            )
        )
        self._chunk_state[vid] = _ChunkState(stripe=meta, rotation=serial % width)
        return chunk_index

    def _fetch_chunk_payload(self, entry: ChunkEntry) -> bytes:
        """Degraded-read a chunk's stripe and strip misleading bytes.

        Served from the chunk cache when attached (filled on miss,
        invalidated by update/remove).
        """
        if self.cache is not None:
            cached = self.cache.get(entry.virtual_id)
            if cached is not None:
                return cached
        state = self._chunk_state[entry.virtual_id]

        def fetch(shard_index: int) -> bytes:
            table_index = entry.provider_indices[shard_index]
            name = self.provider_table.get(table_index).name
            return self.registry.get(name).provider.get(
                shard_key(entry.virtual_id, shard_index)
            )

        if self._transport_workers() > 1 and state.stripe.k > 1:
            # Fan out the data-shard fetches across providers; parity is
            # still pulled lazily (and serially) only on degraded reads,
            # matching read_stripe's prefer-data order.
            data_indices = list(range(state.stripe.k))
            prefetched = dict(
                zip(data_indices, self._transport_map(fetch, data_indices))
            )

            def fetch_prefetched(shard_index: int) -> bytes:
                outcome = prefetched.get(shard_index)
                if outcome is None:
                    return fetch(shard_index)
                result, exc = outcome
                if exc is not None:
                    raise exc
                return result

            stored, _failed = read_stripe(state.stripe, fetch_prefetched)
        else:
            stored, _failed = read_stripe(state.stripe, fetch)
        payload = remove_misleading(stored, entry.misleading_positions)
        if self.cache is not None:
            self.cache.put(entry.virtual_id, payload)
        return payload

    # ------------------------------------------------------------------
    # upload path: split() + distribute()          (Section VI)
    # ------------------------------------------------------------------

    def upload_file(
        self,
        client: str,
        password: str,
        filename: str,
        data: bytes,
        level: PrivacyLevel | int,
        raid_level: RaidLevel | None = None,
        stripe_width: int | None = None,
        misleading_fraction: float = 0.0,
        parallel: bool = False,
    ) -> FileReceipt:
        """Receive a file, split it, and distribute the chunks.

        The client's password must be privileged for the file's privacy
        level.  Chunk size follows the PL schedule; each chunk is
        RAID-striped over a freshly chosen provider group.  With
        ``parallel=True`` shard uploads overlap across providers.
        """
        pl = PrivacyLevel.coerce(level)
        try:
            self._authorize(client, password, pl)
        except ReproError as exc:
            if self.audit is not None:
                self.audit.record("upload", client, filename, None,
                                  ok=False, detail=type(exc).__name__)
            raise
        client_entry = self.client_table.get(client)
        if any(ref.filename == filename for ref in client_entry.chunk_refs):
            raise ValueError(
                f"client {client!r} already stores a file named {filename!r}"
            )
        raid = raid_level or self.default_raid_level
        width = stripe_width or self._stripe_width_for(pl, raid)

        chunks = chunking.split(data, pl, policy=self.chunk_policy)
        window = self._parallel_window() if parallel else contextlib.nullcontext()
        stored_refs: list[FileChunkRef] = []
        try:
            with window:
                for chunk in chunks:
                    chunk_index = self._store_chunk(
                        chunk.payload, pl, chunk.serial, raid, width,
                        misleading_fraction,
                    )
                    ref = FileChunkRef(
                        filename=filename,
                        serial=chunk.serial,
                        privacy_level=pl,
                        chunk_index=chunk_index,
                    )
                    client_entry.chunk_refs.append(ref)
                    stored_refs.append(ref)
        except (ProviderError, PlacementError) as exc:
            # Roll back chunks already distributed so the upload is atomic:
            # either the whole file is stored or none of it is.
            for ref in stored_refs:
                self._delete_chunk(ref)
                client_entry.chunk_refs.remove(ref)
            if self.audit is not None:
                self.audit.record("upload", client, filename, None,
                                  ok=False, detail=type(exc).__name__)
            raise
        if self.audit is not None:
            self.audit.record("upload", client, filename, None, ok=True)
        return FileReceipt(
            filename=filename,
            privacy_level=pl,
            chunk_count=len(chunks),
            file_size=len(data),
            raid_level=raid,
            stripe_width=width,
        )

    # ------------------------------------------------------------------
    # retrieval path: get_chunk() / get_file()      (Sections V and VI)
    # ------------------------------------------------------------------

    def get_chunk(
        self, client: str, password: str, filename: str, serial: int
    ) -> bytes:
        """Fetch one chunk by (client name, password, filename, sl no.).

        Reproduces the paper's resolution chain: Client Table quadruple ->
        Chunk Table entry -> Cloud Provider Table row -> provider ``get``.
        """

        def work() -> bytes:
            ref = self.client_table.get(client).ref_for_chunk(filename, serial)
            self._authorize(client, password, ref.privacy_level)
            entry = self.chunk_table.get(ref.chunk_index)
            return self._fetch_chunk_payload(entry)

        return self._audited("get_chunk", client, filename, serial, work)

    def get_file(
        self, client: str, password: str, filename: str, parallel: bool = False
    ) -> bytes:
        """Fetch and reassemble every chunk of *filename*.

        With ``parallel=True`` the shard fetches of all chunks overlap
        across providers (one serial chain per provider), modelling the
        parallel query processing Section VII-E credits fragmentation
        with; simulated time drops to the critical path.
        """
        def work() -> bytes:
            refs = self.client_table.get(client).refs_for_file(filename)
            self._authorize(client, password, refs[0].privacy_level)
            window = (
                self._parallel_window() if parallel else contextlib.nullcontext()
            )
            with window:
                chunks = [
                    chunking.Chunk(
                        serial=ref.serial,
                        level=ref.privacy_level,
                        payload=self._fetch_chunk_payload(
                            self.chunk_table.get(ref.chunk_index)
                        ),
                    )
                    for ref in refs
                ]
            return chunking.join(chunks)

        return self._audited("get_file", client, filename, None, work)

    def chunk_count(self, client: str, filename: str) -> int:
        """How many chunks *filename* was split into (told to the client)."""
        return len(self.client_table.get(client).refs_for_file(filename))

    def list_files(self, client: str, password: str) -> list[str]:
        """Filenames the password may see (PL of file <= password PL)."""
        granted = self.access.authenticate(client, password)
        entry = self.client_table.get(client)
        return [
            name
            for name in entry.filenames()
            if int(entry.refs_for_file(name)[0].privacy_level) <= int(granted)
        ]

    # ------------------------------------------------------------------
    # removal path: remove_chunk() / remove_file()   (Section VI)
    # ------------------------------------------------------------------

    def _delete_chunk(self, ref: FileChunkRef) -> None:
        entry = self.chunk_table.get(ref.chunk_index)
        vid = entry.virtual_id
        for shard_index, table_index in enumerate(entry.provider_indices):
            name = self.provider_table.get(table_index).name
            key = shard_key(vid, shard_index)
            try:
                self.registry.get(name).provider.delete(key)
            except ProviderError:
                # Best effort: a down provider keeps a garbage shard keyed by
                # an id that no longer resolves to anything.
                pass
            self.provider_table.record_remove(table_index, key)
        if entry.snapshot_index is not None:
            name = self.provider_table.get(entry.snapshot_index).name
            try:
                self.snapshots.drop(name, vid)
            except ProviderError:
                pass
        self.chunk_table.remove(ref.chunk_index)
        del self._chunk_state[vid]
        if self.cache is not None:
            self.cache.invalidate(vid)
        self.ids.release(vid)

    def remove_chunk(
        self, client: str, password: str, filename: str, serial: int
    ) -> None:
        """Remove one chunk; forwarded to every stripe member."""

        def work() -> None:
            client_entry = self.client_table.get(client)
            ref = client_entry.ref_for_chunk(filename, serial)
            self._authorize(client, password, ref.privacy_level)
            self._delete_chunk(ref)
            client_entry.chunk_refs.remove(ref)

        self._audited("remove_chunk", client, filename, serial, work)

    def remove_file(self, client: str, password: str, filename: str) -> None:
        """Remove every chunk of *filename*."""

        def work() -> None:
            client_entry = self.client_table.get(client)
            refs = client_entry.refs_for_file(filename)
            self._authorize(client, password, refs[0].privacy_level)
            for ref in refs:
                self._delete_chunk(ref)
                client_entry.chunk_refs.remove(ref)

        self._audited("remove_file", client, filename, None, work)

    # ------------------------------------------------------------------
    # modification with snapshotting                (Table III's SP column)
    # ------------------------------------------------------------------

    def update_chunk(
        self,
        client: str,
        password: str,
        filename: str,
        serial: int,
        new_payload: bytes,
    ) -> None:
        """Replace a chunk's contents, snapshotting the pre-state first.

        The pre-modification payload is written to a snapshot provider
        (preferably outside the stripe group) and the Chunk Table's SP
        column updated, per Table III.
        """
        if self.audit is not None:
            return self._audited(
                "update_chunk", client, filename, serial,
                lambda: self._update_chunk_inner(
                    client, password, filename, serial, new_payload
                ),
            )
        return self._update_chunk_inner(
            client, password, filename, serial, new_payload
        )

    def _update_chunk_inner(
        self,
        client: str,
        password: str,
        filename: str,
        serial: int,
        new_payload: bytes,
    ) -> None:
        ref = self.client_table.get(client).ref_for_chunk(filename, serial)
        self._authorize(client, password, ref.privacy_level)
        entry = self.chunk_table.get(ref.chunk_index)
        vid = entry.virtual_id
        state = self._chunk_state[vid]

        pre_state = self._fetch_chunk_payload(entry)
        stripe_names = {
            self.provider_table.get(i).name for i in entry.provider_indices
        }
        snap_name = self.snapshots.choose_provider(
            entry.privacy_level, exclude=stripe_names, load=self._provider_load()
        )
        snap_table_index = self.provider_table.index_of(snap_name)
        if entry.snapshot_index is not None and entry.snapshot_index != snap_table_index:
            old_name = self.provider_table.get(entry.snapshot_index).name
            try:
                self.snapshots.drop(old_name, vid)
            except ProviderError:
                pass
        key = self.snapshots.write(snap_name, vid, pre_state)
        self.provider_table.record_store(snap_table_index, key)
        entry.snapshot_index = snap_table_index

        # Re-inject misleading bytes at the same budget the chunk had.
        positions: tuple[int, ...] = ()
        stored = new_payload
        if entry.misleading_positions:
            fraction = len(entry.misleading_positions) / max(
                1, state.stripe.orig_len - len(entry.misleading_positions)
            )
            result = inject(new_payload, fraction, rng=self._rng)
            stored, positions = result.stored, result.positions
        meta, shards = encode_stripe(
            stored, state.stripe.level, state.stripe.width
        )
        for shard_index, table_index in enumerate(entry.provider_indices):
            name = self.provider_table.get(table_index).name
            self.registry.get(name).provider.put(
                shard_key(vid, shard_index), shards[shard_index]
            )
        entry.misleading_positions = positions
        state.stripe = meta
        if self.cache is not None:
            self.cache.invalidate(vid)

    def get_snapshot(
        self, client: str, password: str, filename: str, serial: int
    ) -> bytes:
        """Read the pre-modification state of a chunk (if one exists)."""
        ref = self.client_table.get(client).ref_for_chunk(filename, serial)
        self._authorize(client, password, ref.privacy_level)
        entry = self.chunk_table.get(ref.chunk_index)
        if entry.snapshot_index is None:
            raise UnknownChunkError(
                f"chunk {serial} of {filename!r} has never been modified"
            )
        name = self.provider_table.get(entry.snapshot_index).name
        return self.snapshots.read(name, entry.virtual_id)

    # ------------------------------------------------------------------
    # RAID repair
    # ------------------------------------------------------------------

    def repair_file(self, client: str, password: str, filename: str) -> RepairReport:
        """Scrub every chunk of *filename*, rebuilding lost/corrupt shards.

        Shards on unavailable or damaged providers are regenerated from the
        surviving stripe members and relocated to a healthy eligible
        provider outside the current group.
        """
        refs = self.client_table.get(client).refs_for_file(filename)
        self._authorize(client, password, refs[0].privacy_level)
        missing = rebuilt = unrecoverable = 0
        relocations: list[tuple[int, int, str, str]] = []
        for ref in refs:
            entry = self.chunk_table.get(ref.chunk_index)
            state = self._chunk_state[entry.virtual_id]
            shards: dict[int, bytes] = {}
            bad: list[int] = []
            for shard_index, table_index in enumerate(entry.provider_indices):
                name = self.provider_table.get(table_index).name
                try:
                    shards[shard_index] = self.registry.get(name).provider.get(
                        shard_key(entry.virtual_id, shard_index)
                    )
                except ProviderError:
                    bad.append(shard_index)
            missing += len(bad)
            if not bad:
                continue
            if len(shards) < state.stripe.k:
                unrecoverable += 1
                continue
            group_names = {
                self.provider_table.get(i).name for i in entry.provider_indices
            }
            for shard_index in bad:
                old_table_index = entry.provider_indices[shard_index]
                old_name = self.provider_table.get(old_table_index).name
                new_name = self._choose_replacement(
                    entry.privacy_level, group_names, old_name
                )
                if new_name is None:
                    # No healthy eligible provider outside the stripe: the
                    # chunk stays degraded (still readable) until one heals.
                    continue
                shard = rebuild_shard(state.stripe, shard_index, shards)
                key = shard_key(entry.virtual_id, shard_index)
                self.registry.get(new_name).provider.put(key, shard)
                self.provider_table.record_remove(old_table_index, key)
                new_table_index = self.provider_table.index_of(new_name)
                self.provider_table.record_store(new_table_index, key)
                entry.provider_indices[shard_index] = new_table_index
                group_names.add(new_name)
                relocations.append(
                    (entry.virtual_id, shard_index, old_name, new_name)
                )
                rebuilt += 1
        return RepairReport(
            filename=filename,
            chunks_checked=len(refs),
            shards_missing=missing,
            shards_rebuilt=rebuilt,
            chunks_unrecoverable=unrecoverable,
            relocations=relocations,
        )

    def _choose_replacement(
        self, level: PrivacyLevel, group_names: set[str], failed_name: str
    ) -> str | None:
        """A healthy eligible provider to host a rebuilt shard.

        Returns ``None`` when no healthy eligible provider exists outside
        the stripe group and the failed provider itself is still down; the
        caller leaves the chunk degraded rather than doubling up shards on
        a surviving member (which would forfeit failure independence).
        """
        candidates = [
            c
            for c in self.placement.candidates(self.registry, level)
            if c.name not in group_names
        ]

        def healthy(name: str) -> bool:
            provider = self.registry.get(name).provider
            return getattr(provider, "available", True)

        candidates = [c for c in candidates if healthy(c.name)]
        if not candidates:
            if healthy(failed_name):
                return failed_name  # same provider recovered; re-store there
            return None
        load = self._provider_load()
        candidates.sort(key=lambda e: (int(e.cost_level), load.get(e.name, 0)))
        return candidates[0].name

    # ------------------------------------------------------------------
    # introspection used by experiments
    # ------------------------------------------------------------------

    def provider_loads(self) -> dict[str, int]:
        """Shard-object count per provider (Table I's Count column)."""
        return self._provider_load()

    # ------------------------------------------------------------------
    # metadata replication (Fig. 2 secondaries) and persistence
    # ------------------------------------------------------------------

    def export_metadata(self) -> dict:
        """Serializable snapshot of all distributor metadata.

        Covers the three tables, hashed credentials, virtual-id state and
        per-chunk stripe geometry -- everything a secondary distributor
        needs to serve retrievals, and everything persistence needs to
        survive a restart.  Provider *data* stays at the providers.
        """
        return {
            "access": self.access.export_state(),
            "provider_table": self.provider_table.export_state(),
            "client_table": self.client_table.export_state(),
            "chunk_table": self.chunk_table.export_state(),
            "ids": self.ids.export_state(),
            "chunk_state": {
                vid: (
                    state.stripe.level.value,
                    state.stripe.width,
                    state.stripe.k,
                    state.stripe.m,
                    state.stripe.shard_size,
                    state.stripe.orig_len,
                    state.rotation,
                )
                for vid, state in self._chunk_state.items()
            },
        }

    def import_metadata(self, snapshot: dict) -> None:
        """Replace this distributor's metadata with an exported snapshot."""
        if self.cache is not None:
            # Chunks may have been updated at the snapshot's source; a
            # stale local cache must not outlive the old metadata.
            self.cache.clear()
        self.access.import_state(snapshot["access"])
        self.provider_table.import_state(snapshot["provider_table"])
        self.client_table.import_state(snapshot["client_table"])
        self.chunk_table.import_state(snapshot["chunk_table"])
        self.ids.import_state(snapshot["ids"])
        self._chunk_state = {
            int(vid): _ChunkState(
                stripe=StripeMeta(
                    level=RaidLevel(level),
                    width=width,
                    k=k,
                    m=m,
                    shard_size=shard_size,
                    orig_len=orig_len,
                ),
                rotation=rotation,
            )
            for vid, (level, width, k, m, shard_size, orig_len, rotation)
            in snapshot["chunk_state"].items()
        }

    def stripe_meta(self, client: str, filename: str, serial: int) -> StripeMeta:
        ref = self.client_table.get(client).ref_for_chunk(filename, serial)
        entry = self.chunk_table.get(ref.chunk_index)
        return self._chunk_state[entry.virtual_id].stripe
