"""The Cloud Data Distributor (Sections IV-A, V and VI).

"Cloud Data Distributor is the entity that receives data (files) from
clients, performs fragmentation of data (splits files into chunks) and
distributes these fragments (chunks) among Cloud Providers.  It also
participates in data retrieving procedure...  Clients do not interact with
Cloud Providers directly rather via Cloud Data Distributor."

This module implements the abstract functions of Section VI --
``split``/``distribute`` for upload, ``get_chunk``/``get_file``/``get`` for
retrieval, ``remove_chunk``/``remove_file``/``remove`` for deletion -- plus
chunk modification with snapshotting, RAID repair, and the bookkeeping of
the three metadata tables.
"""

from __future__ import annotations

import contextlib
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, TypeVar

from repro.core import chunking
from repro.core.access_control import AccessController
from repro.core.audit import AuditLog
from repro.core.cache import ChunkCache
from repro.core.errors import (
    AuthorizationError,
    BlobCorruptedError,
    BlobNotFoundError,
    PlacementError,
    ProviderError,
    ReproError,
    UnknownChunkError,
    UnknownCodecError,
)
from repro.health.monitor import HealthMonitor
from repro.core.misleading import inject, remove as remove_misleading
from repro.obs.events import EventLog, get_events
from repro.obs.metrics import MetricsRegistry, get_metrics
from repro.obs.trace import Tracer, get_tracer
from repro.core.placement import PlacementPolicy
from repro.core.privacy import ChunkSizePolicy, PrivacyLevel
from repro.core.snapshots import SnapshotManager
from repro.core.tables import (
    ChunkEntry,
    ChunkTable,
    ClientTable,
    CloudProviderTable,
    FileChunkRef,
)
from repro.core.virtual_id import VirtualIdAllocator, shard_key, snapshot_key
from repro.providers.base import blob_checksum
from repro.providers.registry import ProviderRegistry
from repro.providers.simulated import ParallelWindow, SimulatedProvider
from repro.raid.codecs import (
    CodecSpec,
    ErasureCodec,
    codec_for_meta,
    stripe_meta_from_fields,
)
from repro.raid.reconstruct import read_stripe, rebuild_shard
from repro.raid.striping import RaidLevel, StripeMeta
from repro.net.resilience import current_retry_budget, retry_budget_scope
from repro.util.crash import crashpoint
from repro.util.deadline import check_deadline, current_deadline, deadline_scope
from repro.util.rng import SeedLike, derive_rng, spawn_seeds

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.journal import IntentJournal

#: Mean segment size (bytes) above which a streaming window's per-provider
#: shard batch travels over STREAM_PUT/STREAM_GET instead of a MULTI_PUT/
#: MULTI_GET frame.  Both move exactly one window's shards -- O(window)
#: memory either way -- but the stream ops pay per-segment framing (and an
#: ack per uploaded segment), which dominates shards much smaller than
#: this, while large segments win from zero-copy framing (the MULTI ops
#: materialize the aggregate payload on one side or the other).
STREAM_SEGMENT_THRESHOLD = 64 * 1024


@dataclass(frozen=True)
class FileReceipt:
    """Returned to the client after upload: "The total number of chunks for
    each file is notified to the client so that any chunk can be asked by
    the client by mentioning the filename and serial no."""

    filename: str
    privacy_level: PrivacyLevel
    chunk_count: int
    file_size: int
    raid_level: RaidLevel | None
    stripe_width: int
    # Codec family label ("raid5", "rs(6,3)", "aont-rs(4,2)").  For the
    # raid families ``raid_level`` is also set; for the general codecs it
    # is None and ``codec`` is the only authoritative description.
    codec: str = ""


@dataclass(frozen=True)
class RepairReport:
    """Outcome of a repair pass over one file."""

    filename: str
    chunks_checked: int
    shards_missing: int
    shards_rebuilt: int
    chunks_unrecoverable: int
    relocations: list[tuple[int, int, str, str]] = field(default_factory=list)
    # (virtual_id, shard_index, old_provider, new_provider)


@dataclass
class _ChunkState:
    """Distributor-private per-chunk state beyond the paper's Table III.

    ``shard_checksums`` records each shard's end-to-end checksum at write
    time, so reads and the scrubber can detect silent corruption a
    provider never reports (``None`` for chunks imported from metadata
    snapshots that predate checksum tracking).
    """

    stripe: StripeMeta
    rotation: int
    shard_checksums: tuple[str, ...] | None = None


@dataclass
class _ChunkPlan:
    """One chunk's placement decision, staged before any bytes move.

    The pipelined upload path makes every placement decision (and rng
    draw) inside the critical section, in the same order the historical
    chunk-serial loop did, then transfers all plans lock-free.  ``failed``
    collects shard indices whose put did not land anywhere; ``assigned``
    is updated in place by write-path failover.
    """

    serial: int
    level: PrivacyLevel
    vid: int
    stripe: StripeMeta
    shards: list[bytes]
    assigned: list[str]
    positions: tuple[int, ...]
    failed: list[int] = field(default_factory=list)
    first_error: ProviderError | None = None
    # Shard checksums computed ahead of commit.  The streaming upload path
    # fills this right after transfer and drops ``shards`` so a committed
    # window's bytes do not outlive their window; ``None`` means commit
    # derives them from ``shards`` as usual.
    checksums: tuple[str, ...] | None = None


@dataclass
class _FetchJob:
    """One chunk's retrieval state for the pipelined read path."""

    serial: int
    entry: ChunkEntry
    state: _ChunkState
    names: list[str]
    cached: bytes | None = None
    prefetched: dict = field(default_factory=dict)
    # shard_index -> bytes | ProviderError (filled by the batched phase)


_T = TypeVar("_T")
_R = TypeVar("_R")


class CloudDataDistributor:
    """The agent of clients toward the provider fleet."""

    def __init__(
        self,
        registry: ProviderRegistry,
        chunk_policy: ChunkSizePolicy | None = None,
        placement: PlacementPolicy | None = None,
        raid_level: RaidLevel = RaidLevel.RAID5,
        stripe_width: int | None = None,
        codec: "CodecSpec | str | None" = None,
        seed: SeedLike = None,
        audit: "AuditLog | None" = None,
        cache: "ChunkCache | None" = None,
        max_transport_workers: int | None = None,
        health: "HealthMonitor | None" = None,
        pipelined: bool = True,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        events: EventLog | None = None,
        journal: "IntentJournal | None" = None,
    ) -> None:
        seeds = spawn_seeds(seed, 3)
        self.audit = audit
        self.cache = cache
        # Optional write-ahead intent journal: upload/update/remove become
        # recoverable transactions (see repro.core.journal).  None keeps
        # the historical fire-and-forget behaviour.
        self.journal = journal
        self.registry = registry
        # Telemetry sinks default to the process-wide singletons so every
        # component reports into the same registry; tests inject their own.
        self.metrics = metrics if metrics is not None else get_metrics()
        self.tracer = tracer if tracer is not None else get_tracer()
        self.events = events if events is not None else get_events()
        # Every distributor tracks fleet health from its own traffic; pass
        # a shared monitor to pool evidence across distributors.
        self.health = (
            health
            if health is not None
            else HealthMonitor(registry, metrics=self.metrics)
        )
        # Serializes table mutation between client ops and the background
        # scrubber; provider I/O inside an op may still fan out.
        self.op_lock = threading.RLock()
        self.chunk_policy = chunk_policy or ChunkSizePolicy()
        self.placement = placement or PlacementPolicy(seed=seeds[0])
        self.default_raid_level = raid_level
        self.default_stripe_width = stripe_width
        # Default codec spec; ``codec=`` takes precedence over the legacy
        # raid_level/stripe_width pair when both are configured.
        self.default_codec: CodecSpec | None = (
            CodecSpec.coerce(codec) if codec is not None else None
        )
        # Chunks whose metadata names a codec this build cannot parse:
        # vid -> the raw packed chunk-state tuple, preserved verbatim so
        # export round-trips it untouched.  Reads/repairs of these chunks
        # raise UnknownCodecError; fsck classifies them.
        self._codec_quarantine: dict[int, tuple] = {}
        self.ids = VirtualIdAllocator(seed=seeds[1])
        self._rng = derive_rng(seeds[2])

        self.access = AccessController()
        self.provider_table = CloudProviderTable()
        self.client_table = ClientTable()
        self.chunk_table = ChunkTable()
        self.snapshots = SnapshotManager(registry, self.placement)
        self._chunk_state: dict[int, _ChunkState] = {}
        if max_transport_workers is not None and max_transport_workers < 1:
            raise ValueError(
                f"max_transport_workers must be >= 1, got {max_transport_workers}"
            )
        self.max_transport_workers = max_transport_workers
        self._transport_pool: ThreadPoolExecutor | None = None
        # Default for the per-call ``pipelined`` switch on upload_file /
        # get_file; False restores the historical chunk-serial data path
        # (the benchmark gate measures both against the same fleet).
        self.pipelined = pipelined
        # Filenames with an upload in flight per client: the duplicate-name
        # check must hold across the lock-free transfer phase.
        self._inflight_uploads: dict[str, set[str]] = {}
        # Per-thread scratch pad for the virtual ids / providers an op
        # touches, drained into its audit record (the provider-sweep
        # anomaly queries key on them).
        self._audit_note = threading.local()

        for entry in registry.all():
            self.provider_table.add(
                entry.name, entry.privacy_level, entry.cost_level
            )

    # ------------------------------------------------------------------
    # client management
    # ------------------------------------------------------------------

    def register_client(self, name: str) -> None:
        """Create a client account (no credentials yet)."""
        self.access.register_client(name)
        self.client_table.add(name)

    def add_password(
        self, client: str, password: str, level: PrivacyLevel | int
    ) -> None:
        """Attach a ⟨password, PL⟩ pair to an existing client."""
        pl = PrivacyLevel.coerce(level)
        self.access.add_password(client, password, pl)
        self.client_table.get(client).password_levels.append(pl)

    # ------------------------------------------------------------------
    # internal helpers
    # ------------------------------------------------------------------

    def _authorize(
        self, client: str, password: str, level: PrivacyLevel | int
    ) -> None:
        if not self.access.is_authorized(client, password, level):
            raise AuthorizationError(
                f"password of client {client!r} is not privileged enough for "
                f"PL {int(PrivacyLevel.coerce(level))} data"
            )

    def _provider_load(self) -> dict[str, int]:
        return {
            entry.name: entry.count for _, entry in self.provider_table
        }

    # -- health accounting -------------------------------------------------

    def _record_health(
        self, name: str, ok: bool, exc: Exception | None = None
    ) -> None:
        """Feed one live-traffic outcome into the fleet health monitor.

        Missing or corrupt blobs are data problems, not transport ones:
        they raise the provider's error EWMA (toward SUSPECT) without
        counting toward the consecutive-failure DOWN verdict.
        """
        if self.health is None or name not in self.registry:
            return
        if ok:
            self.health.record_success(name)
        else:
            transport = not isinstance(
                exc, (BlobNotFoundError, BlobCorruptedError)
            )
            self.health.record_failure(name, transport=transport)

    def _provider_put(self, name: str, key: str, data: bytes) -> None:
        # Deadline check sits *outside* the try: an expired caller budget
        # is the caller's verdict, not provider evidence, so it must not
        # feed the health monitor a false transport failure.
        check_deadline(f"put {key} -> {name}")
        try:
            self.registry.get(name).provider.put(key, data)
        except ProviderError as exc:
            self._record_health(name, ok=False, exc=exc)
            raise
        self._record_health(name, ok=True)

    def _provider_get(self, name: str, key: str) -> bytes:
        check_deadline(f"get {key} <- {name}")
        try:
            data = self.registry.get(name).provider.get(key)
        except ProviderError as exc:
            self._record_health(name, ok=False, exc=exc)
            raise
        self._record_health(name, ok=True)
        return data

    def _provider_put_many(
        self, name: str, items: list[tuple[str, bytes]]
    ) -> list[ProviderError | None]:
        """Batched put with per-item health accounting.

        A transport-level batch failure (the provider raised instead of
        answering per item) condemns every item -- each failed shard is a
        real failed store, so each feeds the monitor, exactly as the
        equivalent run of individual puts would have.
        """
        check_deadline(f"put_many ({len(items)} items) -> {name}")
        try:
            outcomes = self.registry.get(name).provider.put_many(items)
        except ProviderError as exc:
            outcomes = [exc] * len(items)
        for exc in outcomes:
            self._record_health(name, ok=exc is None, exc=exc)
        return outcomes

    def _provider_get_many(
        self, name: str, keys: list[str]
    ) -> list["bytes | ProviderError"]:
        """Batched get with per-item health accounting."""
        check_deadline(f"get_many ({len(keys)} keys) <- {name}")
        try:
            outcomes = self.registry.get(name).provider.get_many(keys)
        except ProviderError as exc:
            outcomes = [exc] * len(keys)
        for outcome in outcomes:
            ok = not isinstance(outcome, ProviderError)
            self._record_health(name, ok=ok, exc=None if ok else outcome)
        return outcomes

    def _provider_put_stream(
        self, name: str, items: list[tuple[str, bytes]]
    ) -> list[ProviderError | None]:
        """Streamed put with the same health accounting as the batch form.

        One streaming window's shards for one provider; on wire-backed
        providers each shard travels as its own frame instead of one
        aggregate MULTI_PUT payload.
        """
        check_deadline(f"put_stream ({len(items)} items) -> {name}")
        try:
            outcomes = self.registry.get(name).provider.put_stream(items)
        except ProviderError as exc:
            outcomes = [exc] * len(items)
        for exc in outcomes:
            self._record_health(name, ok=exc is None, exc=exc)
        return outcomes

    def _provider_get_stream(
        self, name: str, keys: list[str]
    ) -> list["bytes | ProviderError"]:
        """Streamed get with per-item health accounting."""
        check_deadline(f"get_stream ({len(keys)} keys) <- {name}")
        try:
            outcomes = self.registry.get(name).provider.get_stream(keys)
        except ProviderError as exc:
            outcomes = [exc] * len(keys)
        for outcome in outcomes:
            ok = not isinstance(outcome, ProviderError)
            self._record_health(name, ok=ok, exc=None if ok else outcome)
        return outcomes

    def _provider_usable(self, name: str) -> bool:
        """Is *name* currently a sane target for new shard bytes?

        The simulated ``available`` flag is authoritative when present;
        otherwise the health monitor's evidence-based verdict decides
        (with an active probe when the monitor has marked the provider
        DOWN, so recovered providers come back without manual action).
        """
        provider = self.registry.get(name).provider
        available = getattr(provider, "available", True)
        if not callable(available) and not available:
            return False
        if self.health is not None:
            return self.health.is_usable(name)
        from repro.health.monitor import probe_provider

        return probe_provider(provider)

    @contextlib.contextmanager
    def _phase(self, op: str, phase: str):
        """Time one data-path phase: a trace span plus a latency histogram.

        The histogram always fires; the span is a no-op outside a trace.
        """
        t0 = time.perf_counter()
        with self.tracer.span(f"{op}.{phase}"):
            try:
                yield
            finally:
                self.metrics.histogram(
                    "distributor_phase_seconds", op=op, phase=phase
                ).observe(time.perf_counter() - t0)

    def _note_audit(self, vids=(), providers=()) -> None:
        """Remember virtual ids / provider names the current op touched."""
        cell = self._audit_note
        if not hasattr(cell, "vids"):
            cell.vids, cell.providers = set(), set()
        cell.vids.update(vids)
        cell.providers.update(providers)

    def _drain_audit_note(self) -> tuple[tuple[int, ...], tuple[str, ...]]:
        cell = self._audit_note
        vids = tuple(sorted(getattr(cell, "vids", ())))
        providers = tuple(sorted(getattr(cell, "providers", ())))
        cell.vids, cell.providers = set(), set()
        return vids, providers

    def _record_op(
        self,
        operation: str,
        client: str,
        filename: str | None,
        serial: int | None,
        ok: bool,
        detail: str = "",
    ) -> None:
        """Count one finished client op and (if attached) audit it."""
        vids, providers = self._drain_audit_note()
        self.metrics.counter(
            "distributor_ops_total",
            op=operation,
            status="ok" if ok else "error",
        ).inc()
        if self.audit is not None:
            self.audit.record(
                operation, client, filename, serial,
                ok=ok, detail=detail,
                virtual_ids=vids, providers=providers,
            )

    def _audited(self, operation, client, filename, serial, fn):
        """Run *fn*, counting the outcome and recording it in the audit log."""
        with self.tracer.span(f"distributor.{operation}", client=client):
            try:
                result = fn()
            except ReproError as exc:
                self._record_op(
                    operation, client, filename, serial,
                    ok=False, detail=type(exc).__name__,
                )
                raise
            self._record_op(operation, client, filename, serial, ok=True)
        return result

    def _parallel_window(self):
        """A context that charges overlapping provider requests as
        concurrent (Section VII-E's "parallel query processing").

        Falls back to a no-op when the fleet is not simulated-clock based.
        """
        for entry in self.registry.all():
            if isinstance(entry.provider, SimulatedProvider):
                return ParallelWindow(entry.provider.clock)
        return contextlib.nullcontext()

    # ------------------------------------------------------------------
    # transport executor (concurrent fan-out across providers)
    # ------------------------------------------------------------------

    def _transport_workers(self) -> int:
        """How many provider requests of one stripe may be in flight.

        Simulated fleets always run serially: their shared clock is not
        thread-safe and :class:`ParallelWindow` already models concurrency
        in simulated time, so threading them would double-count overlap.
        Real transports (remote/disk/memory) default to one worker per
        provider, capped at 8; ``max_transport_workers=1`` forces the
        serial path.
        """
        for entry in self.registry.all():
            if isinstance(entry.provider, SimulatedProvider):
                return 1
        if self.max_transport_workers is not None:
            return self.max_transport_workers
        return min(8, max(1, len(self.registry)))

    def _executor(self, workers: int) -> ThreadPoolExecutor:
        if self._transport_pool is None:
            self._transport_pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-transport"
            )
        return self._transport_pool

    def close(self) -> None:
        """Release the transport executor (idle fleets need no cleanup)."""
        if self._transport_pool is not None:
            self._transport_pool.shutdown(wait=True)
            self._transport_pool = None

    def __enter__(self) -> "CloudDataDistributor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _transport_map(
        self,
        fn: Callable[[_T], _R],
        items: list[_T],
        stop_on_error: bool = True,
    ) -> list[tuple[_R | None, ProviderError | None]]:
        """Run one provider request per item; returns (result, error) pairs.

        With multiple transport workers every request is dispatched at
        once and all outcomes are collected; on the serial path requests
        run in order and -- when ``stop_on_error`` is set -- stop at the
        first failure (preserving the simulated-time cost of the
        historical serial loop), so the returned list may be shorter than
        *items*.  Callers that must attempt every item (write failover,
        scrub audits, repair reads) pass ``stop_on_error=False``.
        """
        workers = self._transport_workers()
        if workers <= 1 or len(items) <= 1:
            outcomes: list[tuple[_R | None, ProviderError | None]] = []
            for item in items:
                try:
                    outcomes.append((fn(item), None))
                except ProviderError as exc:
                    outcomes.append((None, exc))
                    if stop_on_error:
                        break
            return outcomes
        # Pool workers have no active span; hand them the dispatching
        # thread's context so their net spans (and TRACED wire contexts)
        # stay inside this request's trace.  The ambient deadline and
        # retry budget are thread-local for the same reason -- capture
        # them here so every parallel leg races the *same* clock and
        # spends from the *same* budget as the serial path would.
        captured = self.tracer.capture()
        deadline = current_deadline()
        budget = current_retry_budget()

        def run(item: _T) -> _R:
            with self.tracer.adopt(captured):
                with deadline_scope(deadline), retry_budget_scope(budget):
                    return fn(item)

        futures = [self._executor(workers).submit(run, item) for item in items]
        outcomes = []
        for future in futures:
            try:
                outcomes.append((future.result(), None))
            except ProviderError as exc:
                outcomes.append((None, exc))
        return outcomes

    def _stripe_width_for(
        self, level: PrivacyLevel, spec: "CodecSpec | RaidLevel"
    ) -> int:
        """Pick a stripe width for a codec spec that leaves it open.

        *spec* is anything exposing ``min_width`` (a :class:`CodecSpec`
        or, for legacy callers, a bare :class:`RaidLevel`).
        """
        if self.default_stripe_width is not None:
            return self.default_stripe_width
        available = self.placement.max_stripe_width(
            self.registry, level, health=self.health
        )
        # Spread as wide as the paper intends (more targets for the
        # attacker) but cap so huge fleets don't shred tiny chunks.
        return max(spec.min_width, min(available, 4))

    def _resolve_codec(
        self,
        level: PrivacyLevel,
        raid_level: RaidLevel | None,
        stripe_width: int | None,
        codec: "CodecSpec | str | None",
    ) -> ErasureCodec:
        """Resolve per-call codec/raid/width arguments into a codec.

        Precedence: explicit ``codec=``, then explicit ``raid_level=``,
        then the distributor-level ``codec=`` default, then the legacy
        ``raid_level`` default.  ``stripe_width`` applies to raid-family
        specs (the rs families fix their width at k+m and reject a
        conflicting one).  Must run inside the critical section when no
        explicit width is given (placement reads fleet state).
        """
        if codec is not None:
            spec = CodecSpec.coerce(codec)
            if raid_level is not None and spec.raid_level is not raid_level:
                raise ValueError(
                    f"conflicting codec={spec.canonical()!r} and "
                    f"raid_level={raid_level.name}; pass one"
                )
        elif raid_level is not None:
            spec = CodecSpec(family=raid_level.value)
        elif self.default_codec is not None:
            spec = self.default_codec
        else:
            spec = CodecSpec(family=self.default_raid_level.value)
        fixed = spec.fixed_width
        if fixed is not None:
            if stripe_width is not None and stripe_width != fixed:
                raise ValueError(
                    f"codec {spec.canonical()} fixes stripe width {fixed}, "
                    f"got stripe_width={stripe_width}"
                )
            return spec.instantiate()
        width = (
            stripe_width
            if stripe_width is not None
            else self._stripe_width_for(level, spec)
        )
        return spec.instantiate(width)

    def _chunk_state_for(
        self, entry: ChunkEntry, filename: str | None = None
    ) -> _ChunkState:
        """The chunk's stripe state, or a typed error for quarantined chunks."""
        state = self._chunk_state.get(entry.virtual_id)
        if state is None:
            packed = self._codec_quarantine.get(entry.virtual_id)
            if packed is not None:
                raise UnknownCodecError(
                    f"chunk {entry.virtual_id} uses codec {packed[0]!r} "
                    f"unknown to this build; quarantined at metadata load",
                    spec=str(packed[0]),
                    filename=filename,
                    virtual_id=entry.virtual_id,
                )
            raise KeyError(entry.virtual_id)
        return state

    def _plan_chunk(
        self,
        payload: bytes,
        level: PrivacyLevel,
        serial: int,
        codec: ErasureCodec,
        misleading_fraction: float,
        load: dict[str, int],
    ) -> _ChunkPlan:
        """Encode and place one chunk without moving any bytes.

        Must run inside the critical section: it consumes rng draws
        (misleading injection, placement) and allocates a virtual id, in
        exactly the order the chunk-serial loop did, so a fault-free
        pipelined upload lands byte-identical placement and tables.
        *load* is the caller's view of per-provider shard counts --
        pipelined planning passes a working copy it advances per plan,
        reproducing the loads the serial path would have observed.
        """
        positions: tuple[int, ...] = ()
        stored = payload
        if misleading_fraction > 0:
            result = inject(payload, misleading_fraction, rng=self._rng)
            stored, positions = result.stored, result.positions

        meta, shards = codec.encode(stored)
        width = codec.n
        group = self.placement.stripe_group(
            self.registry, level, width, load=load, health=self.health,
        )
        vid = self.ids.allocate()
        # Rotate the shard->provider assignment by serial so parity cycles
        # around the group, RAID-5 style.
        assigned = group[serial % width :] + group[: serial % width]
        return _ChunkPlan(
            serial=serial,
            level=level,
            vid=vid,
            stripe=meta,
            shards=shards,
            assigned=assigned,
            positions=positions,
        )

    def _transfer_plan(self, plan: _ChunkPlan) -> None:
        """Upload one plan's shards, one wire request per shard.

        This is the historical (non-batched) wire behaviour, kept for the
        ``pipelined=False`` compatibility path and measured against the
        batched path by the throughput benchmark.
        """

        def put_shard(assignment: tuple[int, str]) -> None:
            shard_index, provider_name = assignment
            self._provider_put(
                provider_name,
                shard_key(plan.vid, shard_index),
                plan.shards[shard_index],
            )

        # Fan the shard uploads out across the stripe's providers (each
        # worker talks to a distinct provider); table bookkeeping stays on
        # this thread.  Every shard is attempted even when one fails, so
        # failover sees the full damage at once.
        outcomes = self._transport_map(
            put_shard, list(enumerate(plan.assigned)), stop_on_error=False
        )
        plan.first_error = next(
            (exc for _, exc in outcomes if exc is not None), None
        )
        plan.failed = [i for i, (_, exc) in enumerate(outcomes) if exc is not None]

    def _transfer_plans(
        self, plans: list[_ChunkPlan], *, use_stream: bool = False
    ) -> None:
        """Upload many plans' shards, one batched request per provider.

        All shards bound for one provider across the whole upload window
        coalesce into a single MULTI_PUT round-trip (or a per-item loop on
        backends without a wire), and the per-provider batches fan out
        concurrently over the transport executor -- chunk-level and
        shard-level parallelism at once, with no per-chunk barrier.  With
        ``use_stream`` each provider's shards travel over a STREAM_PUT
        session (one frame per shard, no aggregate batch payload) --
        the constant-memory upload path.
        """
        by_provider: dict[str, list[tuple[_ChunkPlan, int]]] = {}
        for plan in plans:
            for shard_index, name in enumerate(plan.assigned):
                by_provider.setdefault(name, []).append((plan, shard_index))

        groups = list(by_provider.items())

        def put_batch(
            group: tuple[str, list[tuple[_ChunkPlan, int]]]
        ) -> list[ProviderError | None]:
            name, members = group
            items = [
                (shard_key(plan.vid, shard_index), plan.shards[shard_index])
                for plan, shard_index in members
            ]
            if use_stream and (
                sum(len(data) for _, data in items)
                >= STREAM_SEGMENT_THRESHOLD * len(items)
            ):
                return self._provider_put_stream(name, items)
            # Tiny segments ride the batched frame even on the streaming
            # path: the batch is still just one window's shards for one
            # provider (same O(window) bound), and per-segment stream
            # acks would dominate shard bytes this small.
            return self._provider_put_many(name, items)

        outcomes = self._transport_map(put_batch, groups, stop_on_error=False)
        for (name, members), (per_item, exc) in zip(groups, outcomes):
            if exc is not None:
                per_item = [exc] * len(members)
            for (plan, shard_index), item_exc in zip(members, per_item):
                if item_exc is not None:
                    plan.failed.append(shard_index)
                    if plan.first_error is None:
                        plan.first_error = item_exc
        for plan in plans:
            plan.failed.sort()

    def _recover_plan(self, plan: _ChunkPlan) -> bool:
        """Failover a plan's failed shards; returns True if the chunk is lost.

        The terminal case -- fewer than k shards landed anywhere -- is
        reported, not raised: the caller decides the rollback scope (the
        single chunk on the legacy path, the whole upload window on the
        pipelined path).
        """
        if plan.failed:
            # Write-path failover: re-place only the failed shards on
            # alternate healthy eligible providers instead of aborting the
            # whole chunk.
            plan.failed = self._failover_shards(
                plan.vid, plan.level, plan.shards, plan.assigned, plan.failed
            )
        return bool(plan.failed) and (
            len(plan.assigned) - len(plan.failed) < plan.stripe.k
        )

    def _rollback_plan(self, plan: _ChunkPlan) -> None:
        """Best-effort removal of a plan's fleet footprint; frees its id.

        Safe to call lock-free (the pipelined abort path does): only the
        id allocator touch re-enters the critical section.
        """
        self.metrics.counter("distributor_rollbacks_total").inc()
        self.events.emit("upload_rollback", level="warning", vid=plan.vid)
        for shard_index, name in enumerate(plan.assigned):
            with contextlib.suppress(ProviderError):
                self.registry.get(name).provider.delete(
                    shard_key(plan.vid, shard_index)
                )
        with self.op_lock:
            self.ids.release(plan.vid)

    def _commit_plan(self, plan: _ChunkPlan) -> int:
        """Record a transferred plan in the tables; returns its chunk index.

        Must run inside the critical section.
        """
        self._note_audit(vids=(plan.vid,), providers=plan.assigned)
        provider_indices: list[int] = []
        for shard_index, provider_name in enumerate(plan.assigned):
            table_index = self.provider_table.index_of(provider_name)
            # Failed-but-accepted shards are recorded too: the table is
            # the scrubber's work list, and the next scrub cycle rebuilds
            # them from the >= k members that did land.
            self.provider_table.record_store(
                table_index, shard_key(plan.vid, shard_index)
            )
            provider_indices.append(table_index)

        chunk_index = self.chunk_table.add(
            ChunkEntry(
                virtual_id=plan.vid,
                privacy_level=plan.level,
                provider_indices=provider_indices,
                snapshot_index=None,
                misleading_positions=plan.positions,
            )
        )
        self._chunk_state[plan.vid] = _ChunkState(
            stripe=plan.stripe,
            rotation=plan.serial % plan.stripe.width,
            shard_checksums=(
                plan.checksums
                if plan.checksums is not None
                else tuple(blob_checksum(s) for s in plan.shards)
            ),
        )
        return chunk_index

    def _chunk_spec(self, client: str, ref: FileChunkRef) -> dict:
        """Self-contained description of one stored chunk for the journal.

        Everything recovery needs to re-create (or finish destroying) the
        chunk without the in-memory tables: provider names instead of
        table indices, the stripe geometry, and the write-time checksums.
        Must run inside the critical section.
        """
        entry = self.chunk_table.get(ref.chunk_index)
        vid = entry.virtual_id
        state = self._chunk_state.get(vid)
        if state is None and vid in self._codec_quarantine:
            # Quarantined chunk (unknown codec): the journal still needs a
            # spec to finish a remove, so replay the raw packed fields.
            packed = self._codec_quarantine[vid]
            stripe = list(packed[:6])
            rotation = packed[6]
            checksums = (
                list(packed[7]) if len(packed) > 7 and packed[7] else None
            )
        else:
            state = self._chunk_state[vid]
            stripe = [
                state.stripe.codec,
                state.stripe.width,
                state.stripe.k,
                state.stripe.m,
                state.stripe.shard_size,
                state.stripe.orig_len,
            ]
            rotation = state.rotation
            checksums = (
                list(state.shard_checksums)
                if state.shard_checksums is not None
                else None
            )
        return {
            "vid": vid,
            "client": client,
            "filename": ref.filename,
            "serial": ref.serial,
            "level": int(entry.privacy_level),
            "providers": [
                self.provider_table.get(i).name
                for i in entry.provider_indices
            ],
            "snapshot": (
                None
                if entry.snapshot_index is None
                else self.provider_table.get(entry.snapshot_index).name
            ),
            "positions": list(entry.misleading_positions),
            "stripe": stripe,
            "rotation": rotation,
            "checksums": checksums,
        }

    @staticmethod
    def _plan_put_keys(plan: _ChunkPlan) -> list[tuple[str, str]]:
        """The (provider, key) pairs a plan's transfer is about to create."""
        return [
            (name, shard_key(plan.vid, shard_index))
            for shard_index, name in enumerate(plan.assigned)
        ]

    def _store_chunk(
        self,
        payload: bytes,
        level: PrivacyLevel,
        serial: int,
        codec: ErasureCodec,
        misleading_fraction: float,
        journal_txn: int | None = None,
    ) -> int:
        """Encode, place and upload one chunk; returns its chunk-table index.

        With *journal_txn* set, the shard keys are appended to that open
        intent transaction before any byte moves, so a crash mid-transfer
        leaves recovery enough to delete the orphans.
        """
        plan = self._plan_chunk(
            payload, level, serial, codec, misleading_fraction,
            load=self._provider_load(),
        )
        logged = self._plan_put_keys(plan)
        if journal_txn is not None and self.journal is not None:
            self.journal.extend(journal_txn, logged)
        self._transfer_plan(plan)
        if self._recover_plan(plan):
            self._rollback_plan(plan)
            raise plan.first_error
        if journal_txn is not None and self.journal is not None:
            # Write-path failover may have relocated shards since the
            # intent was logged; record the new homes so rollback can
            # still find every object.
            moved = [
                pair
                for pair in self._plan_put_keys(plan)
                if pair not in set(logged)
            ]
            if moved:
                self.journal.extend(journal_txn, moved)
        return self._commit_plan(plan)

    def _failover_shards(
        self,
        vid: int,
        level: PrivacyLevel,
        shards: list[bytes],
        assigned: list[str],
        failed: list[int],
    ) -> list[int]:
        """Re-place failed shard puts on alternate providers, in place.

        For each failed shard index, healthy eligible providers outside
        the current assignment (one shard per provider, or RAID failure
        independence is forfeit) are tried in placement-preference order.
        ``assigned`` is updated with the providers that accepted a shard;
        the returned list holds the indices nowhere to be placed -- the
        caller accepts the chunk degraded if >= k landed, or rolls back.
        """
        remaining: list[int] = []
        for shard_index in failed:
            key = shard_key(vid, shard_index)
            # The failed member may hold a torn write (bytes stored, ack
            # lost); scrub it so the relocated shard has no orphan twin.
            with contextlib.suppress(ProviderError):
                self.registry.get(assigned[shard_index]).provider.delete(key)
            placed = False
            for name in self._replacement_candidates(level, set(assigned)):
                try:
                    self._provider_put(name, key, shards[shard_index])
                except ProviderError:
                    with contextlib.suppress(ProviderError):
                        self.registry.get(name).provider.delete(key)
                    continue
                self.metrics.counter("distributor_failover_shards_total").inc()
                self.events.emit(
                    "write_failover",
                    vid=vid,
                    shard=shard_index,
                    src=assigned[shard_index],
                    dst=name,
                )
                assigned[shard_index] = name
                placed = True
                break
            if not placed:
                self.metrics.counter("distributor_failover_failed_total").inc()
                self.events.emit(
                    "failover_exhausted",
                    level="warning",
                    vid=vid,
                    shard=shard_index,
                    src=assigned[shard_index],
                )
                remaining.append(shard_index)
        return remaining

    def _replacement_candidates(
        self, level: PrivacyLevel, exclude: set[str]
    ) -> list[str]:
        """Usable eligible providers outside *exclude*, best first.

        Preference mirrors placement: suspect providers last, then
        cheaper cost tier, then least loaded.  Takes the op lock for its
        table reads -- write-path failover calls it from the pipelined
        transfer phase, outside the critical section.
        """
        with self.op_lock:
            candidates = [
                c
                for c in self.placement.candidates(
                    self.registry, level, health=self.health
                )
                if c.name not in exclude and self._provider_usable(c.name)
            ]
            load = self._provider_load()

        def sort_key(e):
            suspect = (
                1 if self.health is not None and self.health.suspect(e.name)
                else 0
            )
            return (suspect, int(e.cost_level), load.get(e.name, 0))

        candidates.sort(key=sort_key)
        return [c.name for c in candidates]

    def _fetch_chunk_payload(self, entry: ChunkEntry) -> bytes:
        """Degraded-read a chunk's stripe and strip misleading bytes.

        Served from the chunk cache when attached (filled on miss,
        invalidated by update/remove).
        """
        self._note_audit(
            vids=(entry.virtual_id,),
            providers=(
                self.provider_table.get(i).name
                for i in entry.provider_indices
            ),
        )
        if self.cache is not None:
            cached = self.cache.get(entry.virtual_id)
            if cached is not None:
                return cached
        state = self._chunk_state_for(entry)

        def fetch(shard_index: int) -> bytes:
            table_index = entry.provider_indices[shard_index]
            name = self.provider_table.get(table_index).name
            key = shard_key(entry.virtual_id, shard_index)
            data = self._provider_get(name, key)
            expected = state.shard_checksums
            if (
                expected is not None
                and blob_checksum(data) != expected[shard_index]
            ):
                # Silently rotten shard: surface it as a failed member so
                # the degraded read rebuilds from parity instead of
                # returning corrupt plaintext.
                self._record_health(
                    name, ok=False, exc=BlobCorruptedError(key)
                )
                raise BlobCorruptedError(
                    f"shard {key!r} from provider {name!r} does not match "
                    f"its recorded checksum"
                )
            return data

        if self._transport_workers() > 1 and state.stripe.k > 1:
            # Fan out the data-shard fetches across providers; parity is
            # still pulled lazily (and serially) only on degraded reads,
            # matching read_stripe's prefer-data order.
            data_indices = list(range(state.stripe.k))
            prefetched = dict(
                zip(data_indices, self._transport_map(fetch, data_indices))
            )

            def fetch_prefetched(shard_index: int) -> bytes:
                outcome = prefetched.get(shard_index)
                if outcome is None:
                    return fetch(shard_index)
                result, exc = outcome
                if exc is not None:
                    raise exc
                return result

            stored, _failed = read_stripe(state.stripe, fetch_prefetched)
        else:
            stored, _failed = read_stripe(state.stripe, fetch)
        payload = remove_misleading(stored, entry.misleading_positions)
        if self.cache is not None:
            self.cache.put(entry.virtual_id, payload)
        return payload

    # ------------------------------------------------------------------
    # upload path: split() + distribute()          (Section VI)
    # ------------------------------------------------------------------

    def _check_new_filename(self, client: str, filename: str) -> None:
        """Reject a duplicate filename (stored or upload-in-flight).

        Must run inside the critical section.
        """
        client_entry = self.client_table.get(client)
        if filename in self._inflight_uploads.get(client, set()) or any(
            ref.filename == filename for ref in client_entry.chunk_refs
        ):
            raise ValueError(
                f"client {client!r} already stores a file named {filename!r}"
            )

    def _release_upload_slot(self, client: str, filename: str) -> None:
        """Drop a pipelined upload's in-flight filename reservation."""
        with self.op_lock:
            inflight = self._inflight_uploads.get(client)
            if inflight is not None:
                inflight.discard(filename)
                if not inflight:
                    self._inflight_uploads.pop(client, None)

    def upload_file(
        self,
        client: str,
        password: str,
        filename: str,
        data: bytes,
        level: PrivacyLevel | int,
        raid_level: RaidLevel | None = None,
        stripe_width: int | None = None,
        codec: "CodecSpec | str | None" = None,
        misleading_fraction: float = 0.0,
        parallel: bool = False,
        pipelined: bool | None = None,
    ) -> FileReceipt:
        """Receive a file, split it, and distribute the chunks.

        The client's password must be privileged for the file's privacy
        level.  Chunk size follows the PL schedule; each chunk is
        erasure-coded over a freshly chosen provider group -- by default
        with the distributor's configured codec, overridable per call
        with ``codec=`` (a :class:`CodecSpec` or spec string like
        ``"rs(6,3)"``) or the legacy ``raid_level``/``stripe_width``
        pair.  With ``parallel=True`` shard uploads overlap across
        providers in simulated time.

        ``pipelined`` (default: the distributor-level switch) selects the
        data path.  The pipelined path holds the op lock only to plan
        (authorize, split, place, allocate ids) and to commit the tables;
        the transfer in between batches every shard bound for one
        provider into a single provider call and fans the providers out
        concurrently.  ``pipelined=False`` restores the historical
        chunk-serial path.  Both are atomic: a chunk that cannot reach k
        shards rolls the entire upload back.
        """
        pl = PrivacyLevel.coerce(level)
        try:
            self._authorize(client, password, pl)
        except ReproError as exc:
            self._record_op("upload", client, filename, None,
                            ok=False, detail=type(exc).__name__)
            raise
        use_pipeline = self.pipelined if pipelined is None else pipelined
        if use_pipeline:
            with self.tracer.span("distributor.upload", client=client):
                return self._upload_file_pipelined(
                    client, pl, filename, data, raid_level, stripe_width,
                    codec, misleading_fraction, parallel,
                )
        with self.tracer.span("distributor.upload", client=client), self.op_lock:
            client_entry = self.client_table.get(client)
            self._check_new_filename(client, filename)
            codec_obj = self._resolve_codec(pl, raid_level, stripe_width, codec)

            chunks = chunking.split(data, pl, policy=self.chunk_policy)
            window = (
                self._parallel_window() if parallel else contextlib.nullcontext()
            )
            stored_refs: list[FileChunkRef] = []
            txn = None
            if self.journal is not None:
                txn = self.journal.begin("upload", client, filename)
                crashpoint("upload.intent_logged")
            try:
                with window:
                    for chunk in chunks:
                        chunk_index = self._store_chunk(
                            chunk.payload, pl, chunk.serial, codec_obj,
                            misleading_fraction, journal_txn=txn,
                        )
                        ref = FileChunkRef(
                            filename=filename,
                            serial=chunk.serial,
                            privacy_level=pl,
                            chunk_index=chunk_index,
                        )
                        client_entry.chunk_refs.append(ref)
                        stored_refs.append(ref)
            except (ProviderError, PlacementError) as exc:
                # Roll back chunks already distributed so the upload is
                # atomic: either the whole file is stored or none of it is.
                for ref in stored_refs:
                    self._delete_chunk(ref)
                    client_entry.chunk_refs.remove(ref)
                if txn is not None:
                    self.journal.abort(txn)
                self._record_op("upload", client, filename, None,
                                ok=False, detail=type(exc).__name__)
                raise
            if txn is not None:
                self.journal.commit(
                    txn,
                    {
                        "client": client,
                        "filename": filename,
                        "remove": [],
                        "add": [
                            self._chunk_spec(client, ref)
                            for ref in stored_refs
                        ],
                    },
                )
                crashpoint("upload.committed")
        self._record_op("upload", client, filename, None, ok=True)
        return FileReceipt(
            filename=filename,
            privacy_level=pl,
            chunk_count=len(chunks),
            file_size=len(data),
            raid_level=codec_obj.raid_level,
            stripe_width=codec_obj.n,
            codec=codec_obj.label,
        )

    def _upload_file_pipelined(
        self,
        client: str,
        pl: PrivacyLevel,
        filename: str,
        data: bytes,
        raid_level: RaidLevel | None,
        stripe_width: int | None,
        codec: "CodecSpec | str | None",
        misleading_fraction: float,
        parallel: bool,
    ) -> FileReceipt:
        """Plan -> transfer -> commit upload (authorization already done).

        Planning emulates the serial path's per-chunk load accounting
        (each planned shard bumps its provider's count in a working copy
        of the loads) so a fault-free pipelined upload places every chunk
        exactly where the chunk-serial loop would have.  The filename is
        reserved in ``_inflight_uploads`` across the lock-free transfer so
        a racing duplicate upload is rejected up front.
        """
        # -- plan (critical section): rng draws, placement, id allocation --
        with self.op_lock, self._phase("upload", "plan"):
            self._check_new_filename(client, filename)
            codec_obj = self._resolve_codec(pl, raid_level, stripe_width, codec)
            chunks = chunking.split(data, pl, policy=self.chunk_policy)
            self._inflight_uploads.setdefault(client, set()).add(filename)
            plans: list[_ChunkPlan] = []
            load = self._provider_load()
            try:
                for chunk in chunks:
                    plan = self._plan_chunk(
                        chunk.payload, pl, chunk.serial, codec_obj,
                        misleading_fraction, load=load,
                    )
                    for name in plan.assigned:
                        load[name] = load.get(name, 0) + 1
                    plans.append(plan)
            except Exception as exc:
                for plan in plans:
                    self.ids.release(plan.vid)
                self._release_upload_slot(client, filename)
                if isinstance(exc, ReproError):
                    self._record_op("upload", client, filename, None,
                                    ok=False, detail=type(exc).__name__)
                raise

        # -- intent (durable): every key the transfer will create ----------
        txn = None
        if self.journal is not None:
            logged = [
                pair for plan in plans for pair in self._plan_put_keys(plan)
            ]
            txn = self.journal.begin(
                "upload", client, filename, put_keys=logged
            )
            crashpoint("upload.intent_logged")

        # -- transfer (lock-free): batched puts, failover ------------------
        try:
            window = (
                self._parallel_window() if parallel else contextlib.nullcontext()
            )
            with window, self._phase("upload", "transfer"):
                self._transfer_plans(plans)
                lost = [plan for plan in plans if self._recover_plan(plan)]
            if lost:
                # Atomicity: one unrecoverable chunk aborts the whole file.
                for plan in plans:
                    self._rollback_plan(plan)
                if txn is not None:
                    self.journal.abort(txn)
                error = lost[0].first_error
                self._record_op("upload", client, filename, None,
                                ok=False, detail=type(error).__name__)
                raise error
            if txn is not None:
                # Failover may have relocated shards; log the new homes.
                moved = [
                    pair
                    for plan in plans
                    for pair in self._plan_put_keys(plan)
                    if pair not in set(logged)
                ]
                if moved:
                    self.journal.extend(txn, moved)
            crashpoint("upload.transferred")
        except BaseException:
            self._release_upload_slot(client, filename)
            raise

        # -- commit (critical section): tables and client refs -------------
        with self.op_lock, self._phase("upload", "commit"):
            self._release_upload_slot(client, filename)
            client_entry = self.client_table.get(client)
            new_refs: list[FileChunkRef] = []
            for plan in plans:
                chunk_index = self._commit_plan(plan)
                ref = FileChunkRef(
                    filename=filename,
                    serial=plan.serial,
                    privacy_level=pl,
                    chunk_index=chunk_index,
                )
                client_entry.chunk_refs.append(ref)
                new_refs.append(ref)
            if txn is not None:
                self.journal.commit(
                    txn,
                    {
                        "client": client,
                        "filename": filename,
                        "remove": [],
                        "add": [
                            self._chunk_spec(client, ref) for ref in new_refs
                        ],
                    },
                )
        crashpoint("upload.committed")
        self._record_op("upload", client, filename, None, ok=True)
        return FileReceipt(
            filename=filename,
            privacy_level=pl,
            chunk_count=len(chunks),
            file_size=len(data),
            raid_level=codec_obj.raid_level,
            stripe_width=codec_obj.n,
            codec=codec_obj.label,
        )

    # ------------------------------------------------------------------
    # retrieval path: get_chunk() / get_file()      (Sections V and VI)
    # ------------------------------------------------------------------

    def get_chunk(
        self, client: str, password: str, filename: str, serial: int
    ) -> bytes:
        """Fetch one chunk by (client name, password, filename, sl no.).

        Reproduces the paper's resolution chain: Client Table quadruple ->
        Chunk Table entry -> Cloud Provider Table row -> provider ``get``.
        """

        def work() -> bytes:
            with self.op_lock:
                ref = self.client_table.get(client).ref_for_chunk(
                    filename, serial
                )
                self._authorize(client, password, ref.privacy_level)
                entry = self.chunk_table.get(ref.chunk_index)
                return self._fetch_chunk_payload(entry)

        return self._audited("get_chunk", client, filename, serial, work)

    def _prefetch_jobs(
        self, jobs: list[_FetchJob], *, use_stream: bool = False
    ) -> None:
        """Batch-fetch every uncached job's data shards, lock-free.

        All data-shard keys bound for one provider across the whole file
        coalesce into a single ``get_many`` (one MULTI_GET round-trip on
        remote providers) and the providers fan out concurrently.  Parity
        members are *not* prefetched -- they are pulled lazily only by
        degraded reads, matching ``read_stripe``'s prefer-data order.
        With ``use_stream`` each provider answers over STREAM_GET -- one
        frame per shard instead of one aggregate MULTI_GET payload.
        """
        by_provider: dict[str, list[tuple[_FetchJob, int]]] = {}
        for job in jobs:
            if job.cached is not None:
                continue
            for shard_index in range(job.state.stripe.k):
                name = job.names[shard_index]
                by_provider.setdefault(name, []).append((job, shard_index))

        groups = list(by_provider.items())

        def get_batch(
            group: tuple[str, list[tuple[_FetchJob, int]]]
        ) -> list["bytes | ProviderError"]:
            name, members = group
            keys = [
                shard_key(job.entry.virtual_id, shard_index)
                for job, shard_index in members
            ]
            if use_stream and (
                sum(
                    job.state.stripe.shard_size for job, _ in members
                )
                >= STREAM_SEGMENT_THRESHOLD * len(members)
            ):
                return self._provider_get_stream(name, keys)
            # Same adaptive choice as the upload window: shards this
            # small parse faster out of one aggregate MULTI_GET payload
            # than as one frame each, and the batch is still one window's
            # keys (O(window) memory either way).
            return self._provider_get_many(name, keys)

        outcomes = self._transport_map(get_batch, groups, stop_on_error=False)
        for (name, members), (per_item, exc) in zip(groups, outcomes):
            if exc is not None:
                per_item = [exc] * len(members)
            for (job, shard_index), outcome in zip(members, per_item):
                job.prefetched[shard_index] = outcome

    def _assemble_job(self, job: _FetchJob) -> bytes:
        """Decode one prefetched chunk (degraded-read + misleading strip)."""
        if job.cached is not None:
            return job.cached
        entry, state = job.entry, job.state

        def fetch(shard_index: int) -> bytes:
            outcome = job.prefetched.get(shard_index)
            if outcome is None:
                # Parity member: pulled lazily, only on a degraded read.
                outcome = self._provider_get(
                    job.names[shard_index],
                    shard_key(entry.virtual_id, shard_index),
                )
            if isinstance(outcome, ProviderError):
                raise outcome
            expected = state.shard_checksums
            if (
                expected is not None
                and blob_checksum(outcome) != expected[shard_index]
            ):
                key = shard_key(entry.virtual_id, shard_index)
                self._record_health(
                    job.names[shard_index], ok=False,
                    exc=BlobCorruptedError(key),
                )
                raise BlobCorruptedError(
                    f"shard {key!r} from provider {job.names[shard_index]!r} "
                    f"does not match its recorded checksum"
                )
            return outcome

        stored, _failed = read_stripe(state.stripe, fetch)
        return remove_misleading(stored, entry.misleading_positions)

    def get_file(
        self,
        client: str,
        password: str,
        filename: str,
        parallel: bool = False,
        pipelined: bool | None = None,
    ) -> bytes:
        """Fetch and reassemble every chunk of *filename*.

        The pipelined path (default) resolves every chunk's metadata
        under the op lock, then fetches the data shards of *all* chunks
        at once -- batched per provider, providers in flight concurrently
        -- and reassembles into a preallocated buffer.  With
        ``pipelined=False`` chunks are fetched one at a time, serially.

        With ``parallel=True`` the overlap is also modelled in simulated
        time (one serial chain per provider), the parallel query
        processing Section VII-E credits fragmentation with.
        """
        use_pipeline = self.pipelined if pipelined is None else pipelined

        def work_serial() -> bytes:
            with self.op_lock:
                refs = self.client_table.get(client).refs_for_file(filename)
                self._authorize(client, password, refs[0].privacy_level)
                window = (
                    self._parallel_window()
                    if parallel
                    else contextlib.nullcontext()
                )
                with window:
                    chunks = [
                        chunking.Chunk(
                            serial=ref.serial,
                            level=ref.privacy_level,
                            payload=self._fetch_chunk_payload(
                                self.chunk_table.get(ref.chunk_index)
                            ),
                        )
                        for ref in refs
                    ]
                return chunking.join(chunks)

        def work_pipelined() -> bytes:
            # Phase 1 (critical section): resolve refs -> entries ->
            # provider names, and consult the (unsynchronized) cache.
            with self.op_lock, self._phase("get_file", "resolve"):
                refs = self.client_table.get(client).refs_for_file(filename)
                self._authorize(client, password, refs[0].privacy_level)
                jobs: list[_FetchJob] = []
                for ref in refs:
                    entry = self.chunk_table.get(ref.chunk_index)
                    names = [
                        self.provider_table.get(i).name
                        for i in entry.provider_indices
                    ]
                    self._note_audit(
                        vids=(entry.virtual_id,), providers=names
                    )
                    jobs.append(
                        _FetchJob(
                            serial=ref.serial,
                            entry=entry,
                            state=self._chunk_state_for(entry, filename),
                            names=names,
                            cached=(
                                self.cache.get(entry.virtual_id)
                                if self.cache is not None
                                else None
                            ),
                        )
                    )
            # Phase 2 (lock-free): batched fetches, decode, reassemble.
            window = (
                self._parallel_window() if parallel else contextlib.nullcontext()
            )
            with window, self._phase("get_file", "fetch"):
                self._prefetch_jobs(jobs)
                payloads = [self._assemble_job(job) for job in jobs]
            # refs_for_file returns serial order, so the payloads
            # concatenate in place of a sort+join.
            out = bytearray(sum(len(p) for p in payloads))
            offset = 0
            for payload in payloads:
                out[offset : offset + len(payload)] = payload
                offset += len(payload)
            # Phase 3 (critical section): fill the shared chunk cache.
            if self.cache is not None:
                with self.op_lock, self._phase("get_file", "cache_fill"):
                    for job, payload in zip(jobs, payloads):
                        if job.cached is None:
                            self.cache.put(job.entry.virtual_id, payload)
            return bytes(out)

        work = work_pipelined if use_pipeline else work_serial
        return self._audited("get_file", client, filename, None, work)

    # ------------------------------------------------------------------
    # constant-memory streaming path (see repro.core.streaming)
    # ------------------------------------------------------------------

    def put_stream(
        self,
        client: str,
        password: str,
        filename: str,
        fileobj,
        level: "PrivacyLevel | int",
        **options,
    ) -> FileReceipt:
        """Upload from a binary file object with O(window) memory.

        Thin veneer over :func:`repro.core.streaming.put_stream` (lazy
        import keeps the module dependency one-way); see there for the
        windowing model and keyword options.
        """
        from repro.core.streaming import put_stream

        return put_stream(self, client, password, filename, fileobj, level,
                          **options)

    def get_stream(
        self, client: str, password: str, filename: str, **options
    ):
        """Iterate *filename*'s plaintext in chunk-sized segments.

        Thin veneer over :func:`repro.core.streaming.get_stream`;
        authorization happens eagerly, shard traffic lazily per window.
        """
        from repro.core.streaming import get_stream

        return get_stream(self, client, password, filename, **options)

    def chunk_count(self, client: str, filename: str) -> int:
        """How many chunks *filename* was split into (told to the client)."""
        return len(self.client_table.get(client).refs_for_file(filename))

    def list_files(self, client: str, password: str) -> list[str]:
        """Filenames the password may see (PL of file <= password PL)."""
        granted = self.access.authenticate(client, password)
        entry = self.client_table.get(client)
        return [
            name
            for name in entry.filenames()
            if int(entry.refs_for_file(name)[0].privacy_level) <= int(granted)
        ]

    # ------------------------------------------------------------------
    # removal path: remove_chunk() / remove_file()   (Section VI)
    # ------------------------------------------------------------------

    def _delete_chunk(self, ref: FileChunkRef) -> None:
        entry = self.chunk_table.get(ref.chunk_index)
        vid = entry.virtual_id
        self._note_audit(
            vids=(vid,),
            providers=(
                self.provider_table.get(i).name
                for i in entry.provider_indices
            ),
        )
        for shard_index, table_index in enumerate(entry.provider_indices):
            name = self.provider_table.get(table_index).name
            key = shard_key(vid, shard_index)
            try:
                self.registry.get(name).provider.delete(key)
            except ProviderError:
                # Best effort: a down provider keeps a garbage shard keyed by
                # an id that no longer resolves to anything.
                pass
            self.provider_table.record_remove(table_index, key)
        if entry.snapshot_index is not None:
            name = self.provider_table.get(entry.snapshot_index).name
            try:
                self.snapshots.drop(name, vid)
            except ProviderError:
                pass
            self.provider_table.record_remove(
                entry.snapshot_index, snapshot_key(vid)
            )
        self.chunk_table.remove(ref.chunk_index)
        self._chunk_state.pop(vid, None)
        self._codec_quarantine.pop(vid, None)
        if self.cache is not None:
            self.cache.invalidate(vid)
        self.ids.release(vid)

    def remove_chunk(
        self, client: str, password: str, filename: str, serial: int
    ) -> None:
        """Remove one chunk; forwarded to every stripe member."""

        def work() -> None:
            with self.op_lock:
                client_entry = self.client_table.get(client)
                ref = client_entry.ref_for_chunk(filename, serial)
                self._authorize(client, password, ref.privacy_level)
                self._remove_refs(client, client_entry, filename, [ref])

        self._audited("remove_chunk", client, filename, serial, work)

    def remove_file(self, client: str, password: str, filename: str) -> None:
        """Remove every chunk of *filename*."""

        def work() -> None:
            with self.op_lock:
                client_entry = self.client_table.get(client)
                refs = client_entry.refs_for_file(filename)
                self._authorize(client, password, refs[0].privacy_level)
                self._remove_refs(client, client_entry, filename, refs)

        self._audited("remove_file", client, filename, None, work)

    def _remove_refs(
        self, client, client_entry, filename: str, refs: list[FileChunkRef]
    ) -> None:
        """Journalled deletion of *refs* (already authorized, lock held).

        The intent record carries the full chunk specs: a remove that
        crashes half-done can only roll *forward* (shards cannot be
        un-deleted), so recovery needs enough to finish the job.
        """
        txn = None
        if self.journal is not None:
            specs = [self._chunk_spec(client, ref) for ref in refs]
            txn = self.journal.begin(
                "remove", client, filename, remove_specs=specs
            )
            crashpoint("remove.intent_logged")
        for i, ref in enumerate(refs):
            self._delete_chunk(ref)
            client_entry.chunk_refs.remove(ref)
            if i == 0:
                crashpoint("remove.partial")
        if txn is not None:
            self.journal.commit(
                txn,
                {
                    "client": client,
                    "filename": filename,
                    "remove": specs,
                    "add": [],
                },
            )
            crashpoint("remove.committed")

    # ------------------------------------------------------------------
    # modification with snapshotting                (Table III's SP column)
    # ------------------------------------------------------------------

    def update_chunk(
        self,
        client: str,
        password: str,
        filename: str,
        serial: int,
        new_payload: bytes,
    ) -> None:
        """Replace a chunk's contents, snapshotting the pre-state first.

        The pre-modification payload is written to a snapshot provider
        (preferably outside the stripe group) and the Chunk Table's SP
        column updated, per Table III.
        """
        return self._audited(
            "update_chunk", client, filename, serial,
            lambda: self._update_chunk_inner(
                client, password, filename, serial, new_payload
            ),
        )

    def _update_chunk_inner(
        self,
        client: str,
        password: str,
        filename: str,
        serial: int,
        new_payload: bytes,
    ) -> None:
        with self.op_lock:
            client_entry = self.client_table.get(client)
            ref = client_entry.ref_for_chunk(filename, serial)
            self._authorize(client, password, ref.privacy_level)
            entry = self.chunk_table.get(ref.chunk_index)
            vid = entry.virtual_id
            state = self._chunk_state_for(entry, filename)

            pre_state = self._fetch_chunk_payload(entry)
            # Re-inject misleading bytes at the same budget the chunk had.
            fraction = 0.0
            if entry.misleading_positions:
                fraction = len(entry.misleading_positions) / max(
                    1, state.stripe.orig_len - len(entry.misleading_positions)
                )

            # Copy-on-write: the new version is staged as a fresh stripe
            # (fresh virtual id, freshly placed group, full write-path
            # failover) and only swapped in once it fully lands.  A failed
            # update therefore leaves the old version intact and readable
            # instead of a torn half-written stripe.
            old_spec = (
                self._chunk_spec(client, ref)
                if self.journal is not None
                else None
            )
            # The new version keeps the chunk's codec: re-instantiate it
            # from the stripe metadata (works across codec generations).
            plan = self._plan_chunk(
                new_payload, entry.privacy_level, state.rotation,
                codec_for_meta(state.stripe), fraction,
                load=self._provider_load(),
            )
            txn = None
            if self.journal is not None:
                txn = self.journal.begin(
                    "update", client, filename,
                    put_keys=self._plan_put_keys(plan),
                )
                crashpoint("update.intent_logged")
            self._transfer_plan(plan)
            if self._recover_plan(plan):
                self._rollback_plan(plan)
                if txn is not None:
                    self.journal.abort(txn)
                raise plan.first_error
            new_index = self._commit_plan(plan)
            new_entry = self.chunk_table.get(new_index)
            new_vid = new_entry.virtual_id
            try:
                new_names = {
                    self.provider_table.get(i).name
                    for i in new_entry.provider_indices
                }
                snap_name = self.snapshots.choose_provider(
                    entry.privacy_level, exclude=new_names,
                    load=self._provider_load(),
                )
                if txn is not None:
                    # The snapshot object joins the transaction's write
                    # set before its bytes move, same as the shards.
                    self.journal.extend(
                        txn, [(snap_name, snapshot_key(new_vid))]
                    )
                crashpoint("update.staged")
                snap_key = self.snapshots.write(snap_name, new_vid, pre_state)
            except (ProviderError, PlacementError):
                # Unstage the new version; the chunk is untouched.
                self._delete_chunk(replace(ref, chunk_index=new_index))
                if txn is not None:
                    self.journal.abort(txn)
                raise
            snap_table_index = self.provider_table.index_of(snap_name)
            self.provider_table.record_store(snap_table_index, snap_key)
            new_entry.snapshot_index = snap_table_index

            # Swap the client's quadruple to the new stripe, then retire
            # the old one (shards, old snapshot, tables, id).
            old_snapshot_index = entry.snapshot_index
            entry.snapshot_index = None
            i = client_entry.chunk_refs.index(ref)
            client_entry.chunk_refs[i] = replace(ref, chunk_index=new_index)
            if old_snapshot_index is not None:
                old_snap_name = self.provider_table.get(old_snapshot_index).name
                with contextlib.suppress(ProviderError):
                    self.snapshots.drop(old_snap_name, vid)
                self.provider_table.record_remove(
                    old_snapshot_index, snapshot_key(vid)
                )
            for shard_index, table_index in enumerate(entry.provider_indices):
                name = self.provider_table.get(table_index).name
                shard = shard_key(vid, shard_index)
                with contextlib.suppress(ProviderError):
                    self.registry.get(name).provider.delete(shard)
                self.provider_table.record_remove(table_index, shard)
            self.chunk_table.remove(ref.chunk_index)
            del self._chunk_state[vid]
            self.ids.release(vid)
            if self.cache is not None:
                self.cache.invalidate(vid)
            if txn is not None:
                new_ref = replace(ref, chunk_index=new_index)
                self.journal.commit(
                    txn,
                    {
                        "client": client,
                        "filename": filename,
                        "remove": [old_spec],
                        "add": [self._chunk_spec(client, new_ref)],
                    },
                )
                crashpoint("update.committed")

    def get_snapshot(
        self, client: str, password: str, filename: str, serial: int
    ) -> bytes:
        """Read the pre-modification state of a chunk (if one exists)."""
        with self.op_lock:
            ref = self.client_table.get(client).ref_for_chunk(filename, serial)
            self._authorize(client, password, ref.privacy_level)
            entry = self.chunk_table.get(ref.chunk_index)
            if entry.snapshot_index is None:
                raise UnknownChunkError(
                    f"chunk {serial} of {filename!r} has never been modified"
                )
            name = self.provider_table.get(entry.snapshot_index).name
            return self.snapshots.read(name, entry.virtual_id)

    # ------------------------------------------------------------------
    # RAID repair
    # ------------------------------------------------------------------

    def repair_file(self, client: str, password: str, filename: str) -> RepairReport:
        """Scrub every chunk of *filename*, rebuilding lost/corrupt shards.

        Shards on unavailable or damaged providers are regenerated from the
        surviving stripe members and relocated to a healthy eligible
        provider outside the current group.
        """

        def work() -> RepairReport:
            with self.op_lock:
                refs = self.client_table.get(client).refs_for_file(filename)
                self._authorize(client, password, refs[0].privacy_level)
                missing = rebuilt = unrecoverable = 0
                relocations: list[tuple[int, int, str, str]] = []
                for ref in refs:
                    entry = self.chunk_table.get(ref.chunk_index)
                    m, r, u, moved = self._repair_chunk(entry)
                    missing += m
                    rebuilt += r
                    unrecoverable += u
                    relocations.extend(moved)
            return RepairReport(
                filename=filename,
                chunks_checked=len(refs),
                shards_missing=missing,
                shards_rebuilt=rebuilt,
                chunks_unrecoverable=unrecoverable,
                relocations=relocations,
            )

        return self._audited("repair_file", client, filename, None, work)

    def _repair_chunk(
        self, entry: ChunkEntry, suspect: list[int] | tuple[int, ...] = ()
    ) -> tuple[int, int, int, list[tuple[int, int, str, str]]]:
        """Audit and heal one chunk's stripe.

        Reads every shard not already condemned by *suspect* (indices the
        caller's ``head`` audit flagged), concurrently on real transports,
        verifying each against its recorded checksum.  Lost/rotten shards
        are rebuilt from >= k survivors and placed on healthy eligible
        providers outside the group (or back on a recovered member).
        Returns ``(missing, rebuilt, unrecoverable, relocations)``.
        """
        vid = entry.virtual_id
        state = self._chunk_state_for(entry)
        names = [
            self.provider_table.get(i).name for i in entry.provider_indices
        ]
        suspect_set = set(suspect)
        to_read = [i for i in range(len(names)) if i not in suspect_set]

        def read(shard_index: int) -> bytes:
            key = shard_key(vid, shard_index)
            data = self._provider_get(names[shard_index], key)
            expected = state.shard_checksums
            if (
                expected is not None
                and blob_checksum(data) != expected[shard_index]
            ):
                raise BlobCorruptedError(
                    f"shard {key!r} at provider {names[shard_index]!r} "
                    f"drifted from its recorded checksum"
                )
            return data

        outcomes = self._transport_map(read, to_read, stop_on_error=False)
        shards: dict[int, bytes] = {}
        bad = sorted(suspect_set)
        for shard_index, (data, exc) in zip(to_read, outcomes):
            if exc is None:
                shards[shard_index] = data
            else:
                bad.append(shard_index)
        bad.sort()
        missing = len(bad)
        if not bad:
            return 0, 0, 0, []
        if len(shards) < state.stripe.k:
            return missing, 0, 1, []
        group_names = set(names)
        rebuilt = 0
        relocations: list[tuple[int, int, str, str]] = []
        for shard_index in bad:
            old_table_index = entry.provider_indices[shard_index]
            old_name = self.provider_table.get(old_table_index).name
            targets = self._replacement_candidates(
                entry.privacy_level, group_names
            )
            if not targets and self._provider_usable(old_name):
                # No eligible provider outside the stripe but the failed
                # member recovered: re-store in place.
                targets = [old_name]
            key = shard_key(vid, shard_index)
            shard = rebuild_shard(state.stripe, shard_index, shards)
            stored_to = None
            for new_name in targets:
                try:
                    self._provider_put(new_name, key, shard)
                except ProviderError:
                    continue
                stored_to = new_name
                break
            if stored_to is None:
                # No healthy eligible provider outside the stripe: the
                # chunk stays degraded (still readable) until one heals.
                continue
            if stored_to != old_name:
                # Best effort: clear the stale twin so the old provider
                # does not resurface an orphan (or rotten bytes) later.
                with contextlib.suppress(ProviderError):
                    self.registry.get(old_name).provider.delete(key)
                relocations.append((vid, shard_index, old_name, stored_to))
                self.metrics.counter(
                    "distributor_shards_relocated_total"
                ).inc()
                self.events.emit(
                    "shard_relocated",
                    vid=vid,
                    shard=shard_index,
                    src=old_name,
                    dst=stored_to,
                )
            self.provider_table.record_remove(old_table_index, key)
            new_table_index = self.provider_table.index_of(stored_to)
            self.provider_table.record_store(new_table_index, key)
            entry.provider_indices[shard_index] = new_table_index
            group_names.add(stored_to)
            shards[shard_index] = shard
            rebuilt += 1
        return missing, rebuilt, 0, relocations

    def _choose_replacement(
        self, level: PrivacyLevel, group_names: set[str], failed_name: str
    ) -> str | None:
        """A healthy eligible provider to host a rebuilt shard.

        Returns ``None`` when no healthy eligible provider exists outside
        the stripe group and the failed provider itself is still down; the
        caller leaves the chunk degraded rather than doubling up shards on
        a surviving member (which would forfeit failure independence).
        """
        names = self._replacement_candidates(level, set(group_names))
        if names:
            return names[0]
        if self._provider_usable(failed_name):
            return failed_name  # same provider recovered; re-store there
        return None

    # ------------------------------------------------------------------
    # introspection used by experiments
    # ------------------------------------------------------------------

    def provider_loads(self) -> dict[str, int]:
        """Shard-object count per provider (Table I's Count column)."""
        return self._provider_load()

    # ------------------------------------------------------------------
    # metadata replication (Fig. 2 secondaries) and persistence
    # ------------------------------------------------------------------

    def export_metadata(self) -> dict:
        """Serializable snapshot of all distributor metadata.

        Covers the three tables, hashed credentials, virtual-id state and
        per-chunk stripe geometry -- everything a secondary distributor
        needs to serve retrievals, and everything persistence needs to
        survive a restart.  Provider *data* stays at the providers.
        """
        with self.op_lock:
            return {
                "access": self.access.export_state(),
                "provider_table": self.provider_table.export_state(),
                "client_table": self.client_table.export_state(),
                "chunk_table": self.chunk_table.export_state(),
                "ids": self.ids.export_state(),
                "chunk_state": {
                    # Quarantined chunks (unknown codec) round-trip their
                    # raw packed tuples untouched so a newer build that
                    # understands the codec can still read them.
                    **{
                        vid: tuple(packed)
                        for vid, packed in self._codec_quarantine.items()
                    },
                    **{
                        vid: (
                            state.stripe.codec,
                            state.stripe.width,
                            state.stripe.k,
                            state.stripe.m,
                            state.stripe.shard_size,
                            state.stripe.orig_len,
                            state.rotation,
                            list(state.shard_checksums)
                            if state.shard_checksums is not None
                            else None,
                        )
                        for vid, state in self._chunk_state.items()
                    },
                },
            }

    def import_metadata(self, snapshot: dict) -> None:
        """Replace this distributor's metadata with an exported snapshot."""
        with self.op_lock:
            if self.cache is not None:
                # Chunks may have been updated at the snapshot's source; a
                # stale local cache must not outlive the old metadata.
                self.cache.clear()
            self.access.import_state(snapshot["access"])
            self.provider_table.import_state(snapshot["provider_table"])
            self.client_table.import_state(snapshot["client_table"])
            self.chunk_table.import_state(snapshot["chunk_table"])
            self.ids.import_state(snapshot["ids"])
            chunk_state: dict[int, _ChunkState] = {}
            quarantine: dict[int, tuple] = {}
            for vid, packed in snapshot["chunk_state"].items():
                # Accept both the current 8-field tuple and the 7-field
                # layout from metadata exported before checksum tracking.
                # Field 0 is the codec label; for chunks written before
                # the codec refactor it holds RaidLevel.value strings,
                # which parse identically.  An unparseable codec (from a
                # newer build, or corruption) quarantines the one chunk
                # -- with its raw tuple preserved for re-export -- rather
                # than failing the entire metadata load.
                try:
                    meta = stripe_meta_from_fields(
                        packed[:6], virtual_id=int(vid)
                    )
                except UnknownCodecError as exc:
                    quarantine[int(vid)] = tuple(packed)
                    self.metrics.counter(
                        "distributor_codec_quarantined_total"
                    ).inc()
                    self.events.emit(
                        "codec_quarantined",
                        level="warning",
                        vid=int(vid),
                        spec=exc.spec,
                    )
                    continue
                rotation = packed[6]
                checksums = packed[7] if len(packed) > 7 else None
                chunk_state[int(vid)] = _ChunkState(
                    stripe=meta,
                    rotation=rotation,
                    shard_checksums=(
                        tuple(checksums) if checksums is not None else None
                    ),
                )
            self._chunk_state = chunk_state
            self._codec_quarantine = quarantine

    def stripe_meta(self, client: str, filename: str, serial: int) -> StripeMeta:
        with self.op_lock:
            ref = self.client_table.get(client).ref_for_chunk(filename, serial)
            entry = self.chunk_table.get(ref.chunk_index)
            return self._chunk_state_for(entry, filename).stripe
