"""Password/privacy-level access control (Sections IV-A and V).

Each client registers a set of ⟨password, PL⟩ pairs; a password is
"privileged enough" for a chunk iff its privacy level is **greater than or
equal to** the chunk's privacy level.  This reproduces the paper's worked
example: Bob's password ``x9pr`` (PL 1) may fetch chunk 0 of ``file1``
(PL 1), while ``aB1c`` (PL 0) is denied.

Passwords are stored salted-and-hashed, never in the clear.
"""

from __future__ import annotations

import hashlib
import hmac
import os
from dataclasses import dataclass, field

from repro.core.errors import AuthenticationError, UnknownClientError
from repro.core.privacy import PrivacyLevel


def _hash_password(password: str, salt: bytes) -> bytes:
    return hashlib.pbkdf2_hmac("sha256", password.encode("utf-8"), salt, 1000)


@dataclass
class _Credential:
    salt: bytes
    digest: bytes
    level: PrivacyLevel

    def matches(self, password: str) -> bool:
        # compare_digest keeps the digest comparison constant-time; the
        # PBKDF2 cost dominates anyway, but a short-circuiting ``==`` here
        # would still leak a prefix-length oracle on the digest.
        return hmac.compare_digest(self.digest, _hash_password(password, self.salt))


#: Fixed decoy credential hashed against when a client is unknown or has no
#: credentials, so the failure path costs one PBKDF2 either way and a remote
#: caller cannot enumerate tenant names by timing the gateway.
_DECOY = _Credential(
    salt=b"\x00" * 16,
    digest=_hash_password("\x00decoy", b"\x00" * 16),
    level=PrivacyLevel.PUBLIC,
)


@dataclass
class AccessController:
    """Registry of clients and their ⟨password, PL⟩ credential sets."""

    _clients: dict[str, list[_Credential]] = field(default_factory=dict)

    def register_client(self, client_name: str) -> None:
        """Create an (initially credential-less) client entry."""
        if client_name in self._clients:
            raise ValueError(f"client {client_name!r} already registered")
        self._clients[client_name] = []

    def add_password(
        self, client_name: str, password: str, level: PrivacyLevel | int
    ) -> None:
        """Attach a ⟨password, PL⟩ pair to *client_name*.

        The paper associates "a group of users with a ⟨password, PL⟩ pair at
        client side"; a client therefore typically holds one password per
        privilege tier.
        """
        creds = self._require_client(client_name)
        pl = PrivacyLevel.coerce(level)
        salt = os.urandom(16)
        creds.append(_Credential(salt, _hash_password(password, salt), pl))

    def authenticate(self, client_name: str, password: str) -> PrivacyLevel:
        """Return the privacy level of *password* for *client_name*.

        Raises :class:`AuthenticationError` for an unknown password and
        :class:`UnknownClientError` for an unknown client.
        """
        try:
            creds = self._require_client(client_name)
        except UnknownClientError:
            # Burn the same PBKDF2 work an existing client would cost before
            # failing, so "unknown client" and "wrong password" are not
            # separable by response time.
            _DECOY.matches(password)
            raise
        matched: _Credential | None = None
        # Scan the full credential list without early exit: the loop cost
        # depends only on the list length, not on where (or whether) the
        # password matches.
        for cred in creds:
            if cred.matches(password) and matched is None:
                matched = cred
        if not creds:
            _DECOY.matches(password)
        if matched is not None:
            return matched.level
        raise AuthenticationError(
            f"invalid password for client {client_name!r}"
        )

    def is_authorized(
        self, client_name: str, password: str, chunk_level: PrivacyLevel | int
    ) -> bool:
        """True iff *password* may access a chunk at *chunk_level*.

        Authorization rule (Section V): granted iff the password's privilege
        level >= the chunk's privacy level.  Authentication failures
        propagate as exceptions; this returns False only on a pure
        privilege shortfall.
        """
        granted = self.authenticate(client_name, password)
        return int(granted) >= int(PrivacyLevel.coerce(chunk_level))

    def remove_client(self, client_name: str) -> None:
        """Drop *client_name* and every credential attached to it.

        Raises :class:`UnknownClientError` when absent, so a revocation
        that silently did nothing cannot be mistaken for one that worked.
        """
        self._require_client(client_name)
        del self._clients[client_name]

    def remove_password(self, client_name: str, password: str) -> PrivacyLevel:
        """Revoke one credential, returning the privacy level it carried.

        Raises :class:`AuthenticationError` when no credential matches --
        revoking an already-invalid password is a caller bug, not a no-op.
        """
        creds = self._require_client(client_name)
        for i, cred in enumerate(creds):
            if cred.matches(password):
                del creds[i]
                return cred.level
        raise AuthenticationError(
            f"cannot revoke: invalid password for client {client_name!r}"
        )

    def rotate_password(
        self, client_name: str, old_password: str, new_password: str
    ) -> PrivacyLevel:
        """Replace *old_password* with *new_password* at the same level.

        Authentication of the old password happens before any mutation, so
        a failed rotation leaves the credential set untouched.  Returns the
        privacy level carried across.
        """
        level = self.authenticate(client_name, old_password)
        self.remove_password(client_name, old_password)
        self.add_password(client_name, new_password, level)
        return level

    def knows_client(self, client_name: str) -> bool:
        return client_name in self._clients

    def _require_client(self, client_name: str) -> list[_Credential]:
        try:
            return self._clients[client_name]
        except KeyError:
            raise UnknownClientError(
                f"no client named {client_name!r}"
            ) from None

    # -- replication / persistence -----------------------------------------

    def export_state(self) -> dict:
        """Serializable snapshot (hashed credentials only) for replication."""
        return {
            name: [
                (c.salt.hex(), c.digest.hex(), int(c.level)) for c in creds
            ]
            for name, creds in self._clients.items()
        }

    def import_state(self, state: dict) -> None:
        """Replace this controller's contents with an exported snapshot."""
        self._clients = {
            name: [
                _Credential(
                    bytes.fromhex(salt),
                    bytes.fromhex(digest),
                    PrivacyLevel.coerce(level),
                )
                for salt, digest, level in creds
            ]
            for name, creds in state.items()
        }
