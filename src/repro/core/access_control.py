"""Password/privacy-level access control (Sections IV-A and V).

Each client registers a set of ⟨password, PL⟩ pairs; a password is
"privileged enough" for a chunk iff its privacy level is **greater than or
equal to** the chunk's privacy level.  This reproduces the paper's worked
example: Bob's password ``x9pr`` (PL 1) may fetch chunk 0 of ``file1``
(PL 1), while ``aB1c`` (PL 0) is denied.

Passwords are stored salted-and-hashed, never in the clear.
"""

from __future__ import annotations

import hashlib
import hmac
import os
from dataclasses import dataclass, field

from repro.core.errors import AuthenticationError, UnknownClientError
from repro.core.privacy import PrivacyLevel


def _hash_password(password: str, salt: bytes) -> bytes:
    return hashlib.pbkdf2_hmac("sha256", password.encode("utf-8"), salt, 1000)


@dataclass
class _Credential:
    salt: bytes
    digest: bytes
    level: PrivacyLevel

    def matches(self, password: str) -> bool:
        return hmac.compare_digest(self.digest, _hash_password(password, self.salt))


@dataclass
class AccessController:
    """Registry of clients and their ⟨password, PL⟩ credential sets."""

    _clients: dict[str, list[_Credential]] = field(default_factory=dict)

    def register_client(self, client_name: str) -> None:
        """Create an (initially credential-less) client entry."""
        if client_name in self._clients:
            raise ValueError(f"client {client_name!r} already registered")
        self._clients[client_name] = []

    def add_password(
        self, client_name: str, password: str, level: PrivacyLevel | int
    ) -> None:
        """Attach a ⟨password, PL⟩ pair to *client_name*.

        The paper associates "a group of users with a ⟨password, PL⟩ pair at
        client side"; a client therefore typically holds one password per
        privilege tier.
        """
        creds = self._require_client(client_name)
        pl = PrivacyLevel.coerce(level)
        salt = os.urandom(16)
        creds.append(_Credential(salt, _hash_password(password, salt), pl))

    def authenticate(self, client_name: str, password: str) -> PrivacyLevel:
        """Return the privacy level of *password* for *client_name*.

        Raises :class:`AuthenticationError` for an unknown password and
        :class:`UnknownClientError` for an unknown client.
        """
        creds = self._require_client(client_name)
        for cred in creds:
            if cred.matches(password):
                return cred.level
        raise AuthenticationError(
            f"invalid password for client {client_name!r}"
        )

    def is_authorized(
        self, client_name: str, password: str, chunk_level: PrivacyLevel | int
    ) -> bool:
        """True iff *password* may access a chunk at *chunk_level*.

        Authorization rule (Section V): granted iff the password's privilege
        level >= the chunk's privacy level.  Authentication failures
        propagate as exceptions; this returns False only on a pure
        privilege shortfall.
        """
        granted = self.authenticate(client_name, password)
        return int(granted) >= int(PrivacyLevel.coerce(chunk_level))

    def knows_client(self, client_name: str) -> bool:
        return client_name in self._clients

    def _require_client(self, client_name: str) -> list[_Credential]:
        try:
            return self._clients[client_name]
        except KeyError:
            raise UnknownClientError(
                f"no client named {client_name!r}"
            ) from None

    # -- replication / persistence -----------------------------------------

    def export_state(self) -> dict:
        """Serializable snapshot (hashed credentials only) for replication."""
        return {
            name: [
                (c.salt.hex(), c.digest.hex(), int(c.level)) for c in creds
            ]
            for name, creds in self._clients.items()
        }

    def import_state(self, state: dict) -> None:
        """Replace this controller's contents with an exported snapshot."""
        self._clients = {
            name: [
                _Credential(
                    bytes.fromhex(salt),
                    bytes.fromhex(digest),
                    PrivacyLevel.coerce(level),
                )
                for salt, digest, level in creds
            ]
            for name, creds in state.items()
        }
