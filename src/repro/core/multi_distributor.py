"""Extended architecture with multiple distributors (Fig. 2, Section IV-C).

"A single data distributor can create a bottleneck in the system as it can
be the single point of failure.  To eliminate this, multiple distributors
of cloud data can be introduced.  In case of multiple data distributors,
for each client, a specific distributor will act as the primary distributor
that will upload data, whereas other distributors will act as secondary
distributors who can perform the data retrieval operations."

Each client hashes to a primary distributor; every mutating operation runs
there and its metadata snapshot is synchronously replicated to the
secondaries, so any distributor can serve ``get_chunk``/``get_file`` and
reads survive a primary crash.
"""

from __future__ import annotations

import hashlib

from repro.core.distributor import CloudDataDistributor, FileReceipt
from repro.core.errors import DistributorUnavailableError
from repro.core.privacy import PrivacyLevel
from repro.providers.registry import ProviderRegistry
from repro.util.rng import SeedLike, spawn_seeds


class DistributorGroup:
    """A fleet of distributors with per-client primaries and replication."""

    def __init__(
        self,
        registry: ProviderRegistry,
        n_distributors: int = 3,
        seed: SeedLike = None,
        **distributor_kwargs,
    ) -> None:
        if n_distributors < 1:
            raise ValueError(f"need at least 1 distributor, got {n_distributors}")
        seeds = spawn_seeds(seed, n_distributors)
        # All distributors share the same RNG-derived placement behaviour
        # but must agree on metadata, which replication enforces.
        self.distributors = [
            CloudDataDistributor(registry, seed=seeds[i], **distributor_kwargs)
            for i in range(n_distributors)
        ]
        self._online = [True] * n_distributors

    # -- topology ------------------------------------------------------------

    def primary_index(self, client: str) -> int:
        """Deterministic client -> primary-distributor assignment."""
        digest = hashlib.sha256(client.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big") % len(self.distributors)

    def primary_for(self, client: str) -> CloudDataDistributor:
        index = self.primary_index(client)
        if not self._online[index]:
            raise DistributorUnavailableError(
                f"primary distributor {index} for client {client!r} is offline"
            )
        return self.distributors[index]

    def any_online(self, prefer: int | None = None) -> CloudDataDistributor:
        """Any online distributor (secondaries can serve retrievals)."""
        order = list(range(len(self.distributors)))
        if prefer is not None:
            order.remove(prefer)
            order.insert(0, prefer)
        for index in order:
            if self._online[index]:
                return self.distributors[index]
        raise DistributorUnavailableError("all distributors are offline")

    def crash(self, index: int) -> None:
        """Take distributor *index* offline (single-point-of-failure drill)."""
        self._online[index] = False

    def recover(self, index: int) -> None:
        """Bring distributor *index* back; it re-syncs from a live peer."""
        self._online[index] = True
        for peer_index, up in enumerate(self._online):
            if up and peer_index != index:
                self.distributors[index].import_metadata(
                    self.distributors[peer_index].export_metadata()
                )
                return

    @property
    def online_count(self) -> int:
        return sum(self._online)

    # -- replication -----------------------------------------------------------

    def _replicate_from(self, source_index: int) -> None:
        snapshot = self.distributors[source_index].export_metadata()
        for index, distributor in enumerate(self.distributors):
            if index != source_index and self._online[index]:
                distributor.import_metadata(snapshot)

    def _mutate(self, client: str, op) -> object:
        index = self.primary_index(client)
        if not self._online[index]:
            raise DistributorUnavailableError(
                f"primary distributor {index} for client {client!r} is offline; "
                f"uploads require the primary"
            )
        result = op(self.distributors[index])
        self._replicate_from(index)
        return result

    # -- client-facing API (mirrors CloudDataDistributor) -----------------------

    def register_client(self, name: str) -> None:
        self._mutate(name, lambda d: d.register_client(name))

    def add_password(self, client: str, password: str, level: PrivacyLevel | int) -> None:
        self._mutate(client, lambda d: d.add_password(client, password, level))

    def upload_file(self, client: str, password: str, filename: str, data: bytes,
                    level: PrivacyLevel | int, **kwargs) -> FileReceipt:
        return self._mutate(
            client,
            lambda d: d.upload_file(client, password, filename, data, level, **kwargs),
        )  # type: ignore[return-value]

    def remove_file(self, client: str, password: str, filename: str) -> None:
        self._mutate(client, lambda d: d.remove_file(client, password, filename))

    def remove_chunk(self, client: str, password: str, filename: str, serial: int) -> None:
        self._mutate(client, lambda d: d.remove_chunk(client, password, filename, serial))

    def update_chunk(self, client: str, password: str, filename: str,
                     serial: int, new_payload: bytes) -> None:
        self._mutate(
            client,
            lambda d: d.update_chunk(client, password, filename, serial, new_payload),
        )

    def get_chunk(self, client: str, password: str, filename: str, serial: int) -> bytes:
        """Retrieval may be served by *any* online distributor (Fig. 2)."""
        server = self.any_online(prefer=self.primary_index(client))
        return server.get_chunk(client, password, filename, serial)

    def get_file(self, client: str, password: str, filename: str) -> bytes:
        server = self.any_online(prefer=self.primary_index(client))
        return server.get_file(client, password, filename)

    def chunk_count(self, client: str, filename: str) -> int:
        return self.any_online().chunk_count(client, filename)
