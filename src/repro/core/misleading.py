"""Misleading-data injection (Sections IV-A and VII-D).

"To ensure greater dimension of privacy, the Cloud Data Distributor may add
misleading data into chunks depending on the demand of clients.  The
positions of misleading data bytes are also maintained by the distributor
and these misleading bytes are removed while providing the chunks to the
clients."

The injected positions are indices into the *stored* (post-injection) byte
string -- exactly what the Chunk Table's ``M`` column records -- so removal
is a pure function of (stored bytes, positions).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.obs.metrics import get_metrics
from repro.util.rng import SeedLike, derive_rng


@dataclass(frozen=True)
class InjectionResult:
    """Stored bytes plus the position list the Chunk Table must remember."""

    stored: bytes
    positions: tuple[int, ...]


def inject(
    payload: bytes,
    fraction: float,
    rng: SeedLike = None,
    mimic: bool = True,
) -> InjectionResult:
    """Splice misleading bytes into *payload*.

    ``fraction`` is the ratio of misleading bytes to original bytes (0 keeps
    the payload untouched).  With ``mimic=True`` the fake bytes are sampled
    from the payload's own byte distribution so they are not trivially
    distinguishable; otherwise they are uniform random bytes.

    Positions are indices into the returned ``stored`` buffer, sorted
    ascending, and removal with :func:`remove` restores *payload* exactly.
    """
    if fraction < 0:
        raise ValueError(f"fraction must be >= 0, got {fraction}")
    n_fake = int(round(len(payload) * fraction))
    if n_fake == 0:
        return InjectionResult(stored=payload, positions=())
    t0 = time.perf_counter()
    gen = derive_rng(rng)
    if mimic and payload:
        source = np.frombuffer(payload, dtype=np.uint8)
        fake = source[gen.integers(0, len(source), size=n_fake)]
    else:
        fake = gen.integers(0, 256, size=n_fake, dtype=np.uint8)

    total = len(payload) + n_fake
    # Choose distinct positions in the stored buffer for the fake bytes.
    positions = np.sort(gen.choice(total, size=n_fake, replace=False))
    stored = np.empty(total, dtype=np.uint8)
    mask = np.zeros(total, dtype=bool)
    mask[positions] = True
    stored[mask] = fake
    if payload:
        stored[~mask] = np.frombuffer(payload, dtype=np.uint8)
    metrics = get_metrics()
    metrics.histogram("misleading_transform_seconds", op="inject").observe(
        time.perf_counter() - t0
    )
    metrics.counter("misleading_bytes_total", op="inject").inc(n_fake)
    return InjectionResult(
        stored=stored.tobytes(), positions=tuple(int(p) for p in positions)
    )


def remove(
    stored: bytes,
    positions: tuple[int, ...] | list[int],
    validate: bool = False,
) -> bytes:
    """Strip the misleading bytes at *positions* from *stored*.

    Inverse of :func:`inject`; the paper's read path applies this before
    handing a chunk back to the client.

    Positions come from the distributor's own Chunk Table, where
    :func:`inject` wrote them sorted, distinct and in range -- so the
    read path strips them with a single fancy-index delete and no
    per-call validation.  ``validate=True`` enables the checks for
    callers handling untrusted position lists (tests, imported
    metadata): out-of-range or duplicate positions raise ``ValueError``.
    """
    if not positions:
        return stored
    t0 = time.perf_counter()
    pos = np.asarray(positions, dtype=np.int64)
    if validate:
        if pos.min() < 0 or pos.max() >= len(stored):
            raise ValueError(
                f"misleading positions out of range for buffer of "
                f"{len(stored)} bytes"
            )
        if len(np.unique(pos)) != len(pos):
            raise ValueError("misleading positions contain duplicates")
    out = np.delete(np.frombuffer(stored, dtype=np.uint8), pos).tobytes()
    metrics = get_metrics()
    metrics.histogram("misleading_transform_seconds", op="remove").observe(
        time.perf_counter() - t0
    )
    metrics.counter("misleading_bytes_total", op="remove").inc(len(pos))
    return out
