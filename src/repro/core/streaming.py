"""Constant-memory streaming upload/download through the distributor.

``upload_file``/``get_file`` materialize the whole file (and its encoded
stripe set) in memory -- fine for the paper's chunk-scale experiments,
fatal for arbitrarily large files.  This module windows the same data
path: a bounded buffer of ``window_chunks`` chunks is read, encoded,
placed and transferred before the next window is read, so peak memory is
O(window), not O(file).

The wire cooperates: :meth:`RemoteProvider.put_stream` /
:meth:`RemoteProvider.get_stream` carry each shard as its own frame over
a STREAM_PUT/STREAM_GET session instead of one aggregate batch payload,
and the server rolls back a window whose sender dies mid-stream.  Every
other distributor invariant is reused, not reimplemented: placement and
id allocation run under the op lock via ``_plan_chunk``, write-path
failover via ``_recover_plan``, the intent journal via the same
``upload`` transaction shape, commit via ``_commit_plan``.

Atomicity matches ``upload_file``: committed windows stay *invisible*
(no client ref points at their chunks) until the final commit, and any
failure deletes every chunk the stream created.  One caveat is
inherent to streaming: chunk *metadata* (tables, checksums) is O(chunks),
roughly half a kilobyte per chunk -- multi-gigabyte files should raise
``chunk_size`` (e.g. to 1 MiB) so metadata stays small while the byte
path stays O(window).
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Iterator

from repro.core import chunking
from repro.core.errors import PlacementError, ProviderError, ReproError
from repro.core.privacy import PrivacyLevel
from repro.core.tables import FileChunkRef
from repro.providers.base import blob_checksum
from repro.util.crash import crashpoint

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.distributor import (
        CloudDataDistributor,
        FileReceipt,
        _ChunkPlan,
        _FetchJob,
    )
    from repro.crypto.stream import StreamCipher
    from repro.raid.codecs import CodecSpec
    from repro.raid.striping import RaidLevel

#: Chunks per in-flight window.  Uploads pipeline windows at depth 1 (the
#: previous window transfers while the next is read and planned), so peak
#: upload memory is roughly ``window_chunks * chunk_size`` for the read
#: buffer plus *two* windows' encoded shards (times the RAID storage
#: overhead).
DEFAULT_WINDOW_CHUNKS = 8


class _WindowTransfer:
    """One window's transfer phase, running on its own thread.

    Uploads overlap window N's (lock-free) wire transfer with reading and
    planning window N+1 -- the window buffer is free to refill as soon as
    planning copied its bytes into the plans' shards.  :meth:`join` blocks
    until the wire settles and re-raises transport failure or the first
    unrecoverable shard loss.
    """

    def __init__(self, dist: "CloudDataDistributor",
                 plans: "list[_ChunkPlan]") -> None:
        self._dist = dist
        self.plans = plans
        self._error: BaseException | None = None
        self._lost: "list[_ChunkPlan]" = []
        self._thread = threading.Thread(
            target=self._run, name="stream-window-transfer", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        dist = self._dist
        try:
            with dist._phase("put_stream", "transfer"):
                dist._transfer_plans(self.plans, use_stream=True)
                self._lost = [
                    p for p in self.plans if dist._recover_plan(p)
                ]
        except BaseException as exc:  # noqa: BLE001 - re-raised by join()
            self._error = exc

    def join(self) -> None:
        self._thread.join()
        if self._error is not None:
            raise self._error
        if self._lost:
            raise self._lost[0].first_error

    def wait(self) -> None:
        """Join without raising (abort path: outcome no longer matters)."""
        self._thread.join()


def put_stream(
    dist: "CloudDataDistributor",
    client: str,
    password: str,
    filename: str,
    fileobj,
    level: "PrivacyLevel | int",
    raid_level: "RaidLevel | None" = None,
    stripe_width: int | None = None,
    codec: "CodecSpec | str | None" = None,
    misleading_fraction: float = 0.0,
    chunk_size: int | None = None,
    window_chunks: int = DEFAULT_WINDOW_CHUNKS,
    cipher: "StreamCipher | None" = None,
) -> "FileReceipt":
    """Upload *fileobj* (a readable binary stream) in bounded windows.

    Chunk boundaries are byte-identical to ``split(data)`` of the whole
    file, so ``get_file`` and ``get_stream`` read streamed uploads
    interchangeably.  With *cipher*, each chunk is encrypted with
    ``nonce=serial`` before placement (pass the same cipher to
    :func:`get_stream`).  Returns the same :class:`FileReceipt` as
    ``upload_file``.
    """
    from repro.core.distributor import FileReceipt

    pl = PrivacyLevel.coerce(level)
    try:
        dist._authorize(client, password, pl)
    except ReproError as exc:
        dist._record_op("upload", client, filename, None,
                        ok=False, detail=type(exc).__name__)
        raise
    if window_chunks < 1:
        raise ValueError(f"window_chunks must be >= 1, got {window_chunks}")

    with dist.op_lock:
        dist._check_new_filename(client, filename)
        codec_obj = dist._resolve_codec(pl, raid_level, stripe_width, codec)
        if chunk_size is None:
            chunk_size = dist.chunk_policy.chunk_size(pl)
        if chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        dist._inflight_uploads.setdefault(client, set()).add(filename)

    txn = None
    if dist.journal is not None:
        txn = dist.journal.begin("upload", client, filename)
        crashpoint("upload.intent_logged")

    window = bytearray(window_chunks * chunk_size)
    view = memoryview(window)
    refs: list[FileChunkRef] = []  # committed windows, not yet visible
    serial = 0
    total_bytes = 0
    # Working per-provider load copy, advanced as chunks are planned --
    # the same accounting the pipelined path keeps across one file's
    # chunks -- so a fault-free streamed upload places bit-identically
    # to a pipelined one even though windows commit as they go.
    load: dict[str, int] | None = None
    # The window currently in flight on the wire (depth-1 pipeline):
    # (plans, keys already journaled, transfer thread).
    prev: "tuple[list[_ChunkPlan], set, _WindowTransfer] | None" = None

    def abort(inflight: "list[_ChunkPlan]") -> None:
        """Erase the stream's whole fleet/table footprint, best effort."""
        pending = list(inflight)
        if prev is not None:
            prev[2].wait()  # settle the wire before rolling it back
            seen = {id(p) for p in pending}
            pending.extend(p for p in prev[0] if id(p) not in seen)
        for plan in pending:
            dist._rollback_plan(plan)
        with dist.op_lock:
            for ref in refs:
                dist._delete_chunk(ref)
        if txn is not None:
            dist.journal.abort(txn)

    def join_and_commit() -> None:
        """Wait out the in-flight window's wire phase, then commit it."""
        nonlocal prev
        assert prev is not None
        plans, logged_keys, transfer = prev
        transfer.join()
        if txn is not None:
            moved = [
                pair
                for plan in plans
                for pair in dist._plan_put_keys(plan)
                if pair not in logged_keys
            ]
            if moved:
                dist.journal.extend(txn, moved)
        crashpoint("upload.transferred")
        # -- commit (critical section): tables, free the shards --
        with dist.op_lock, dist._phase("put_stream", "commit"):
            for plan in plans:
                plan.checksums = tuple(
                    blob_checksum(s) for s in plan.shards
                )
                plan.shards = []
                chunk_index = dist._commit_plan(plan)
                refs.append(
                    FileChunkRef(
                        filename=filename,
                        serial=plan.serial,
                        privacy_level=pl,
                        chunk_index=chunk_index,
                    )
                )
        prev = None

    try:
        plans: list["_ChunkPlan"] = []
        try:
            while True:
                filled = chunking.read_into(fileobj, view)
                if filled == 0 and serial > 0:
                    break
                # An empty *file* still yields one empty chunk, same as
                # split().
                payloads: list["bytes | memoryview"] = [
                    view[off : min(off + chunk_size, filled)]
                    for off in range(0, filled, chunk_size)
                ] or [b""]

                plans = []
                # -- plan (critical section): placement, rng, id draws --
                with dist.op_lock, dist._phase("put_stream", "plan"):
                    if load is None:
                        load = dist._provider_load()
                    for payload in payloads:
                        if cipher is not None:
                            payload = cipher.encrypt(payload, nonce=serial)
                        elif misleading_fraction > 0:
                            # inject() manipulates bytes; window slices
                            # must not leak into stored positions.
                            payload = bytes(payload)
                        plan = dist._plan_chunk(
                            payload, pl, serial, codec_obj,
                            misleading_fraction, load=load,
                        )
                        for name in plan.assigned:
                            load[name] = load.get(name, 0) + 1
                        plans.append(plan)
                        serial += 1
                logged_keys: set = set()
                if txn is not None:
                    logged = [
                        pair
                        for plan in plans
                        for pair in dist._plan_put_keys(plan)
                    ]
                    dist.journal.extend(txn, logged)
                    logged_keys = set(logged)

                # The previous window's wire phase ran concurrently with
                # the read+plan above; settle and commit it before this
                # window takes its place in flight (bounds memory to two
                # windows' shards and keeps commits in serial order).
                if prev is not None:
                    join_and_commit()
                prev = (plans, logged_keys, _WindowTransfer(dist, plans))

                total_bytes += filled
                if filled < len(window):
                    break  # read_into only under-fills at EOF
            if prev is not None:
                join_and_commit()
        except (ProviderError, PlacementError, OSError) as exc:
            abort(plans)
            dist._record_op("upload", client, filename, None,
                            ok=False, detail=type(exc).__name__)
            raise

        # -- finalize: the file becomes visible in one step ---------------
        with dist.op_lock:
            dist.client_table.get(client).chunk_refs.extend(refs)
            if txn is not None:
                dist.journal.commit(
                    txn,
                    {
                        "client": client,
                        "filename": filename,
                        "remove": [],
                        "add": [
                            dist._chunk_spec(client, ref) for ref in refs
                        ],
                    },
                )
        crashpoint("upload.committed")
    finally:
        view.release()
        dist._release_upload_slot(client, filename)

    dist._record_op("upload", client, filename, None, ok=True)
    return FileReceipt(
        filename=filename,
        privacy_level=pl,
        chunk_count=serial,
        file_size=total_bytes,
        raid_level=codec_obj.raid_level,
        stripe_width=codec_obj.n,
        codec=codec_obj.label,
    )


def get_stream(
    dist: "CloudDataDistributor",
    client: str,
    password: str,
    filename: str,
    window_chunks: int = DEFAULT_WINDOW_CHUNKS,
    cipher: "StreamCipher | None" = None,
) -> Iterator[bytes]:
    """Yield *filename*'s plaintext chunk by chunk with O(window) memory.

    Resolution and authorization run eagerly (errors raise here, not in
    the generator); shard traffic happens lazily, ``window_chunks``
    chunks at a time over STREAM_GET, and each window's shard bytes are
    released before the next window is fetched.  ``b"".join(...)`` of
    the yields equals ``get_file``'s result.
    """
    from repro.core.distributor import _FetchJob

    if window_chunks < 1:
        raise ValueError(f"window_chunks must be >= 1, got {window_chunks}")
    with dist.op_lock:
        refs = dist.client_table.get(client).refs_for_file(filename)
        dist._authorize(client, password, refs[0].privacy_level)
        jobs: list[_FetchJob] = []
        for ref in refs:
            entry = dist.chunk_table.get(ref.chunk_index)
            names = [
                dist.provider_table.get(i).name
                for i in entry.provider_indices
            ]
            jobs.append(
                _FetchJob(
                    serial=ref.serial,
                    entry=entry,
                    state=dist._chunk_state_for(entry, filename),
                    names=names,
                    cached=(
                        dist.cache.get(entry.virtual_id)
                        if dist.cache is not None
                        else None
                    ),
                )
            )

    def generate() -> Iterator[bytes]:
        try:
            for start in range(0, len(jobs), window_chunks):
                batch = jobs[start : start + window_chunks]
                with dist._phase("get_stream", "fetch"):
                    dist._prefetch_jobs(batch, use_stream=True)
                for job in batch:
                    payload = dist._assemble_job(job)
                    if dist.cache is not None and job.cached is None:
                        # Same fill as get_file; the cache is bounded by
                        # its own eviction policy, so this cannot grow the
                        # stream's footprint past the cache budget.
                        with dist.op_lock:
                            dist.cache.put(job.entry.virtual_id, payload)
                    # Free the window's shard bytes before yielding; the
                    # generator may be held open for a long time.
                    job.prefetched.clear()
                    job.cached = None
                    if cipher is not None:
                        payload = cipher.decrypt(payload, nonce=job.serial)
                    yield payload
        except ReproError as exc:
            dist._record_op("get_file", client, filename, None,
                            ok=False, detail=type(exc).__name__)
            raise
        dist._record_op("get_file", client, filename, None, ok=True)

    return generate()
