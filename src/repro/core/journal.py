"""Write-ahead intent journal for the distributor's mutating ops.

The metadata snapshot (:mod:`repro.core.persistence`) makes the tables
durable *between* operations; this journal makes the operations themselves
crash-consistent.  Before an upload/update/remove moves any bytes, the
distributor appends a fsynced *intent* record naming every provider object
the operation is about to create (and, for removes, the full description of
every chunk it is about to destroy).  After the tables are updated, a
*commit* record carries the table delta.  Startup recovery then resolves
every transaction the previous process left behind:

* **intent without commit** -- the op died mid-flight.  Uploads and the
  staged half of updates are rolled *back*: every object named by the
  intent is deleted, so no shard survives that no table entry remembers.
  Removes are rolled *forward* (shards cannot be un-deleted, so the only
  consistent end state is the delete completed).
* **commit present** -- the op finished but the metadata snapshot on disk
  may predate it.  The commit's delta is re-applied: removed chunks are
  purged from providers and tables, added chunks are re-inserted -- but
  only when enough of their shards actually survive (``>= k``); otherwise
  the remnants are deleted, because resurrecting an unreadable chunk would
  punch a hole in the table.

Records are JSON lines, each flushed and fsynced before the operation
proceeds.  A torn tail line (power cut mid-append) is expected and ignored;
everything before it was durable by construction.  ``checkpoint()`` --
called right after a successful metadata save -- drops resolved
transactions, so the journal stays tiny.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

from repro.core.errors import (
    BlobNotFoundError,
    ProviderError,
    UnknownClientError,
    UnknownCodecError,
)
from repro.core.privacy import PrivacyLevel
from repro.core.tables import ChunkEntry, FileChunkRef
from repro.core.virtual_id import shard_key, snapshot_key
from repro.raid.codecs import stripe_meta_from_fields
from repro.util.atomic import atomic_write_bytes, fsync_dir
from repro.util.crash import crashpoint

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.distributor import CloudDataDistributor


@dataclass
class JournalTxn:
    """One journaled operation, assembled from its records."""

    txn: int
    op: str  # "upload" | "update" | "remove"
    client: str
    filename: str | None
    put_keys: list[tuple[str, str]] = field(default_factory=list)
    remove_specs: list[dict] = field(default_factory=list)
    state: str = "open"  # "open" | "committed" | "aborted"
    delta: dict | None = None


class IntentJournal:
    """Append-only, fsynced journal of in-flight distributor operations."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._lock = threading.Lock()
        self._trim_torn_tail()
        self._next_txn = 1 + max(
            (t.txn for t in self.replay()), default=0
        )

    def _trim_torn_tail(self) -> None:
        """Truncate a torn (newline-less) final record left by a crash.

        Replay already ignores it, but the *next* ``O_APPEND`` write would
        glue its record onto the torn half-line and lose both; trimming at
        open time keeps the file record-aligned forever after.
        """
        try:
            raw = self.path.read_bytes()
        except FileNotFoundError:
            return
        if not raw or raw.endswith(b"\n"):
            return
        keep = raw.rfind(b"\n") + 1
        with open(self.path, "rb+") as fh:
            fh.truncate(keep)
            fh.flush()
            os.fsync(fh.fileno())

    # -- appending ---------------------------------------------------------

    def _append(self, record: dict) -> None:
        line = (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")
        with self._lock:
            created = not self.path.exists()
            fd = os.open(
                str(self.path), os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
            )
            try:
                # Two writes with a kill point in between model the torn
                # tail a real power cut can leave; replay tolerates it.
                half = len(line) // 2
                os.write(fd, line[:half])
                crashpoint("journal.append.torn")
                os.write(fd, line[half:])
                os.fsync(fd)
            finally:
                os.close(fd)
            if created:
                fsync_dir(self.path.parent)
        crashpoint("journal.appended")

    def begin(
        self,
        op: str,
        client: str,
        filename: str | None,
        *,
        put_keys: list[tuple[str, str]] | None = None,
        remove_specs: list[dict] | None = None,
    ) -> int:
        """Durably record intent; returns the transaction id."""
        with self._lock:
            txn = self._next_txn
            self._next_txn += 1
        self._append(
            {
                "rec": "intent",
                "txn": txn,
                "op": op,
                "client": client,
                "filename": filename,
                "put_keys": [list(pair) for pair in (put_keys or [])],
                "remove": remove_specs or [],
            }
        )
        return txn

    def extend(self, txn: int, put_keys: list[tuple[str, str]]) -> None:
        """Durably add more to-be-written keys to an open transaction."""
        self._append(
            {
                "rec": "extend",
                "txn": txn,
                "put_keys": [list(pair) for pair in put_keys],
            }
        )

    def commit(self, txn: int, delta: dict) -> None:
        """Durably mark *txn* finished, carrying its table delta."""
        self._append({"rec": "commit", "txn": txn, "delta": delta})

    def abort(self, txn: int) -> None:
        """Durably mark *txn* rolled back by the live process."""
        self._append({"rec": "abort", "txn": txn})

    # -- reading -----------------------------------------------------------

    def replay(self) -> list[JournalTxn]:
        """Reassemble every transaction on disk, in append order.

        Unparseable lines are skipped: with per-record fsync only the tail
        can be torn, and a torn record belongs to an operation that never
        proceeded past it.
        """
        try:
            raw = self.path.read_bytes()
        except FileNotFoundError:
            return []
        txns: dict[int, JournalTxn] = {}
        for line in raw.splitlines():
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                kind, txn_id = record["rec"], int(record["txn"])
            except (ValueError, KeyError, TypeError):
                continue  # torn or foreign line
            if kind == "intent":
                txns[txn_id] = JournalTxn(
                    txn=txn_id,
                    op=str(record.get("op", "")),
                    client=str(record.get("client", "")),
                    filename=record.get("filename"),
                    put_keys=[tuple(p) for p in record.get("put_keys", [])],
                    remove_specs=list(record.get("remove", [])),
                )
            elif txn_id in txns:
                txn = txns[txn_id]
                if kind == "extend":
                    txn.put_keys.extend(
                        tuple(p) for p in record.get("put_keys", [])
                    )
                elif kind == "commit":
                    txn.state = "committed"
                    txn.delta = record.get("delta")
                elif kind == "abort":
                    txn.state = "aborted"
        return [txns[t] for t in sorted(txns)]

    def pending(self) -> list[JournalTxn]:
        """Transactions needing recovery (anything not checkpointed away)."""
        return self.replay()

    def checkpoint(self) -> None:
        """Drop resolved transactions; call right after a metadata save.

        Only still-open transactions survive (none, in the single-process
        CLI flow).  The rewrite is atomic and fsynced.
        """
        with self._lock:
            open_txns = [t for t in self.replay() if t.state == "open"]
            lines = []
            for t in open_txns:
                lines.append(
                    json.dumps(
                        {
                            "rec": "intent",
                            "txn": t.txn,
                            "op": t.op,
                            "client": t.client,
                            "filename": t.filename,
                            "put_keys": [list(p) for p in t.put_keys],
                            "remove": t.remove_specs,
                        },
                        sort_keys=True,
                    )
                )
            atomic_write_bytes(
                self.path, ("\n".join(lines) + "\n" if lines else "").encode()
            )


# ---------------------------------------------------------------------------
# startup recovery
# ---------------------------------------------------------------------------


@dataclass
class RecoveryReport:
    """What startup recovery did with the journal it found."""

    txns_seen: int = 0
    rolled_back: int = 0
    rolled_forward: int = 0
    objects_deleted: int = 0
    chunks_restored: int = 0
    chunks_dropped: int = 0

    @property
    def acted(self) -> bool:
        return self.txns_seen > 0

    def summary(self) -> str:
        return (
            f"journal recovery: {self.txns_seen} txn(s) -- "
            f"{self.rolled_back} rolled back, {self.rolled_forward} rolled "
            f"forward, {self.objects_deleted} object(s) deleted, "
            f"{self.chunks_restored} chunk(s) restored, "
            f"{self.chunks_dropped} dropped"
        )


def _delete_object(
    distributor: "CloudDataDistributor", name: str, key: str
) -> bool:
    """Best-effort delete of one provider object; True if it went away."""
    if name not in distributor.registry:
        return False
    try:
        distributor.registry.get(name).provider.delete(key)
        return True
    except BlobNotFoundError:
        return False
    except ProviderError:
        return False


def _spec_keys(spec: dict) -> list[tuple[str, str]]:
    """Every (provider, key) pair a chunk spec occupies."""
    vid = int(spec["vid"])
    pairs = [
        (name, shard_key(vid, i)) for i, name in enumerate(spec["providers"])
    ]
    if spec.get("snapshot"):
        pairs.append((spec["snapshot"], snapshot_key(vid)))
    return pairs


def _chunk_index_for_vid(distributor: "CloudDataDistributor", vid: int):
    for index, entry in distributor.chunk_table:
        if entry.virtual_id == vid:
            return index
    return None


def _purge_spec(
    distributor: "CloudDataDistributor", spec: dict, report: RecoveryReport
) -> None:
    """Roll a chunk spec forward out of existence: objects, tables, refs."""
    vid = int(spec["vid"])
    for name, key in _spec_keys(spec):
        if _delete_object(distributor, name, key):
            report.objects_deleted += 1
        if name in distributor.registry:
            try:
                table_index = distributor.provider_table.index_of(name)
            except KeyError:
                continue
            distributor.provider_table.record_remove(table_index, key)
    index = _chunk_index_for_vid(distributor, vid)
    if index is not None:
        distributor.chunk_table.remove(index)
        distributor._chunk_state.pop(vid, None)
        distributor.ids.release(vid)
        if distributor.cache is not None:
            distributor.cache.invalidate(vid)
        try:
            client_entry = distributor.client_table.get(spec.get("client", ""))
        except UnknownClientError:
            client_entry = None
        if client_entry is not None:
            client_entry.chunk_refs = [
                r for r in client_entry.chunk_refs if r.chunk_index != index
            ]


def _shards_surviving(distributor: "CloudDataDistributor", spec: dict) -> int:
    """How many of a spec's shards demonstrably still exist."""
    vid = int(spec["vid"])
    present = 0
    for i, name in enumerate(spec["providers"]):
        if name not in distributor.registry:
            continue
        try:
            if distributor.registry.get(name).provider.contains(
                shard_key(vid, i)
            ):
                present += 1
        except ProviderError:
            # Unreachable provider: assume the shard survived; the
            # scrubber rebuilds it later if it did not.
            present += 1
    return present


def _restore_spec(
    distributor: "CloudDataDistributor", spec: dict, report: RecoveryReport
) -> None:
    """Roll a committed chunk spec forward into the tables (if viable)."""
    vid = int(spec["vid"])
    stripe = spec["stripe"]
    k = int(stripe[2])
    client = spec.get("client", "")
    try:
        client_entry = distributor.client_table.get(client)
    except UnknownClientError:
        client_entry = None
    already = _chunk_index_for_vid(distributor, vid)
    if already is not None or client_entry is None:
        if already is None:
            # No client row to hang the chunk on: unreachable data, purge.
            _purge_spec(distributor, spec, report)
            report.chunks_dropped += 1
        return
    if _shards_surviving(distributor, spec) < k:
        # Too few shards made it to disk: resurrecting the entry would be
        # a permanent table hole.  The upload never finished from the
        # client's point of view; delete the remnants instead.
        _purge_spec(distributor, spec, report)
        report.chunks_dropped += 1
        return

    from repro.core.distributor import _ChunkState  # cycle-free at runtime

    provider_indices = []
    for i, name in enumerate(spec["providers"]):
        table_index = distributor.provider_table.index_of(name)
        distributor.provider_table.record_store(table_index, shard_key(vid, i))
        provider_indices.append(table_index)
    snapshot_index = None
    if spec.get("snapshot"):
        snapshot_index = distributor.provider_table.index_of(spec["snapshot"])
        distributor.provider_table.record_store(
            snapshot_index, snapshot_key(vid)
        )
    index = distributor.chunk_table.add(
        ChunkEntry(
            virtual_id=vid,
            privacy_level=PrivacyLevel.coerce(spec["level"]),
            provider_indices=provider_indices,
            snapshot_index=snapshot_index,
            misleading_positions=tuple(spec.get("positions", ())),
        )
    )
    checksums = spec.get("checksums")
    try:
        meta = stripe_meta_from_fields(
            stripe[:6], filename=spec.get("filename"), virtual_id=vid
        )
    except UnknownCodecError:
        # Same quarantine path as import_metadata: keep the chunk's raw
        # stripe fields aside instead of crashing recovery; reads of it
        # raise a typed error and fsck classifies it.
        distributor._codec_quarantine[vid] = (
            tuple(stripe[:6])
            + (int(spec.get("rotation", 0)),)
            + ((list(checksums),) if checksums else (None,))
        )
    else:
        distributor._chunk_state[vid] = _ChunkState(
            stripe=meta,
            rotation=int(spec.get("rotation", 0)),
            shard_checksums=tuple(checksums) if checksums else None,
        )
    if vid not in distributor.ids:
        distributor.ids.reserve(vid)
    ref = FileChunkRef(
        filename=spec["filename"],
        serial=int(spec["serial"]),
        privacy_level=distributor.chunk_table.get(index).privacy_level,
        chunk_index=index,
    )
    for i, existing in enumerate(client_entry.chunk_refs):
        if (
            existing.filename == ref.filename
            and existing.serial == ref.serial
        ):
            client_entry.chunk_refs[i] = ref
            break
    else:
        client_entry.chunk_refs.append(ref)
    report.chunks_restored += 1


def recover_from_journal(
    distributor: "CloudDataDistributor", journal: IntentJournal
) -> RecoveryReport:
    """Resolve every transaction the previous process left in *journal*.

    Call once at startup, after :func:`~repro.core.persistence.load_metadata`
    (or on a fresh distributor when no snapshot exists).  Idempotent: every
    action is a conditional delete or a presence-checked insert, so running
    recovery twice converges to the same state.  The caller should save the
    metadata snapshot and :meth:`IntentJournal.checkpoint` afterwards.
    """
    report = RecoveryReport()
    with distributor.op_lock:
        for txn in journal.replay():
            report.txns_seen += 1
            if txn.state == "committed" and txn.delta is not None:
                delta = txn.delta
                for spec in delta.get("remove", ()):
                    spec.setdefault("client", txn.client)
                    spec.setdefault("filename", txn.filename)
                    _purge_spec(distributor, spec, report)
                for spec in delta.get("add", ()):
                    spec.setdefault("client", txn.client)
                    spec.setdefault("filename", txn.filename)
                    _restore_spec(distributor, spec, report)
                report.rolled_forward += 1
                continue
            # Open or aborted transaction: the op never (durably) finished.
            if txn.op == "remove":
                # Shards cannot be un-deleted; completing the remove is
                # the only consistent end state.
                for spec in txn.remove_specs:
                    spec.setdefault("client", txn.client)
                    spec.setdefault("filename", txn.filename)
                    _purge_spec(distributor, spec, report)
                report.rolled_forward += 1
            else:
                report.rolled_back += 1
            for name, key in txn.put_keys:
                if _delete_object(distributor, name, key):
                    report.objects_deleted += 1
            if txn.state == "open":
                # Durably mark the txn resolved, or it would outlive the
                # next checkpoint (which preserves open transactions) and
                # be re-rolled-back on every boot.
                journal.abort(txn.txn)
    if report.acted:
        distributor.metrics.counter(
            "journal_recovery_txns_total"
        ).inc(report.txns_seen)
        distributor.events.emit(
            "journal_recovery",
            rolled_back=report.rolled_back,
            rolled_forward=report.rolled_forward,
            objects_deleted=report.objects_deleted,
        )
    return report
