"""Distributor-side chunk cache.

The paper's conclusion flags "performance overhead when client needs to
access all data frequently" as the system's main cost.  A small LRU cache
of decoded chunk payloads at the distributor absorbs repeated reads
without touching providers (authorization still runs per request --
caching sits below the access check, keyed by virtual id).
"""

from __future__ import annotations

from collections import OrderedDict

from repro.obs.metrics import MetricsRegistry, get_metrics


class ChunkCache:
    """Byte-capacity-bounded LRU of decoded chunk payloads.

    Hit/miss/eviction tallies feed both the instance attributes (kept for
    direct inspection) and the shared ``cache_*_total`` counters in the
    metrics registry, so ``repro stats`` sees cache behaviour without a
    handle on the cache object.
    """

    def __init__(
        self,
        capacity_bytes: int,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if capacity_bytes <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        metrics = metrics if metrics is not None else get_metrics()
        self._hits = metrics.counter(
            "cache_hits_total", help="chunk cache hits"
        )
        self._misses = metrics.counter(
            "cache_misses_total", help="chunk cache misses"
        )
        self._evictions = metrics.counter(
            "cache_evictions_total", help="chunk cache LRU evictions"
        )
        self._stored = metrics.gauge(
            "cache_stored_bytes", help="bytes currently cached"
        )
        self._entries: OrderedDict[int, bytes] = OrderedDict()
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, virtual_id: int) -> bytes | None:
        """Cached payload for *virtual_id*, refreshing its recency."""
        payload = self._entries.get(virtual_id)
        if payload is None:
            self.misses += 1
            self._misses.inc()
            return None
        self._entries.move_to_end(virtual_id)
        self.hits += 1
        self._hits.inc()
        return payload

    def put(self, virtual_id: int, payload: bytes) -> None:
        """Insert/refresh a payload, evicting LRU entries over capacity.

        Payloads larger than the whole cache are not cached at all.
        """
        if len(payload) > self.capacity_bytes:
            return
        old = self._entries.pop(virtual_id, None)
        if old is not None:
            self._bytes -= len(old)
        self._entries[virtual_id] = payload
        self._bytes += len(payload)
        while self._bytes > self.capacity_bytes:
            _, evicted = self._entries.popitem(last=False)
            self._bytes -= len(evicted)
            self.evictions += 1
            self._evictions.inc()
        self._stored.set(self._bytes)

    def invalidate(self, virtual_id: int) -> None:
        old = self._entries.pop(virtual_id, None)
        if old is not None:
            self._bytes -= len(old)
            self._stored.set(self._bytes)

    def clear(self) -> None:
        self._entries.clear()
        self._bytes = 0
        self._stored.set(0)

    @property
    def stored_bytes(self) -> int:
        return self._bytes

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, virtual_id: int) -> bool:
        return virtual_id in self._entries
