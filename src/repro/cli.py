"""Command-line interface: a disk-backed deployment of the distributor.

Runs the full categorize/fragment/distribute pipeline against real files,
with providers persisted as directories and distributor metadata saved as
checksummed JSON -- a working miniature of the paper's system::

    python -m repro init --state ./cloud --providers 6
    python -m repro register-client --state ./cloud Bob
    python -m repro add-password --state ./cloud Bob s3cret 3
    python -m repro put --state ./cloud Bob s3cret report.csv --level 3
    python -m repro ls --state ./cloud Bob s3cret
    python -m repro get --state ./cloud Bob s3cret report.csv -o out.csv
    python -m repro status --state ./cloud
    python -m repro suggest-level report.csv
"""

from __future__ import annotations

import argparse
import contextlib
import hashlib
import json
import os
import sys
from pathlib import Path

from repro.core.cache import ChunkCache
from repro.core.categorize import check_level, suggest_level
from repro.core.distributor import CloudDataDistributor
from repro.core.errors import UnknownCodecError
from repro.core.persistence import load_metadata, save_metadata
from repro.core.privacy import ChunkSizePolicy, CostLevel, PrivacyLevel
from repro.obs.events import EventLog, set_events
from repro.obs.metrics import MetricsRegistry, get_metrics, set_metrics
from repro.obs.trace import Tracer, get_tracer, set_tracer
from repro.providers.disk import DiskProvider
from repro.providers.registry import ProviderRegistry, provider_from_url
from repro.util.tables import render_table
from repro.util.units import format_bytes

FLEET_FILE = "fleet.json"
METADATA_FILE = "metadata.json"
METRICS_FILE = "metrics.json"
JOURNAL_FILE = "journal.jsonl"

#: Chunk-cache budget for CLI deployments; enough to keep a whole file
#: hot across a get + verify pass without growing unbounded.
CACHE_BYTES = 64 << 20

# The registry installed by the current invocation's ``_open``; metrics
# are persisted only when this matches the live registry, so commands
# that never opened a deployment don't write stale process-wide state.
_installed_registry: MetricsRegistry | None = None


def _state_dir(args) -> Path:
    return Path(args.state)


def _init(args) -> int:
    state = _state_dir(args)
    if (state / FLEET_FILE).exists():
        print(f"error: {state} already initialized", file=sys.stderr)
        return 1
    state.mkdir(parents=True, exist_ok=True)
    fleet = []
    for i in range(args.providers):
        # Ladder the trust levels so every PL has somewhere to go.
        pl = 3 if i < max(4, args.providers // 2) else (i % 4)
        fleet.append(
            {"name": f"P{i}", "privacy_level": pl, "cost_level": i % 4,
             "region": "default"}
        )
    (state / FLEET_FILE).write_text(json.dumps(fleet, indent=2))
    for spec in fleet:
        (state / "providers" / spec["name"]).mkdir(parents=True, exist_ok=True)
    print(f"initialized {args.providers} disk providers under {state}")
    return 0


def _build_registry(state: Path) -> ProviderRegistry:
    """Provider registry from the deployment's ``fleet.json``."""
    fleet_path = state / FLEET_FILE
    registry = ProviderRegistry()
    for spec in json.loads(fleet_path.read_text()):
        # A fleet entry may point at any provider URL (e.g. a
        # remote://host:port chunk server); bare entries stay disk-backed.
        if "url" in spec:
            try:
                provider = provider_from_url(spec["name"], spec["url"])
            except ValueError as exc:
                raise SystemExit(
                    f"error: bad fleet entry {spec['name']!r} in {fleet_path}: {exc}"
                )
        else:
            provider = DiskProvider(
                spec["name"], state / "providers" / spec["name"]
            )
        registry.register(
            provider,
            PrivacyLevel.coerce(spec["privacy_level"]),
            CostLevel.coerce(spec["cost_level"]),
            region=spec.get("region", "default"),
        )
    return registry


def _open(args) -> tuple[CloudDataDistributor, Path]:
    global _installed_registry
    state = _state_dir(args)
    fleet_path = state / FLEET_FILE
    if not fleet_path.exists():
        raise SystemExit(f"error: {state} is not initialized (run `init` first)")
    if (state / FLEET_STATE_FILE).exists():
        raise SystemExit(
            f"error: {state} is a sharded fleet deployment "
            f"(use the fleet-*/shard-* commands)"
        )
    # Fresh telemetry per invocation: this run's counts merge into the
    # deployment's persisted totals on exit (see ``_persist_metrics``),
    # and a fresh registry keeps repeated in-process invocations from
    # double-counting older runs.
    _installed_registry = MetricsRegistry()
    set_metrics(_installed_registry)
    set_tracer(Tracer())
    set_events(EventLog())
    registry = _build_registry(state)
    from repro.core.journal import IntentJournal, recover_from_journal

    journal = IntentJournal(state / JOURNAL_FILE)
    distributor = CloudDataDistributor(
        registry,
        chunk_policy=ChunkSizePolicy(),
        seed=0xC11,
        cache=ChunkCache(CACHE_BYTES),
        journal=journal,
    )
    metadata_path = state / METADATA_FILE
    if metadata_path.exists():
        load_metadata(distributor, metadata_path)
    # Resolve whatever a crashed previous invocation left in flight before
    # this one touches anything; a no-op when the journal is empty.
    report = recover_from_journal(distributor, journal)
    if report.acted:
        save_metadata(distributor, metadata_path)
        journal.checkpoint()
        print(report.summary(), file=sys.stderr)
    return distributor, metadata_path


def _persist_metrics(state: Path) -> None:
    """Fold this invocation's metrics into the deployment's running totals.

    Order matters: the persisted file is imported into a scratch registry
    *before* this run's counts, so counters/histograms add while gauges
    (last-writer-wins on merge) keep this run's live level instead of
    being clobbered by a stale snapshot.
    """
    registry = get_metrics()
    if registry is not _installed_registry or _installed_registry is None:
        return
    path = state / METRICS_FILE
    scratch = MetricsRegistry()
    if path.exists():
        with contextlib.suppress(ValueError, KeyError, TypeError):
            scratch.import_state(json.loads(path.read_text()))
    scratch.import_state(registry.export_state())
    path.write_text(json.dumps(scratch.export_state()))


def _commit(distributor: CloudDataDistributor, metadata_path: Path) -> None:
    save_metadata(distributor, metadata_path)
    if distributor.journal is not None:
        # The snapshot now covers every finished transaction; drop them.
        distributor.journal.checkpoint()


def _register_client(args) -> int:
    distributor, meta = _open(args)
    distributor.register_client(args.client)
    _commit(distributor, meta)
    print(f"registered client {args.client!r}")
    return 0


def _add_password(args) -> int:
    distributor, meta = _open(args)
    distributor.add_password(args.client, args.password, int(args.level))
    _commit(distributor, meta)
    print(f"added PL-{args.level} password for {args.client!r}")
    return 0


#: How much of the file the streaming ``put`` samples for the PL advisory
#: check.  Reading the whole file would defeat constant-memory streaming;
#: the categorizer's signals (entropy, token patterns) stabilize well
#: within the first 64 KiB.
_CHECK_SAMPLE_BYTES = 64 * 1024


def _put(args) -> int:
    distributor, meta = _open(args)
    path = Path(args.file)
    filename = args.name or path.name
    level = PrivacyLevel.coerce(args.level)
    # Streaming is the default; --no-stream (or --no-pipeline, which asks
    # for the historical serial data path) loads the whole file in memory.
    stream = not (args.no_stream or args.no_pipeline)
    with path.open("rb") as fh:
        sample = fh.read(_CHECK_SAMPLE_BYTES)
        ok, suggestion = check_level(sample, level)
        if not ok:
            print(
                f"warning: content looks like {suggestion} but stored at PL "
                f"{int(level)}",
                file=sys.stderr,
            )
            if args.strict:
                return 1
        if stream:
            fh.seek(0)
            receipt = distributor.put_stream(
                args.client, args.password, filename, fh, level,
                codec=args.codec,
                misleading_fraction=args.misleading,
            )
        else:
            data = sample + fh.read()
            receipt = distributor.upload_file(
                args.client, args.password, filename, data, level,
                codec=args.codec,
                misleading_fraction=args.misleading,
                pipelined=not args.no_pipeline,
            )
    _commit(distributor, meta)
    codec_label = receipt.codec or (
        receipt.raid_level.name if receipt.raid_level else "?"
    )
    print(
        f"stored {filename!r}: {format_bytes(receipt.file_size)} in "
        f"{receipt.chunk_count} chunks ({codec_label}, "
        f"width {receipt.stripe_width})"
    )
    return 0


def _get(args) -> int:
    distributor, _ = _open(args)
    stream = not (args.no_stream or args.no_pipeline)
    to_stdout = args.output == "-"
    # Status lines go to stderr when the payload itself rides stdout.
    info = sys.stderr if to_stdout else sys.stdout

    def read_digest() -> "tuple[hashlib._Hash, int]":
        """Re-read the file as a stream, hashing instead of storing."""
        digest = hashlib.sha256()
        total = 0
        for segment in distributor.get_stream(
            args.client, args.password, args.filename
        ):
            digest.update(segment)
            total += len(segment)
        return digest, total

    if stream:
        digest = hashlib.sha256()
        total = 0
        out: Path | None = None
        if to_stdout:
            sink = sys.stdout.buffer
        else:
            out = Path(args.output) if args.output else Path(args.filename)
            sink = out.open("wb")
        try:
            for segment in distributor.get_stream(
                args.client, args.password, args.filename
            ):
                sink.write(segment)
                digest.update(segment)
                total += len(segment)
        finally:
            if not to_stdout:
                sink.close()
        print(
            f"retrieved {format_bytes(total)} -> {out if out else 'stdout'}",
            file=info,
        )
        if args.verify:
            again, _ = read_digest()
            if again.digest() != digest.digest():
                print("error: re-read returned different bytes", file=sys.stderr)
                return 2
            print("verified: re-read matches", file=info)
        return 0

    data = distributor.get_file(
        args.client, args.password, args.filename,
        pipelined=not args.no_pipeline,
    )
    if to_stdout:
        sys.stdout.buffer.write(data)
        print(f"retrieved {format_bytes(len(data))} -> stdout", file=info)
    else:
        out = Path(args.output) if args.output else Path(args.filename)
        out.write_bytes(data)
        print(f"retrieved {format_bytes(len(data))} -> {out}")
    if args.verify:
        # Second read: chunks come from the warm cache, and any mismatch
        # means the fleet returned unstable bytes.
        again = distributor.get_file(
            args.client, args.password, args.filename,
            pipelined=not args.no_pipeline,
        )
        if again != data:
            print("error: re-read returned different bytes", file=sys.stderr)
            return 2
        print("verified: re-read matches", file=info)
    return 0


def _rm(args) -> int:
    distributor, meta = _open(args)
    distributor.remove_file(args.client, args.password, args.filename)
    _commit(distributor, meta)
    print(f"removed {args.filename!r}")
    return 0


def _ls(args) -> int:
    distributor, _ = _open(args)
    names = distributor.list_files(args.client, args.password)
    entry = distributor.client_table.get(args.client)
    rows = []
    for name in names:
        refs = entry.refs_for_file(name)
        try:
            codec = distributor.stripe_meta(
                args.client, name, refs[0].serial
            ).codec
        except UnknownCodecError:
            codec = "?"  # quarantined: spec unreadable by this build
        rows.append([name, int(refs[0].privacy_level), len(refs), codec])
    print(render_table(["file", "PL", "chunks", "codec"], rows))
    return 0


def _status(args) -> int:
    distributor, _ = _open(args)
    print(
        render_table(
            ["Cloud Provider", "PL", "CL", "Count", "Virtual id list"],
            distributor.provider_table.rows(),
            title="Cloud Provider Table",
        )
    )
    print(f"clients: {len(distributor.client_table)}  chunks: {len(distributor.chunk_table)}")
    return 0


def _repair(args) -> int:
    distributor, meta = _open(args)
    if args.auto:
        from repro.health.scrubber import Scrubber

        report = Scrubber(distributor).run_once()
        _commit(distributor, meta)
        print(report.summary())
        for vid, shard, old, new in report.relocations:
            print(f"  relocated chunk {vid} shard {shard}: {old} -> {new}")
        return 0 if report.chunks_unrecoverable == 0 else 2
    if not (args.client and args.password and args.filename):
        print(
            "error: repair needs CLIENT PASSWORD FILENAME (or --auto)",
            file=sys.stderr,
        )
        return 1
    report = distributor.repair_file(args.client, args.password, args.filename)
    _commit(distributor, meta)
    print(
        f"checked {report.chunks_checked} chunks: {report.shards_missing} "
        f"shards missing, {report.shards_rebuilt} rebuilt, "
        f"{report.chunks_unrecoverable} unrecoverable"
    )
    return 0 if report.chunks_unrecoverable == 0 else 2


def _health(args) -> int:
    distributor, _ = _open(args)
    monitor = distributor.health
    if args.probe:
        monitor.probe_all()
    print(
        render_table(
            ["provider", "state", "error EWMA", "consec fails", "ops", "probe"],
            monitor.report_rows(),
            title="Provider health",
        )
    )
    down = [name for name in distributor.registry.names() if monitor.down(name)]
    if down:
        print(f"down: {', '.join(down)}")
        return 2
    return 0


def _scrub(args) -> int:
    from repro.analysis.consistency import collect_garbage, verify_deployment

    distributor, meta = _open(args)
    report = verify_deployment(distributor)
    print(report.summary())
    for issue in report.missing:
        where = "snapshot" if issue.shard_index < 0 else f"shard {issue.shard_index}"
        print(f"  missing: chunk {issue.virtual_id} {where} at {issue.provider}")
    for name, keys in report.orphans.items():
        print(f"  orphans at {name}: {', '.join(keys[:5])}"
              + (" ..." if len(keys) > 5 else ""))
    if args.gc and report.orphans:
        removed = collect_garbage(distributor, report)
        print(f"garbage-collected {removed} orphan object(s)")
    return 0 if report.clean else 2


def _fsck(args) -> int:
    from repro.health.fsck import run_fsck

    distributor, meta = _open(args)
    report = run_fsck(distributor, repair=args.repair)
    if args.repair:
        _commit(distributor, meta)
    if args.format == "json":
        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
    else:
        print(report.render_text())
    return 0 if report.clean else 2


def _exposure(args) -> int:
    from repro.analysis.exposure import client_exposure, collusion_exposure, exposure_rows

    distributor, _ = _open(args)
    report = client_exposure(distributor, args.client)
    print(
        render_table(
            ["provider", "shards", "bytes", "chunk coverage", "byte share"],
            exposure_rows(report),
            title=f"Exposure of client {args.client!r}",
        )
    )
    print(
        f"max single-provider byte share: {report.max_byte_share:.1%}; "
        f"best {args.collusion}-provider collusion: "
        f"{collusion_exposure(distributor, args.client, args.collusion):.1%}"
    )
    return 0


def _suggest(args) -> int:
    data = Path(args.file).read_bytes()
    print(suggest_level(data))
    return 0


def _stats(args) -> int:
    """Render the deployment's accumulated metrics (see ``_persist_metrics``)."""
    state = _state_dir(args)
    path = state / METRICS_FILE
    registry = MetricsRegistry()
    if path.exists():
        registry.import_state(json.loads(path.read_text()))
    elif not (state / FLEET_FILE).exists():
        raise SystemExit(f"error: {state} is not initialized (run `init` first)")
    if args.format == "prom":
        print(registry.render(), end="")
        return 0
    if args.format == "json":
        print(json.dumps(registry.snapshot(), indent=2, sort_keys=True))
        return 0
    snapshot = registry.snapshot()
    rows = []
    for name, series in sorted(snapshot["counters"].items()):
        for labels, value in sorted(series.items()):
            rows.append([name, labels, int(value)])
    for name, series in sorted(snapshot["gauges"].items()):
        for labels, value in sorted(series.items()):
            rows.append([name, labels, int(value)])
    print(render_table(["metric", "labels", "value"], rows, title="Counters"))
    rows = []
    for name, series in sorted(snapshot["histograms"].items()):
        for labels, summary in sorted(series.items()):
            count = summary["count"]
            mean = summary["sum"] / count if count else 0.0
            rows.append([
                name, labels, count, f"{mean * 1e3:.3f}",
                f"{summary.get('p50', 0.0) * 1e3:.3f}",
                f"{summary.get('p95', 0.0) * 1e3:.3f}",
                f"{summary.get('p99', 0.0) * 1e3:.3f}",
            ])
    print(
        render_table(
            ["histogram", "labels", "count", "mean ms", "p50 ms", "p95 ms",
             "p99 ms"],
            rows,
            title="Latencies",
        )
    )
    return 0


def _trace(args) -> int:
    """Run one traced download and print the joined span tree."""
    distributor, _ = _open(args)
    tracer = get_tracer()
    with tracer.trace(f"get {args.filename}", client=args.client):
        data = distributor.get_file(
            args.client, args.password, args.filename,
            pipelined=not args.no_pipeline,
        )
    trace = tracer.last_trace()
    print(trace.render_tree())
    print(
        f"retrieved {format_bytes(len(data))}; "
        f"{len(trace.spans)} spans recorded"
    )
    return 0


def _serve(args) -> int:
    """Run one chunk server fronting a memory or disk backend.

    Blocks until interrupted; a distributor reaches it via a fleet entry
    ``{"name": ..., "url": "remote://HOST:PORT", ...}`` or
    ``ProviderRegistry.register_url``.
    """
    from repro.net.server import ChunkServer
    from repro.providers.memory import InMemoryProvider

    if args.backend == "disk":
        root = args.root or f"./chunks-{args.name}"
        backend = DiskProvider(args.name, root)
    else:
        backend = InMemoryProvider(args.name)
    server = ChunkServer(
        backend,
        host=args.host,
        port=args.port,
        max_workers=args.max_workers,
        accept_queue=args.accept_queue,
        shed_retry_after=args.shed_retry_after,
    )
    try:
        server.start()
    except OSError as exc:
        print(
            f"error: cannot listen on {args.host}:{args.port}: {exc}",
            file=sys.stderr,
        )
        return 1
    print(
        f"chunk server {args.name!r} ({args.backend}) listening on "
        f"remote://{server.host}:{server.port}",
        flush=True,
    )
    try:
        import threading

        threading.Event().wait()
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        server.stop()
    return 0


# ---------------------------------------------------------------------------
# open-loop load harness (repro.loadgen)
# ---------------------------------------------------------------------------


def _parse_mix(text: str):
    """``get=0.7,put=0.15,update=0.1,delete=0.05`` -> OpMix."""
    from repro.loadgen.workload import OpMix

    weights = {}
    for pair in text.split(","):
        key, sep, value = pair.partition("=")
        key = key.strip()
        if not sep or key not in ("get", "put", "update", "delete"):
            raise SystemExit(
                f"error: bad --mix entry {pair!r} "
                "(expected get=W,put=W,update=W,delete=W)"
            )
        try:
            weights[key] = float(value)
        except ValueError:
            raise SystemExit(f"error: bad --mix weight {value!r}")
    return OpMix(**weights)


def _loadtest_stack(args, stack):
    """Build the system under test; returns (target, metrics, events).

    Three stacks, all self-contained (no ``--state`` deployment):

    * ``inproc``  -- distributor over in-memory providers (measures the
      data path itself: chunking, crypto, RAID, placement, tables);
    * ``cluster`` -- distributor over a ``LocalCluster`` of socket chunk
      servers (adds the real wire, pools, batching);
    * ``gateway`` -- a sharded ``FleetGateway`` over a ``LocalCluster``,
      driven through the JSON-lines gateway wire with one connection per
      driver worker (the full multi-tenant front door).
    """
    from repro.loadgen.driver import (
        DistributorTarget,
        GatewayClientTarget,
        ThrottledTarget,
    )
    from repro.obs.trace import Tracer

    metrics = MetricsRegistry()
    events = EventLog(emit_logging=False)
    previous = (set_metrics(metrics), set_tracer(Tracer()), set_events(events))
    stack.callback(
        lambda: (set_metrics(previous[0]), set_tracer(previous[1]),
                 set_events(previous[2]))
    )

    def make_cluster():
        from repro.net.cluster import LocalCluster
        from repro.net.remote import RetryPolicy

        cluster = stack.enter_context(
            LocalCluster(
                args.nodes,
                retry=RetryPolicy(attempts=2, base_delay=0.01),
                pool_size=args.pool_size,
            )
        )
        if args.saturation_threshold is not None:
            for provider in cluster.providers:
                provider.pool.saturation_threshold = args.saturation_threshold
        return cluster

    if args.target == "inproc":
        from repro.providers.memory import InMemoryProvider

        registry = ProviderRegistry()
        for i in range(args.nodes):
            registry.register(
                InMemoryProvider(f"P{i}"), PrivacyLevel.PRIVATE,
                CostLevel.coerce(i % 4),
            )
        distributor = CloudDataDistributor(
            registry, seed=args.seed, cache=ChunkCache(CACHE_BYTES)
        )
        stack.callback(distributor.close)
        target = DistributorTarget(distributor)
    elif args.target == "cluster":
        cluster = make_cluster()
        distributor = CloudDataDistributor(
            cluster.build_registry(), seed=args.seed,
            cache=ChunkCache(CACHE_BYTES),
        )
        stack.callback(distributor.close)
        target = DistributorTarget(distributor)
    elif args.target == "gateway":
        from repro.fleet import FleetGateway
        from repro.net.gateway import GatewayServer

        cluster = make_cluster()
        gateway = FleetGateway(
            cluster.build_registry(), None, seed=args.seed
        )
        stack.callback(gateway.close)
        for i in range(args.shards):
            gateway.add_shard(f"s{i}")
        server = GatewayServer(
            gateway, host="127.0.0.1", port=0,
            max_workers=max(args.workers, 4),
        )
        server.start()
        stack.callback(server.stop)
        target = GatewayClientTarget(server.host, server.port, gateway=gateway)
        stack.callback(target.close)
    else:  # pragma: no cover - argparse choices guard this
        raise SystemExit(f"error: unknown target {args.target!r}")

    if args.service_floor > 0:
        target = ThrottledTarget(target, args.service_floor)
    return target, metrics, events


def _loadtest(args) -> int:
    """Open-loop load run (optionally a stepped saturation search)."""
    from repro.loadgen.driver import DriverConfig, run_load, run_setup
    from repro.loadgen.report import (
        build_report,
        render_report,
        saturation_search,
    )
    from repro.loadgen.slo import SLO
    from repro.loadgen.workload import WorkloadSpec, synthesize

    slo = SLO.parse(args.slo) if args.slo else None
    spec = WorkloadSpec(
        tenants=args.tenants,
        files_per_tenant=args.files_per_tenant,
        mean_file_size=args.file_size,
        zipf_alpha=args.zipf_alpha,
        tenant_alpha=args.tenant_alpha,
        mix=_parse_mix(args.mix),
        privacy_level=args.level,
    )
    # Enough trace for the measured run plus the widest ramp step.
    peak_rate = args.rate
    if args.ramp:
        peak_rate = max(
            peak_rate, args.rate * args.ramp_growth ** (args.ramp_steps - 1)
        )
    n_ops = int(peak_rate * max(args.duration, args.ramp_duration)) + 1
    workload = synthesize(spec, n_ops, seed=args.seed)

    # One fresh stack per run: the trace replays the same puts/deletes,
    # so sharing state across ramp steps would turn trace collisions
    # into phantom errors charged to the system under test.
    def run_at(rate: float, duration: float):
        with contextlib.ExitStack() as stack:
            target, metrics, events = _loadtest_stack(args, stack)
            run_setup(target, workload)
            return run_load(
                target, workload,
                DriverConfig(
                    rate=rate, duration=duration, workers=args.workers,
                    seed=args.seed, arrival=args.arrival,
                ),
                events=events, metrics=metrics,
            )

    saturation = None
    if args.ramp:
        saturation = saturation_search(
            lambda rate: run_at(rate, args.ramp_duration),
            start_rate=args.rate,
            growth=args.ramp_growth,
            max_steps=args.ramp_steps,
            slo=slo,
        )
    result = run_at(args.rate, args.duration)

    slo_outcome = slo.evaluate(result) if slo is not None else None
    report = build_report(
        result, workload,
        target=args.target, workers=args.workers, arrival=args.arrival,
        slo_outcome=slo_outcome, saturation=saturation,
    )
    if args.json:
        Path(args.json).write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n"
        )
    print(render_report(report))
    if slo_outcome is not None and not slo_outcome.ok:
        return 2
    return 0


# ---------------------------------------------------------------------------
# sharded fleet commands (repro.fleet)
# ---------------------------------------------------------------------------

FLEET_STATE_FILE = "fleet-state.json"


def _open_fleet(args):
    """Open the sharded deployment under ``--state`` and resume migrations."""
    global _installed_registry
    state = _state_dir(args)
    if not (state / FLEET_FILE).exists():
        raise SystemExit(
            f"error: {state} is not initialized (run `fleet-init` first)"
        )
    if not (state / FLEET_STATE_FILE).exists():
        raise SystemExit(
            f"error: {state} has no shard fleet (run `fleet-init` first)"
        )
    from repro.fleet import FleetGateway, ShardRebalancer

    _installed_registry = MetricsRegistry()
    set_metrics(_installed_registry)
    gateway = FleetGateway.open(
        _build_registry(state), state, metrics=_installed_registry
    )
    rebalancer = ShardRebalancer(gateway)
    resumed = rebalancer.resume()
    for report in resumed:
        print(f"resumed interrupted migration: {report.summary()}", file=sys.stderr)
    return gateway, rebalancer


def _fleet_commit(gateway) -> None:
    """Persist fleet state and fold shard metrics into this run's registry."""
    gateway.save()
    registry = get_metrics()
    for shard in gateway.shards.values():
        registry.import_state(shard.metrics.export_state())


def _fleet_init(args) -> int:
    state = _state_dir(args)
    if (state / FLEET_STATE_FILE).exists():
        print(f"error: {state} already holds a shard fleet", file=sys.stderr)
        return 1
    if not (state / FLEET_FILE).exists():
        code = _init(args)
        if code != 0:
            return code
    from repro.fleet import FleetGateway

    gateway = FleetGateway(_build_registry(state), state, seed=0xC11)
    for i in range(args.shards):
        gateway.add_shard(f"s{i}")
    gateway.save()
    gateway.close()
    print(f"fleet of {args.shards} shards ready under {state}")
    return 0


def _tenant_add(args) -> int:
    gateway, _ = _open_fleet(args)
    gateway.register_tenant(args.tenant)
    _fleet_commit(gateway)
    print(f"registered tenant {args.tenant!r}")
    return 0


def _tenant_password(args) -> int:
    gateway, _ = _open_fleet(args)
    gateway.add_tenant_password(args.tenant, args.password, int(args.level))
    _fleet_commit(gateway)
    print(f"added PL-{args.level} password for tenant {args.tenant!r}")
    return 0


def _tenant_quota(args) -> int:
    gateway, _ = _open_fleet(args)
    gateway.set_quota(
        args.tenant, max_bytes=args.max_bytes, max_files=args.max_files
    )
    _fleet_commit(gateway)
    print(
        f"quota for {args.tenant!r}: "
        f"max_bytes={args.max_bytes} max_files={args.max_files}"
    )
    return 0


def _shard_add(args) -> int:
    gateway, rebalancer = _open_fleet(args)
    report = rebalancer.add_shard(args.shard)
    _fleet_commit(gateway)
    print(report.summary())
    return 0


def _shard_drain(args) -> int:
    gateway, rebalancer = _open_fleet(args)
    report = rebalancer.drain_shard(args.shard)
    _fleet_commit(gateway)
    print(report.summary())
    return 0


def _shards(args) -> int:
    """Fleet status: ring membership, per-shard load, tenant quota usage."""
    gateway, rebalancer = _open_fleet(args)
    status = gateway.status()
    merged = MetricsRegistry()
    # The deployment's running totals first, then this invocation's live
    # counts on top (counters add; gauges last-writer-wins to the live run).
    metrics_path = _state_dir(args) / METRICS_FILE
    if metrics_path.exists():
        with contextlib.suppress(ValueError, KeyError, TypeError):
            merged.import_state(json.loads(metrics_path.read_text()))
    merged.import_state(gateway.merged_metrics().export_state())
    pending = (
        sum(len(p.remaining) for p in rebalancer.journal.pending())
        if rebalancer.journal is not None
        else 0
    )
    if args.format == "json":
        status["pending_migration_files"] = pending
        status["quota_rejections"] = merged.sum_counter(
            "fleet_quota_rejections_total"
        )
        print(json.dumps(status, indent=2, sort_keys=True))
        _fleet_commit(gateway)
        return 0
    print(
        render_table(
            ["shard", "ring id", "files", "chunks", "tenants", "health"],
            [
                [r["shard"], f"{r['node_id']:#010x}", r["files"], r["chunks"],
                 r["tenants"], r["health"]]
                for r in status["shards"]
            ],
            title=f"Ring membership (m_bits={status['m_bits']})",
        )
    )
    rows = []
    for tenant, usage in sorted(status["tenants"].items()):
        quota = usage["quota"]
        rows.append(
            [
                tenant,
                usage["files"],
                format_bytes(usage["bytes"]),
                quota["max_files"] if quota["max_files"] is not None else "-",
                format_bytes(quota["max_bytes"])
                if quota["max_bytes"] is not None
                else "-",
            ]
        )
    print(
        render_table(
            ["tenant", "files", "used", "file quota", "byte quota"],
            rows,
            title="Tenant usage",
        )
    )
    rejections = merged.sum_counter("fleet_quota_rejections_total")
    print(
        f"pending migration files: {pending}  "
        f"quota rejections: {int(rejections)}"
    )
    _fleet_commit(gateway)
    return 0


def _fleet_put(args) -> int:
    gateway, _ = _open_fleet(args)
    data = Path(args.file).read_bytes()
    filename = args.name or Path(args.file).name
    receipt = gateway.upload_file(
        args.tenant, args.password, filename, data,
        PrivacyLevel.coerce(args.level),
        misleading_fraction=args.misleading,
        codec=args.codec,
    )
    _fleet_commit(gateway)
    print(
        f"stored {filename!r} for tenant {args.tenant!r}: "
        f"{format_bytes(receipt.file_size)} in {receipt.chunk_count} chunks"
    )
    return 0


def _fleet_get(args) -> int:
    gateway, _ = _open_fleet(args)
    data = gateway.get_file(args.tenant, args.password, args.filename)
    out = Path(args.output) if args.output else Path(args.filename)
    out.write_bytes(data)
    _fleet_commit(gateway)
    print(f"retrieved {format_bytes(len(data))} -> {out}")
    return 0


def _fleet_rm(args) -> int:
    gateway, _ = _open_fleet(args)
    gateway.remove_file(args.tenant, args.password, args.filename)
    _fleet_commit(gateway)
    print(f"removed {args.filename!r}")
    return 0


def _fleet_ls(args) -> int:
    gateway, _ = _open_fleet(args)
    for name in gateway.list_files(args.tenant, args.password):
        print(name)
    _fleet_commit(gateway)
    return 0


def _fleet_fsck(args) -> int:
    gateway, _ = _open_fleet(args)
    reports = gateway.fsck(repair=args.repair)
    _fleet_commit(gateway)
    dirty = 0
    for shard_id, report in reports.items():
        print(f"[{shard_id}] {report.summary()}")
        if not report.clean:
            dirty += 1
            print(report.render_text())
    return 0 if dirty == 0 else 2


def _serve_gateway(args) -> int:
    """Serve the fleet gateway over JSON-lines TCP (blocks until ^C)."""
    from repro.net.gateway import GatewayServer

    gateway, _ = _open_fleet(args)
    server = GatewayServer(
        gateway,
        host=args.host,
        port=args.port,
        max_workers=args.max_workers,
        accept_queue=args.accept_queue,
        shed_retry_after=args.shed_retry_after,
    )
    try:
        server.start()
    except OSError as exc:
        print(
            f"error: cannot listen on {args.host}:{args.port}: {exc}",
            file=sys.stderr,
        )
        return 1
    print(
        f"fleet gateway ({len(gateway.shards)} shards) listening on "
        f"{server.host}:{server.port}",
        flush=True,
    )
    try:
        import threading

        threading.Event().wait()
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        server.stop()
        _fleet_commit(gateway)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Privacy-preserving multi-cloud data distribution (Dev et al., 2012)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def with_state(p):
        p.add_argument("--state", default="./repro-state",
                       help="deployment directory (default: ./repro-state)")
        return p

    p = with_state(sub.add_parser("init", help="create a disk-backed fleet"))
    p.add_argument("--providers", type=int, default=6)
    p.set_defaults(func=_init)

    p = with_state(sub.add_parser("register-client", help="create a client"))
    p.add_argument("client")
    p.set_defaults(func=_register_client)

    p = with_state(sub.add_parser("add-password", help="attach a ⟨password, PL⟩ pair"))
    p.add_argument("client")
    p.add_argument("password")
    p.add_argument("level", type=int, choices=[0, 1, 2, 3])
    p.set_defaults(func=_add_password)

    p = with_state(sub.add_parser("put", help="fragment + distribute a file"))
    p.add_argument("client")
    p.add_argument("password")
    p.add_argument("file")
    p.add_argument("--level", type=int, default=2, choices=[0, 1, 2, 3])
    p.add_argument("--name", help="stored filename (default: basename)")
    p.add_argument("--codec", default=None,
                   help="erasure codec spec: raid0|raid1|raid5|raid6[@WIDTH], "
                        "rs(K,M), or aont-rs(K,M) (default: raid by PL policy)")
    p.add_argument("--misleading", type=float, default=0.0,
                   help="misleading-byte fraction (Section VII-D)")
    p.add_argument("--strict", action="store_true",
                   help="refuse upload if content looks more sensitive than --level")
    p.add_argument("--no-pipeline", action="store_true",
                   help="use the historical chunk-serial data path")
    p.add_argument("--no-stream", action="store_true",
                   help="load the whole file in memory instead of streaming "
                        "it in bounded windows")
    p.set_defaults(func=_put)

    p = with_state(sub.add_parser("get", help="reassemble a file"))
    p.add_argument("client")
    p.add_argument("password")
    p.add_argument("filename")
    p.add_argument("-o", "--output",
                   help="output path ('-' streams to stdout)")
    p.add_argument("--no-pipeline", action="store_true",
                   help="use the historical chunk-serial data path")
    p.add_argument("--no-stream", action="store_true",
                   help="materialize the whole file instead of writing it "
                        "segment by segment")
    p.add_argument("--verify", action="store_true",
                   help="re-read and compare (hashes, on the streaming path)")
    p.set_defaults(func=_get)

    p = with_state(sub.add_parser("rm", help="remove a file from all providers"))
    p.add_argument("client")
    p.add_argument("password")
    p.add_argument("filename")
    p.set_defaults(func=_rm)

    p = with_state(sub.add_parser("ls", help="list files this password may see"))
    p.add_argument("client")
    p.add_argument("password")
    p.set_defaults(func=_ls)

    p = with_state(sub.add_parser("status", help="render the Cloud Provider Table"))
    p.set_defaults(func=_status)

    p = with_state(sub.add_parser("repair", help="scrub + rebuild a file's stripes"))
    p.add_argument("client", nargs="?")
    p.add_argument("password", nargs="?")
    p.add_argument("filename", nargs="?")
    p.add_argument("--auto", action="store_true",
                   help="scrub every chunk of every client (one scrubber cycle)")
    p.set_defaults(func=_repair)

    p = with_state(sub.add_parser(
        "health", help="per-provider health verdicts (exit 2 if any down)"))
    p.add_argument("--probe", action="store_true",
                   help="actively probe every provider before reporting")
    p.set_defaults(func=_health)

    p = with_state(sub.add_parser(
        "exposure", help="per-provider exposure bound for a client"))
    p.add_argument("client")
    p.add_argument("--collusion", type=int, default=3)
    p.set_defaults(func=_exposure)

    p = with_state(sub.add_parser(
        "fsck",
        help="cross-audit chunk table vs providers: missing/corrupt shards, "
             "orphans, stale snapshots (exit 2 if not clean)"))
    p.add_argument("--repair", action="store_true",
                   help="rebuild damaged shards and delete loose objects")
    p.add_argument("--format", choices=["text", "json"], default="text")
    p.set_defaults(func=_fsck)

    p = with_state(sub.add_parser(
        "scrub", help="cross-audit metadata vs providers; report drift"))
    p.add_argument("--gc", action="store_true",
                   help="delete orphan objects no table references")
    p.set_defaults(func=_scrub)

    p = with_state(sub.add_parser(
        "stats", help="accumulated telemetry for this deployment"))
    p.add_argument("--format", choices=["text", "prom", "json"],
                   default="text",
                   help="text tables, Prometheus exposition, or JSON")
    p.set_defaults(func=_stats)

    p = with_state(sub.add_parser(
        "trace", help="download a file with tracing on; print the span tree"))
    p.add_argument("client")
    p.add_argument("password")
    p.add_argument("filename")
    p.add_argument("--no-pipeline", action="store_true",
                   help="use the historical chunk-serial data path")
    p.set_defaults(func=_trace)

    p = sub.add_parser("suggest-level", help="advisory mining-sensitivity score")
    p.add_argument("file")
    p.set_defaults(func=_suggest)

    p = sub.add_parser(
        "serve", help="run a chunk server exposing one provider over TCP")
    p.add_argument("name", help="provider name the server fronts")
    p.add_argument("--backend", choices=["memory", "disk"], default="disk")
    p.add_argument("--root", help="disk backend root (default: ./chunks-NAME)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="TCP port (default: ephemeral, printed at startup)")
    p.add_argument("--max-workers", type=int, default=32,
                   help="concurrent connection workers (default: 32)")
    p.add_argument("--accept-queue", type=int, default=64,
                   help="accepted connections waiting for a worker before "
                        "the server sheds load (default: 64)")
    p.add_argument("--shed-retry-after", type=float, default=0.1,
                   help="retry-after hint (seconds) sent with "
                        "RESOURCE_EXHAUSTED sheds (default: 0.1)")
    p.set_defaults(func=_serve)

    p = sub.add_parser(
        "loadtest",
        help="open-loop load run against a self-contained stack",
        description=(
            "Synthesize a seeded multi-tenant workload and drive it at a "
            "fixed offered rate against an in-process distributor, a local "
            "socket cluster, or a sharded gateway over the wire.  Latency "
            "is measured from each operation's *intended* send time, so "
            "queueing delay under overload is charged to the run instead "
            "of being silently omitted."
        ),
    )
    p.add_argument("--rate", type=float, default=50.0,
                   help="offered arrival rate, ops/s (default: 50)")
    p.add_argument("--duration", type=float, default=5.0,
                   help="run length in seconds (default: 5)")
    p.add_argument("--seed", type=int, default=0,
                   help="workload + schedule seed (default: 0)")
    p.add_argument("--workers", type=int, default=8,
                   help="driver worker threads (default: 8)")
    p.add_argument("--target", choices=["inproc", "cluster", "gateway"],
                   default="inproc",
                   help="system under test (default: inproc)")
    p.add_argument("--nodes", type=int, default=4,
                   help="providers / chunk servers to stand up (default: 4)")
    p.add_argument("--shards", type=int, default=2,
                   help="metadata shards for --target gateway (default: 2)")
    p.add_argument("--pool-size", type=int, default=4,
                   help="connection-pool size per remote provider "
                        "(default: 4)")
    p.add_argument("--tenants", type=int, default=4,
                   help="synthetic tenants (default: 4)")
    p.add_argument("--files-per-tenant", type=int, default=12,
                   help="initial live files per tenant (default: 12)")
    p.add_argument("--file-size", type=int, default=8192,
                   help="mean payload bytes for put/update (default: 8192)")
    p.add_argument("--zipf-alpha", type=float, default=1.2,
                   help="file-popularity skew, > 1 (default: 1.2)")
    p.add_argument("--tenant-alpha", type=float, default=1.1,
                   help="tenant request-share skew, > 1 (default: 1.1)")
    p.add_argument("--mix", default="get=0.7,put=0.15,update=0.1,delete=0.05",
                   help="op mix weights (default: "
                        "get=0.7,put=0.15,update=0.1,delete=0.05)")
    p.add_argument("--level", type=int, default=2,
                   help="privacy level for stored files (default: 2)")
    p.add_argument("--arrival", choices=["uniform", "poisson"],
                   default="uniform",
                   help="arrival schedule; uniform spaces ops exactly 1/rate "
                        "apart, poisson draws seeded exponential gaps "
                        "(default: uniform)")
    p.add_argument("--slo", metavar="EXPR",
                   help="latency objective, e.g. p99<250ms, get:p95<40ms, "
                        "p99<250ms@200; exit status 2 when violated")
    p.add_argument("--ramp", action="store_true",
                   help="saturation search: step the rate up geometrically "
                        "from --rate before the measured run")
    p.add_argument("--ramp-growth", type=float, default=1.6,
                   help="rate multiplier between ramp steps (default: 1.6)")
    p.add_argument("--ramp-steps", type=int, default=6,
                   help="maximum ramp steps (default: 6)")
    p.add_argument("--ramp-duration", type=float, default=2.0,
                   help="seconds per ramp step (default: 2)")
    p.add_argument("--service-floor", type=float, default=0.0,
                   help="add a fixed per-op service delay in seconds, giving "
                        "the stack a known capacity of workers/delay ops/s "
                        "(default: 0, disabled)")
    p.add_argument("--saturation-threshold", type=float, default=None,
                   help="override the connection pools' checkout-wait "
                        "threshold (seconds) above which pool_saturation "
                        "events fire; tighten it to observe saturation "
                        "reporting on fast local sockets")
    p.add_argument("--json", metavar="PATH",
                   help="also write the full BENCH_load-schema report here")
    p.set_defaults(func=_loadtest)

    # -- sharded fleet -----------------------------------------------------

    p = with_state(sub.add_parser(
        "fleet-init",
        help="shard the deployment: DHT-routed distributor shards behind "
             "a stateless gateway"))
    p.add_argument("--providers", type=int, default=6)
    p.add_argument("--shards", type=int, default=3,
                   help="initial shard count (default: 3)")
    p.set_defaults(func=_fleet_init)

    p = with_state(sub.add_parser("tenant-add", help="register a tenant"))
    p.add_argument("tenant")
    p.set_defaults(func=_tenant_add)

    p = with_state(sub.add_parser(
        "tenant-password", help="attach a ⟨password, PL⟩ pair to a tenant"))
    p.add_argument("tenant")
    p.add_argument("password")
    p.add_argument("level", type=int, choices=[0, 1, 2, 3])
    p.set_defaults(func=_tenant_password)

    p = with_state(sub.add_parser(
        "tenant-quota", help="cap a tenant's stored bytes and/or file count"))
    p.add_argument("tenant")
    p.add_argument("--max-bytes", type=int, default=None)
    p.add_argument("--max-files", type=int, default=None)
    p.set_defaults(func=_tenant_quota)

    p = with_state(sub.add_parser(
        "shards", help="ring membership, per-shard load, tenant quota usage"))
    p.add_argument("--format", choices=["text", "json"], default="text")
    p.set_defaults(func=_shards)

    p = with_state(sub.add_parser(
        "shard-add",
        help="join a shard and migrate the key ranges it now owns"))
    p.add_argument("shard")
    p.set_defaults(func=_shard_add)

    p = with_state(sub.add_parser(
        "shard-drain",
        help="migrate a shard's files to the survivors, then remove it"))
    p.add_argument("shard")
    p.set_defaults(func=_shard_drain)

    p = with_state(sub.add_parser(
        "fleet-put", help="store a file for a tenant via the gateway"))
    p.add_argument("tenant")
    p.add_argument("password")
    p.add_argument("file")
    p.add_argument("--level", type=int, default=2, choices=[0, 1, 2, 3])
    p.add_argument("--name", help="stored filename (default: basename)")
    p.add_argument("--codec", default=None,
                   help="erasure codec spec: raid0|raid1|raid5|raid6[@WIDTH], "
                        "rs(K,M), or aont-rs(K,M) (default: raid by PL policy)")
    p.add_argument("--misleading", type=float, default=0.0,
                   help="misleading-byte fraction (Section VII-D)")
    p.set_defaults(func=_fleet_put)

    p = with_state(sub.add_parser(
        "fleet-get", help="retrieve a tenant's file via the gateway"))
    p.add_argument("tenant")
    p.add_argument("password")
    p.add_argument("filename")
    p.add_argument("-o", "--output")
    p.set_defaults(func=_fleet_get)

    p = with_state(sub.add_parser(
        "fleet-rm", help="remove a tenant's file via the gateway"))
    p.add_argument("tenant")
    p.add_argument("password")
    p.add_argument("filename")
    p.set_defaults(func=_fleet_rm)

    p = with_state(sub.add_parser(
        "fleet-ls", help="list a tenant's files across all shards"))
    p.add_argument("tenant")
    p.add_argument("password")
    p.set_defaults(func=_fleet_ls)

    p = with_state(sub.add_parser(
        "fleet-fsck",
        help="run the cross-audit on every shard (exit 2 if any dirty)"))
    p.add_argument("--repair", action="store_true",
                   help="rebuild damaged shards and delete loose objects")
    p.set_defaults(func=_fleet_fsck)

    p = with_state(sub.add_parser(
        "serve-gateway",
        help="serve the fleet gateway over JSON-lines TCP"))
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="TCP port (default: ephemeral, printed at startup)")
    p.add_argument("--max-workers", type=int, default=16,
                   help="concurrent connection workers (default: 16)")
    p.add_argument("--accept-queue", type=int, default=32,
                   help="accepted connections waiting for a worker before "
                        "the gateway sheds load (default: 32)")
    p.add_argument("--shed-retry-after", type=float, default=0.1,
                   help="retry-after hint (seconds) sent with "
                        "resource_exhausted sheds (default: 0.1)")
    p.set_defaults(func=_serve_gateway)

    return parser


def main(argv: list[str] | None = None) -> int:
    global _installed_registry
    _installed_registry = None
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream reader (`head`, `grep -q`, ...) closed the pipe early;
        # the Unix convention is to exit quietly.  Point stdout at devnull
        # so interpreter shutdown doesn't trip over the dead descriptor.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0
    finally:
        if hasattr(args, "state"):
            _persist_metrics(_state_dir(args))


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
