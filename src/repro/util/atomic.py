"""Fsync-disciplined atomic file replacement.

``tmp.write(); os.replace(tmp, path)`` alone is *not* crash-safe: after a
power cut the rename may be durable while the tmp file's data is not,
leaving an empty or half-written file under the final name -- or the rename
itself may be lost because the directory entry was never flushed.  The safe
sequence is::

    write tmp  ->  fsync(tmp)  ->  os.replace(tmp, path)  ->  fsync(dir)

so that by the time anything can observe ``path`` its bytes are on stable
storage, and the rename itself survives the next power cut.  This module is
the single implementation of that discipline; metadata persistence and the
disk provider both route their writes through it.

Tmp names embed pid, thread id and a process-global counter, so concurrent
writers -- even to the same destination -- never tread on each other's tmp
file; the last ``os.replace`` wins, which matches object-store put
semantics.
"""

from __future__ import annotations

import itertools
import os
import threading
from pathlib import Path

from repro.util.crash import CrashPoint, crashpoint

_counter = itertools.count()


def fsync_dir(path: str | Path) -> None:
    """Flush a directory entry table to stable storage.

    A no-op on platforms that cannot open directories (e.g. Windows);
    the rename there is already as durable as the OS allows.
    """
    try:
        fd = os.open(str(path), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _tmp_path(path: Path) -> Path:
    """A collision-free sibling tmp name for *path*.

    Unique across processes (pid), threads (tid) and call sites (counter),
    so two concurrent writers to the same key can never interleave inside
    one tmp file.
    """
    return path.parent / (
        f"{path.name}.{os.getpid()}.{threading.get_ident()}."
        f"{next(_counter)}.tmp"
    )


def atomic_write_bytes(
    path: str | Path, data: bytes, *, fsync: bool = True
) -> None:
    """Atomically replace *path* with *data*, durable against power loss.

    Readers never observe a partial file: they see either the old content
    or the new, and with ``fsync`` (the default) whichever they see is on
    stable storage.  ``fsync=False`` keeps only the atomicity (for
    throwaway scratch state where durability is not worth the flush).
    """
    path = Path(path)
    tmp = _tmp_path(path)
    fd = os.open(str(tmp), os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
    try:
        try:
            os.write(fd, data)
            crashpoint("atomic.tmp_written")
            if fsync:
                os.fsync(fd)
        finally:
            os.close(fd)
        os.replace(tmp, path)
    except CrashPoint:
        # Simulated power cut: leave the torn tmp file behind, exactly as
        # a real crash would -- recovery and fsck must cope with it.
        raise
    except BaseException:
        # Real error (ENOSPC, ...): the tmp file is ours alone, don't leak it.
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    crashpoint("atomic.renamed")
    if fsync:
        fsync_dir(path.parent)


def atomic_write_text(
    path: str | Path, text: str, *, fsync: bool = True
) -> None:
    """:func:`atomic_write_bytes` for UTF-8 text."""
    atomic_write_bytes(path, text.encode("utf-8"), fsync=fsync)
