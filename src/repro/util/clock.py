"""Simulated wall clock.

All provider latency, transfer time and billing accrual in the simulator is
charged against a :class:`SimulatedClock` rather than real time, so large
experiments (terabyte uploads, month-long billing periods) run in
microseconds of host time while remaining exactly reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable


class SimulatedClock:
    """A monotonically advancing simulated clock measured in seconds."""

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError(f"start must be >= 0, got {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds since epoch 0."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Advance the clock by *seconds* (must be non-negative)."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by {seconds} s")
        self._now += seconds
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Advance the clock to *timestamp* (no-op if already past it)."""
        if timestamp > self._now:
            self._now = timestamp
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SimulatedClock(now={self._now:.6f})"


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)


class EventScheduler:
    """Tiny discrete-event scheduler layered on a :class:`SimulatedClock`.

    Used by the fault-injection machinery to schedule provider outages and
    recoveries at deterministic simulated times.
    """

    def __init__(self, clock: SimulatedClock) -> None:
        self.clock = clock
        self._heap: list[_Event] = []
        self._counter = itertools.count()

    def schedule_at(self, timestamp: float, action: Callable[[], None]) -> None:
        """Run *action* when the clock reaches *timestamp*."""
        if timestamp < self.clock.now:
            raise ValueError(
                f"cannot schedule event in the past: {timestamp} < {self.clock.now}"
            )
        heapq.heappush(self._heap, _Event(timestamp, next(self._counter), action))

    def schedule_after(self, delay: float, action: Callable[[], None]) -> None:
        """Run *action* after *delay* simulated seconds."""
        self.schedule_at(self.clock.now + delay, action)

    @property
    def pending(self) -> int:
        return len(self._heap)

    def run_until(self, timestamp: float) -> int:
        """Fire all events with time <= *timestamp*; returns count fired.

        The clock is advanced to each event's time as it fires and finally
        to *timestamp*.
        """
        fired = 0
        while self._heap and self._heap[0].time <= timestamp:
            event = heapq.heappop(self._heap)
            self.clock.advance_to(event.time)
            event.action()
            fired += 1
        self.clock.advance_to(timestamp)
        return fired

    def run_all(self) -> int:
        """Fire every pending event in time order; returns count fired."""
        fired = 0
        while self._heap:
            event = heapq.heappop(self._heap)
            self.clock.advance_to(event.time)
            event.action()
            fired += 1
        return fired
