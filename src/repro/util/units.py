"""Byte and duration unit helpers used across workloads and benches."""

from __future__ import annotations

import re

KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB

_SUFFIXES = {
    "b": 1,
    "kb": 1000,
    "kib": KiB,
    "mb": 1000**2,
    "mib": MiB,
    "gb": 1000**3,
    "gib": GiB,
}

_BYTES_RE = re.compile(r"^\s*([0-9]*\.?[0-9]+)\s*([a-zA-Z]*)\s*$")


def parse_bytes(text: str | int | float) -> int:
    """Parse ``"4KiB"``-style strings (or pass through numbers) to bytes."""
    if isinstance(text, (int, float)):
        if text < 0:
            raise ValueError(f"byte count must be >= 0, got {text}")
        return int(text)
    match = _BYTES_RE.match(text)
    if not match:
        raise ValueError(f"cannot parse byte size: {text!r}")
    value, suffix = match.groups()
    suffix = suffix.lower() or "b"
    if suffix not in _SUFFIXES:
        raise ValueError(f"unknown byte suffix {suffix!r} in {text!r}")
    return int(float(value) * _SUFFIXES[suffix])


def format_bytes(n: int | float) -> str:
    """Human-readable binary-prefixed byte count (``1536 -> '1.50 KiB'``)."""
    n = float(n)
    for unit, factor in (("GiB", GiB), ("MiB", MiB), ("KiB", KiB)):
        if abs(n) >= factor:
            return f"{n / factor:.2f} {unit}"
    return f"{int(n)} B"


def format_duration(seconds: float) -> str:
    """Human-readable duration (``0.00153 -> '1.53 ms'``)."""
    if seconds < 0:
        return "-" + format_duration(-seconds)
    if seconds >= 3600:
        return f"{seconds / 3600:.2f} h"
    if seconds >= 60:
        return f"{seconds / 60:.2f} min"
    if seconds >= 1:
        return f"{seconds:.2f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f} ms"
    if seconds >= 1e-6:
        return f"{seconds * 1e6:.2f} us"
    return f"{seconds * 1e9:.2f} ns"
