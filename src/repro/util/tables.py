"""ASCII table rendering for the benchmark harness.

Every reproduced table/figure prints through :func:`render_table` so bench
output looks like the rows the paper reports.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence


def _cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Render *rows* under *headers* as a boxed monospace table string."""
    str_rows = [[_cell(v) for v in row] for row in rows]
    for i, row in enumerate(str_rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells, expected {len(headers)}"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return "| " + " | ".join(c.ljust(w) for c, w in zip(cells, widths)) + " |"

    sep = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    lines = []
    if title:
        lines.append(title)
    lines.append(sep)
    lines.append(fmt_row(list(headers)))
    lines.append(sep)
    for row in str_rows:
        lines.append(fmt_row(row))
    lines.append(sep)
    return "\n".join(lines)
