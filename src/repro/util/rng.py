"""Deterministic random-number plumbing.

Every stochastic component in the library accepts either an integer seed or
an already-constructed :class:`numpy.random.Generator`.  Components never
touch global RNG state, so any experiment is exactly reproducible from its
seed and sub-components can be re-seeded independently.
"""

from __future__ import annotations

from typing import Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]

_DEFAULT_SEED = 0x5EED


def derive_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *seed*.

    ``None`` maps to a fixed library-wide default seed (the library is
    reproducible by default); an existing generator is passed through
    untouched so callers can share one stream.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = _DEFAULT_SEED
    return np.random.default_rng(seed)


def spawn_seeds(seed: SeedLike, n: int) -> list[int]:
    """Derive *n* independent child seeds from *seed*.

    Uses ``SeedSequence.spawn`` semantics so children are statistically
    independent regardless of how close the parent seeds are.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if isinstance(seed, np.random.Generator):
        # Draw child seeds from the generator itself.
        return [int(x) for x in seed.integers(0, 2**63 - 1, size=n)]
    if seed is None:
        seed = _DEFAULT_SEED
    ss = np.random.SeedSequence(seed)
    return [int(child.generate_state(1)[0]) for child in ss.spawn(n)]
