"""Shared utilities: deterministic RNG plumbing, simulated time, units,
and ASCII table rendering used by the benchmark harness."""

from repro.util.clock import SimulatedClock
from repro.util.profiling import profiled, timed
from repro.util.rng import derive_rng, spawn_seeds
from repro.util.tables import render_table
from repro.util.units import (
    GiB,
    KiB,
    MiB,
    format_bytes,
    format_duration,
    parse_bytes,
)

__all__ = [
    "SimulatedClock",
    "profiled",
    "timed",
    "derive_rng",
    "spawn_seeds",
    "render_table",
    "KiB",
    "MiB",
    "GiB",
    "format_bytes",
    "format_duration",
    "parse_bytes",
]
