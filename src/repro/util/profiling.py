"""Profiling helpers (per the optimization workflow: measure first).

Thin wrappers over :mod:`cProfile` and :func:`time.perf_counter` so
benches and examples can answer "where does the time go" without
boilerplate.  No optimization without measuring.
"""

from __future__ import annotations

import cProfile
import io
import pstats
import time
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class ProfileResult:
    """Captured profile: total wall time + the hottest functions."""

    wall_seconds: float = 0.0
    top: list[tuple[str, float]] = field(default_factory=list)

    def report(self, limit: int = 10) -> str:
        lines = [f"wall time: {self.wall_seconds:.4f} s"]
        for name, cumtime in self.top[:limit]:
            lines.append(f"  {cumtime:8.4f} s  {name}")
        return "\n".join(lines)


@contextmanager
def profiled(top: int = 20):
    """Profile the enclosed block; yields a :class:`ProfileResult`.

    ::

        with profiled() as prof:
            heavy_work()
        print(prof.report())
    """
    result = ProfileResult()
    profiler = cProfile.Profile()
    start = time.perf_counter()
    profiler.enable()
    try:
        yield result
    finally:
        profiler.disable()
        result.wall_seconds = time.perf_counter() - start
        stream = io.StringIO()
        stats = pstats.Stats(profiler, stream=stream)
        stats.sort_stats("cumulative")
        entries = []
        for func, (_cc, _nc, _tt, ct, _callers) in stats.stats.items():  # type: ignore[attr-defined]
            filename, lineno, name = func
            if "profiling.py" in filename:
                continue
            entries.append((f"{name} ({filename}:{lineno})", ct))
        entries.sort(key=lambda pair: -pair[1])
        result.top = entries[:top]


@contextmanager
def timed():
    """Minimal wall-clock timer; yields a dict filled on exit.

    ::

        with timed() as t:
            work()
        print(t["seconds"])
    """
    out: dict[str, float] = {}
    start = time.perf_counter()
    try:
        yield out
    finally:
        out["seconds"] = time.perf_counter() - start
