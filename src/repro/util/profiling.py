"""Profiling helpers (per the optimization workflow: measure first).

Thin wrappers over :mod:`cProfile` and :func:`time.perf_counter` so
benches and examples can answer "where does the time go" without
boilerplate.  No optimization without measuring.
"""

from __future__ import annotations

import cProfile
import io
import os
import pstats
import time
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class ProfileResult:
    """Captured profile: total wall time + the hottest functions."""

    wall_seconds: float = 0.0
    top: list[tuple[str, float]] = field(default_factory=list)

    def report(self, limit: int = 10) -> str:
        lines = [f"wall time: {self.wall_seconds:.4f} s"]
        for name, cumtime in self.top[:limit]:
            lines.append(f"  {cumtime:8.4f} s  {name}")
        return "\n".join(lines)


@contextmanager
def profiled(top: int = 20, top_by: str = "cumtime"):
    """Profile the enclosed block; yields a :class:`ProfileResult`.

    ``top_by`` selects the ranking column: ``"cumtime"`` (default) ranks
    by cumulative time including callees -- "which call trees are hot" --
    while ``"tottime"`` ranks by self time only, pointing at the actual
    loop burning cycles instead of every frame above it.

    The result is filled in even when the block raises (the profile up to
    the exception is often exactly what you need to see).

    ::

        with profiled() as prof:
            heavy_work()
        print(prof.report())
    """
    if top_by not in ("cumtime", "tottime"):
        raise ValueError(
            f"top_by must be 'cumtime' or 'tottime', got {top_by!r}"
        )
    result = ProfileResult()
    profiler = cProfile.Profile()
    start = time.perf_counter()
    profiler.enable()
    try:
        yield result
    finally:
        profiler.disable()
        result.wall_seconds = time.perf_counter() - start
        stream = io.StringIO()
        stats = pstats.Stats(profiler, stream=stream)
        stats.sort_stats("cumulative")
        entries = []
        for func, (_cc, _nc, tt, ct, _callers) in stats.stats.items():  # type: ignore[attr-defined]
            filename, lineno, name = func
            # Skip this module's own frames, not every file whose name
            # happens to end the same way (e.g. test_profiling.py).
            if os.path.basename(filename) == "profiling.py":
                continue
            value = ct if top_by == "cumtime" else tt
            entries.append((f"{name} ({filename}:{lineno})", value))
        entries.sort(key=lambda pair: -pair[1])
        result.top = entries[:top]


@contextmanager
def timed():
    """Minimal wall-clock timer; yields a dict filled on exit.

    ::

        with timed() as t:
            work()
        print(t["seconds"])
    """
    out: dict[str, float] = {}
    start = time.perf_counter()
    try:
        yield out
    finally:
        out["seconds"] = time.perf_counter() - start
