"""Deterministic crash injection for durability testing.

A *kill point* is a named location in a write path where a power cut would
leave interestingly-torn on-disk state: between a tmp-file write and its
rename, between an intent journal record and the transfer it covers,
between a blob rename and its legacy-sidecar cleanup.  Production code
calls :func:`crashpoint` at each of them; the call is a no-op until a test
installs a hook, which then simulates the crash by raising
:class:`CrashPoint` from exactly the chosen point.

``CrashPoint`` derives from :class:`BaseException` on purpose: the library
catches ``ProviderError``/``Exception`` liberally on its cleanup paths, and
a simulated power cut must tear straight through all of that the way a real
one would.  Only the test harness ever catches it.

The set of kill points is a static registry (:data:`KILL_POINTS`) so the
crash-injection suite can assert it crashes at *every* one of them.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Callable, Iterator

#: Every named kill point in the tree.  ``crashpoint`` refuses names outside
#: this set, so a typo in production code fails loudly in tier-1 instead of
#: silently never firing during crash tests.
KILL_POINTS: frozenset[str] = frozenset(
    {
        # repro.util.atomic -- the fsync-disciplined replace
        "atomic.tmp_written",  # tmp file written, not yet fsynced/renamed
        "atomic.renamed",  # renamed over the target, directory not fsynced
        # repro.providers.disk -- blob put
        "disk.put.start",  # nothing written yet
        "disk.put.committed",  # record renamed in, legacy sidecar not removed
        # repro.core.journal -- write-ahead intent journal
        "journal.append.torn",  # half a record written (torn tail line)
        "journal.appended",  # record durable, caller not yet resumed
        # repro.core.distributor -- upload
        "upload.intent_logged",  # intent durable, no shard transferred
        "upload.transferred",  # every shard stored, commit record missing
        "upload.committed",  # commit durable, metadata snapshot stale
        # repro.core.distributor -- remove
        "remove.intent_logged",  # intent durable, every shard still present
        "remove.partial",  # some chunks deleted, some not
        "remove.committed",  # commit durable, metadata snapshot stale
        # repro.core.distributor -- update (copy-on-write swap)
        "update.intent_logged",  # intent durable, no staged shard written
        "update.staged",  # new stripe + snapshot keys listed, not swapped
        "update.committed",  # commit durable, metadata snapshot stale
        # repro.fleet.rebalance -- cross-shard file migration
        "fleet.migrate.planned",  # plan record durable, nothing moved yet
        "fleet.migrate.copied",  # file live on both source and destination
        "fleet.migrate.removed",  # source copy gone, done record not written
    }
)

_hook: Callable[[str], None] | None = None
_lock = threading.Lock()


class CrashPoint(BaseException):
    """Simulated power cut, raised from a named kill point."""

    def __init__(self, point: str) -> None:
        super().__init__(f"simulated crash at kill point {point!r}")
        self.point = point


def crashpoint(name: str) -> None:
    """Mark a kill point; raises :class:`CrashPoint` if a hook says so.

    Free when no hook is installed (one global read), so production paths
    keep it unconditionally.
    """
    if _hook is None:
        return
    if name not in KILL_POINTS:
        raise AssertionError(f"unregistered kill point {name!r}")
    _hook(name)


def install_crash_hook(hook: Callable[[str], None] | None) -> None:
    """Install (or with ``None`` remove) the process-wide crash hook."""
    global _hook
    with _lock:
        _hook = hook


@contextmanager
def crashing_at(point: str, after: int = 0) -> Iterator[list[str]]:
    """Context that raises :class:`CrashPoint` at the *after*-th hit of
    *point* (0 = first), recording every kill point reached on the way.

    Yields the list of reached point names (useful for asserting coverage).
    Always uninstalls the hook on exit, even when the crash propagates.
    """
    if point not in KILL_POINTS:
        raise AssertionError(f"unregistered kill point {point!r}")
    reached: list[str] = []
    remaining = [after]

    def hook(name: str) -> None:
        reached.append(name)
        if name == point:
            if remaining[0] == 0:
                raise CrashPoint(name)
            remaining[0] -= 1

    install_crash_hook(hook)
    try:
        yield reached
    finally:
        install_crash_hook(None)
