"""Request deadlines with ambient (thread-local) propagation.

A :class:`Deadline` is an absolute point on the *monotonic* clock by which
a request must finish.  Work started on behalf of that request checks
:meth:`Deadline.check` before each expensive step and raises
:class:`~repro.core.errors.DeadlineExceeded` once the budget is gone, so a
caller that already gave up never keeps servers and providers grinding.

Deadlines travel two ways:

* **In process** they are ambient: :func:`deadline_scope` pushes a deadline
  onto a thread-local stack and any code below it reads
  :func:`current_deadline` / calls :func:`check_deadline` without plumbing
  an argument through every signature.  Crossing into a worker thread is
  explicit, mirroring ``Tracer.capture()/adopt()``: capture the deadline in
  the submitting thread and re-enter a scope inside the worker.

* **On the wire** only the *remaining budget* is sent (a millisecond count
  in the DEADLINE envelope, see ``repro.net.protocol``), never the absolute
  timestamp — monotonic clocks are per-process and wall clocks skew.  The
  receiver re-anchors the budget against its own clock.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator, Optional

from repro.core.errors import DeadlineExceeded

__all__ = [
    "Deadline",
    "check_deadline",
    "current_deadline",
    "deadline_scope",
    "remaining_budget",
]


@dataclass(frozen=True)
class Deadline:
    """An absolute monotonic-clock instant by which work must complete.

    ``time_fn`` is injectable for tests; it must be the same callable used
    to mint the deadline and to query it.
    """

    at: float
    time_fn: Callable[[], float] = time.monotonic

    @classmethod
    def after(
        cls, seconds: float, time_fn: Callable[[], float] = time.monotonic
    ) -> "Deadline":
        """A deadline *seconds* from now."""
        if seconds < 0:
            raise ValueError(f"deadline budget must be >= 0, got {seconds}")
        return cls(at=time_fn() + seconds, time_fn=time_fn)

    def remaining(self) -> float:
        """Seconds of budget left; negative once expired."""
        return self.at - self.time_fn()

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0

    def check(self, what: str = "request") -> None:
        """Raise :class:`DeadlineExceeded` if the budget is gone."""
        left = self.remaining()
        if left <= 0:
            raise DeadlineExceeded(
                f"deadline exceeded before {what} ({-left * 1000.0:.0f} ms past)"
            )

    def timeout(self, floor: float = 0.001, cap: Optional[float] = None) -> float:
        """The remaining budget clamped into a usable socket timeout.

        Never returns a non-positive value (a zero socket timeout means
        non-blocking, not "already late") — callers should :meth:`check`
        first, then use this for the actual I/O timeout.
        """
        left = max(self.remaining(), floor)
        if cap is not None:
            left = min(left, cap)
        return left

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Deadline(remaining={self.remaining():.3f}s)"


class _DeadlineStack(threading.local):
    def __init__(self) -> None:
        self.stack: list[Deadline] = []


_AMBIENT = _DeadlineStack()


def current_deadline() -> Optional[Deadline]:
    """The innermost ambient deadline for this thread, if any."""
    stack = _AMBIENT.stack
    return stack[-1] if stack else None


@contextmanager
def deadline_scope(deadline: Optional[Deadline]) -> Iterator[Optional[Deadline]]:
    """Make *deadline* ambient for the duration of the ``with`` block.

    ``None`` is accepted and pushes nothing, so call sites can write
    ``with deadline_scope(maybe_deadline):`` without branching.  Nested
    scopes keep the *tighter* effective deadline: the inner one is pushed
    as-is (it is the caller's business), but :func:`check_deadline` walks
    only the innermost entry, which by construction is never later than an
    outer per-request deadline in our call graphs.
    """
    if deadline is None:
        yield None
        return
    _AMBIENT.stack.append(deadline)
    try:
        yield deadline
    finally:
        _AMBIENT.stack.pop()


def check_deadline(what: str = "request") -> None:
    """Check the ambient deadline (no-op when none is set)."""
    deadline = current_deadline()
    if deadline is not None:
        deadline.check(what)


def remaining_budget() -> Optional[float]:
    """Seconds left on the ambient deadline, or ``None`` when unbounded."""
    deadline = current_deadline()
    return None if deadline is None else deadline.remaining()
