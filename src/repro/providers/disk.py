"""On-disk provider backend.

Persists objects as files under a root directory, so examples can survive
process restarts and the disk-vs-memory overhead can be benchmarked.

Each object is one self-checking record file::

    b"RB1\\n" + <64 hex sha256 of payload> + b"\\n" + payload

written through :func:`repro.util.atomic.atomic_write_bytes`, so the blob
and its checksum land in a single atomic rename and can never disagree --
the torn window the old sidecar layout had (new blob renamed in, stale
``.sha256`` still on disk) is gone by construction.  Files written by older
versions (raw payload + ``.sha256`` sidecar) are still readable; the first
overwrite migrates them to the record format and removes the sidecar.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.errors import BlobCorruptedError, BlobNotFoundError
from repro.providers.base import BlobStat, CloudProvider, blob_checksum
from repro.util.atomic import atomic_write_bytes
from repro.util.crash import crashpoint

_SAFE = frozenset("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-")

#: Record layout: magic + newline, 64 hex checksum chars, newline, payload.
_MAGIC = b"RB1\n"
_HEADER_LEN = len(_MAGIC) + 64 + 1


def _encode_key(key: str) -> str:
    """Filesystem-safe encoding of an arbitrary object key.

    Escapes are applied per UTF-8 *byte* (always two hex digits), so
    non-ASCII keys survive the round trip through :meth:`DiskProvider.keys`.
    """
    return "".join(
        chr(b) if chr(b) in _SAFE else f"%{b:02x}" for b in key.encode("utf-8")
    )


def _pack_record(data: bytes) -> bytes:
    return _MAGIC + blob_checksum(data).encode("ascii") + b"\n" + data


def _unpack_record(raw: bytes) -> tuple[str, bytes] | None:
    """(checksum, payload) if *raw* is a record file, else ``None`` (legacy)."""
    if not raw.startswith(_MAGIC) or len(raw) < _HEADER_LEN:
        return None
    if raw[_HEADER_LEN - 1 : _HEADER_LEN] != b"\n":
        return None
    checksum = raw[len(_MAGIC) : _HEADER_LEN - 1]
    try:
        return checksum.decode("ascii"), raw[_HEADER_LEN:]
    except UnicodeDecodeError:
        return None


class DiskProvider(CloudProvider):
    """Directory-backed object store with embedded checksums."""

    def __init__(self, name: str, root: str | Path) -> None:
        super().__init__(name)
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _blob_path(self, key: str) -> Path:
        return self.root / (_encode_key(key) + ".blob")

    def _sum_path(self, key: str) -> Path:
        # Legacy sidecar location; only ever read (and cleaned up), never
        # written, since the record format embeds the checksum.
        return self.root / (_encode_key(key) + ".sha256")

    def put(self, key: str, data: bytes) -> None:
        crashpoint("disk.put.start")
        atomic_write_bytes(self._blob_path(key), _pack_record(data))
        crashpoint("disk.put.committed")
        # If this key predates the record format, its sidecar is now stale;
        # drop it.  A crash in between is harmless: readers prefer the
        # embedded checksum, so the leftover sidecar is ignored garbage.
        self._sum_path(key).unlink(missing_ok=True)

    def _read_record(self, key: str) -> tuple[str, bytes]:
        """(expected checksum, payload) for *key* in either format."""
        path = self._blob_path(key)
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            raise BlobNotFoundError(
                f"provider {self.name!r} has no object {key!r}"
            ) from None
        unpacked = _unpack_record(raw)
        if unpacked is not None:
            return unpacked
        # Legacy layout: raw payload with a sidecar checksum.
        try:
            return self._sum_path(key).read_text(), raw
        except FileNotFoundError:
            raise BlobCorruptedError(
                f"object {key!r} at provider {self.name!r} has neither an "
                f"embedded checksum nor a sidecar"
            ) from None

    def get(self, key: str) -> bytes:
        expected, data = self._read_record(key)
        if blob_checksum(data) != expected:
            raise BlobCorruptedError(
                f"object {key!r} at provider {self.name!r} failed integrity check"
            )
        return data

    def delete(self, key: str) -> None:
        path = self._blob_path(key)
        if not path.exists():
            raise BlobNotFoundError(
                f"provider {self.name!r} has no object {key!r}"
            )
        path.unlink()
        self._sum_path(key).unlink(missing_ok=True)

    def keys(self) -> list[str]:
        out = []
        for path in self.root.glob("*.blob"):
            encoded = path.name[: -len(".blob")]
            # Reverse the %xx byte escapes from _encode_key.
            raw, i = bytearray(), 0
            while i < len(encoded):
                if encoded[i] == "%":
                    raw.append(int(encoded[i + 1 : i + 3], 16))
                    i += 3
                else:
                    raw.append(ord(encoded[i]))
                    i += 1
            out.append(raw.decode("utf-8"))
        return out

    def head(self, key: str) -> BlobStat:
        path = self._blob_path(key)
        if not path.exists():
            raise BlobNotFoundError(
                f"provider {self.name!r} has no object {key!r}"
            )
        with path.open("rb") as fh:
            header = fh.read(_HEADER_LEN)
        unpacked = _unpack_record(header)
        if unpacked is not None:
            return BlobStat(
                key=key,
                size=path.stat().st_size - _HEADER_LEN,
                checksum=unpacked[0],
            )
        return BlobStat(
            key=key,
            size=path.stat().st_size,
            checksum=self._sum_path(key).read_text(),
        )
