"""On-disk provider backend.

Persists objects as files under a root directory (one file per key, with a
sidecar checksum), so examples can survive process restarts and the
disk-vs-memory overhead can be benchmarked.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.core.errors import BlobCorruptedError, BlobNotFoundError
from repro.providers.base import BlobStat, CloudProvider, blob_checksum

_SAFE = frozenset("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-")


def _encode_key(key: str) -> str:
    """Filesystem-safe encoding of an arbitrary object key.

    Escapes are applied per UTF-8 *byte* (always two hex digits), so
    non-ASCII keys survive the round trip through :meth:`DiskProvider.keys`.
    """
    return "".join(
        chr(b) if chr(b) in _SAFE else f"%{b:02x}" for b in key.encode("utf-8")
    )


class DiskProvider(CloudProvider):
    """Directory-backed object store with sidecar checksums."""

    def __init__(self, name: str, root: str | Path) -> None:
        super().__init__(name)
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _blob_path(self, key: str) -> Path:
        return self.root / (_encode_key(key) + ".blob")

    def _sum_path(self, key: str) -> Path:
        return self.root / (_encode_key(key) + ".sha256")

    def put(self, key: str, data: bytes) -> None:
        tmp = self._blob_path(key).with_suffix(".tmp")
        tmp.write_bytes(data)
        os.replace(tmp, self._blob_path(key))
        self._sum_path(key).write_text(blob_checksum(data))

    def get(self, key: str) -> bytes:
        path = self._blob_path(key)
        if not path.exists():
            raise BlobNotFoundError(
                f"provider {self.name!r} has no object {key!r}"
            )
        data = path.read_bytes()
        expected = self._sum_path(key).read_text()
        if blob_checksum(data) != expected:
            raise BlobCorruptedError(
                f"object {key!r} at provider {self.name!r} failed integrity check"
            )
        return data

    def delete(self, key: str) -> None:
        path = self._blob_path(key)
        if not path.exists():
            raise BlobNotFoundError(
                f"provider {self.name!r} has no object {key!r}"
            )
        path.unlink()
        self._sum_path(key).unlink(missing_ok=True)

    def keys(self) -> list[str]:
        out = []
        for path in self.root.glob("*.blob"):
            encoded = path.name[: -len(".blob")]
            # Reverse the %xx byte escapes from _encode_key.
            raw, i = bytearray(), 0
            while i < len(encoded):
                if encoded[i] == "%":
                    raw.append(int(encoded[i + 1 : i + 3], 16))
                    i += 3
                else:
                    raw.append(ord(encoded[i]))
                    i += 1
            out.append(raw.decode("utf-8"))
        return out

    def head(self, key: str) -> BlobStat:
        path = self._blob_path(key)
        if not path.exists():
            raise BlobNotFoundError(
                f"provider {self.name!r} has no object {key!r}"
            )
        return BlobStat(
            key=key,
            size=path.stat().st_size,
            checksum=self._sum_path(key).read_text(),
        )
