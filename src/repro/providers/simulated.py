"""Simulated cloud provider: latency, bandwidth, availability, billing.

Wraps any :class:`CloudProvider` backend and charges every request against
a shared :class:`SimulatedClock` using a per-provider latency/bandwidth
model, so the paper's "distribution time" experiments run at laptop speed.
Availability is a simple up/down flag toggled by the fault injector; a
request against a down provider raises :class:`ProviderUnavailableError`
after charging a timeout, as a real client library would.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import ProviderUnavailableError
from repro.core.privacy import CostLevel
from repro.providers.base import BlobStat, CloudProvider
from repro.providers.billing import BillingMeter
from repro.util.clock import SimulatedClock
from repro.util.rng import SeedLike, derive_rng
from repro.util.units import MiB


@dataclass(frozen=True)
class LatencyModel:
    """Per-request service time model.

    Request time = base round-trip latency (lognormal jitter around
    ``rtt_s``) + payload size / bandwidth.  Defaults approximate a 2012-era
    WAN path to a storage service: ~80 ms RTT, ~20 MiB/s throughput.
    """

    rtt_s: float = 0.080
    jitter: float = 0.10
    upload_bw: float = 20 * MiB
    download_bw: float = 40 * MiB
    timeout_s: float = 5.0

    def __post_init__(self) -> None:
        if self.rtt_s < 0 or self.jitter < 0:
            raise ValueError("rtt and jitter must be >= 0")
        if self.upload_bw <= 0 or self.download_bw <= 0:
            raise ValueError("bandwidths must be positive")

    def request_time(self, nbytes: int, upload: bool, rng) -> float:
        bw = self.upload_bw if upload else self.download_bw
        base = self.rtt_s
        if self.jitter > 0:
            base *= float(rng.lognormal(mean=0.0, sigma=self.jitter))
        return base + nbytes / bw


@dataclass
class RequestRecord:
    """One entry of the simulated provider's request log."""

    op: str
    key: str
    nbytes: int
    started_at: float
    duration: float
    ok: bool


class ParallelWindow:
    """Charge overlapping requests as concurrent instead of serial.

    The paper argues fragmentation "exploits the benefit of parallel query
    processing as various fragments can be accessed simultaneously"
    (Section VII-E).  Inside a ``with ParallelWindow(clock):`` block every
    simulated request records its duration against the window instead of
    advancing the shared clock; on exit the clock advances by the *longest
    per-provider serial chain* -- requests to distinct providers overlap,
    requests to the same provider queue.
    """

    def __init__(self, clock: SimulatedClock) -> None:
        self.clock = clock
        self._per_provider: dict[str, float] = {}
        self._active = False

    # -- used by SimulatedProvider._charge ---------------------------------

    def record(self, provider_name: str, duration: float) -> None:
        self._per_provider[provider_name] = (
            self._per_provider.get(provider_name, 0.0) + duration
        )

    @property
    def elapsed(self) -> float:
        """The window's critical-path time so far."""
        return max(self._per_provider.values(), default=0.0)

    def __enter__(self) -> "ParallelWindow":
        self._active = True
        _parallel_windows.setdefault(id(self.clock), []).append(self)
        return self

    def __exit__(self, *exc) -> None:
        self._active = False
        stack = _parallel_windows.get(id(self.clock), [])
        if self in stack:
            stack.remove(self)
        self.clock.advance(self.elapsed)


#: Active parallel windows per clock (keyed by clock identity).
_parallel_windows: dict[int, list["ParallelWindow"]] = {}


def _active_window(clock: SimulatedClock) -> "ParallelWindow | None":
    stack = _parallel_windows.get(id(clock))
    return stack[-1] if stack else None


class SimulatedProvider(CloudProvider):
    """Latency-and-billing wrapper over a concrete backend."""

    def __init__(
        self,
        backend: CloudProvider,
        clock: SimulatedClock,
        latency: LatencyModel | None = None,
        cost_level: CostLevel | int = CostLevel.CHEAP,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(backend.name)
        self.backend = backend
        self.clock = clock
        self.latency = latency or LatencyModel()
        self.cost_level = CostLevel.coerce(cost_level)
        self.meter = BillingMeter(clock=clock, cost_level=self.cost_level)
        self.available = True
        self.request_log: list[RequestRecord] = []
        self._rng = derive_rng(seed)

    # -- availability (toggled by repro.providers.failures) ----------------

    def set_available(self, up: bool) -> None:
        self.available = up

    def _spend(self, duration: float) -> None:
        """Charge *duration* to the active parallel window, else the clock."""
        window = _active_window(self.clock)
        if window is not None:
            window.record(self.name, duration)
        else:
            self.clock.advance(duration)

    def _charge(self, op: str, key: str, nbytes: int, upload: bool) -> None:
        """Charge time for one request; raise if the provider is down."""
        started = self.clock.now
        if not self.available:
            self._spend(self.latency.timeout_s)
            self.request_log.append(
                RequestRecord(op, key, nbytes, started, self.latency.timeout_s, False)
            )
            raise ProviderUnavailableError(
                f"provider {self.name!r} is unavailable"
            )
        duration = self.latency.request_time(nbytes, upload, self._rng)
        self._spend(duration)
        self.request_log.append(
            RequestRecord(op, key, nbytes, started, duration, True)
        )

    # -- CloudProvider interface -------------------------------------------

    def put(self, key: str, data: bytes) -> None:
        self._charge("put", key, len(data), upload=True)
        old = self.backend.head(key).size if self.backend.contains(key) else 0
        self.backend.put(key, data)
        self.meter.record_put(len(data))
        self.meter.record_bytes_delta(len(data) - old)

    def get(self, key: str) -> bytes:
        # Size known only after the fetch; charge RTT first, then transfer.
        self._charge("get", key, 0, upload=False)
        data = self.backend.get(key)
        self._spend(len(data) / self.latency.download_bw)
        self.meter.record_get(len(data))
        return data

    def delete(self, key: str) -> None:
        self._charge("delete", key, 0, upload=True)
        old = self.backend.head(key).size
        self.backend.delete(key)
        self.meter.record_bytes_delta(-old)

    def keys(self) -> list[str]:
        self._charge("list", "*", 0, upload=False)
        return self.backend.keys()

    def head(self, key: str) -> BlobStat:
        self._charge("head", key, 0, upload=False)
        return self.backend.head(key)

    def contains(self, key: str) -> bool:
        # Cheap metadata check; charged as a head request by base class.
        return super().contains(key)
