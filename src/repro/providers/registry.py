"""Provider catalogue: binds storage backends to trust/price metadata.

"Number of cloud service providers is rapidly increasing and some are
providing better services than the other.  Some cloud providers have a
reputation of being very trustworthy while some offer very cheap services."
(Section IV-B.)  The registry is the distributor's view of that market: each
provider object tagged with its privacy level (reputation), cost level, and
optional attestation status.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.privacy import CostLevel, PrivacyLevel
from repro.providers.attestation import AttestationRegistry
from repro.providers.base import CloudProvider
from repro.providers.memory import InMemoryProvider
from repro.providers.simulated import LatencyModel, SimulatedProvider
from repro.util.clock import SimulatedClock
from repro.util.rng import SeedLike, spawn_seeds


@dataclass(frozen=True)
class ProviderSpec:
    """Declarative description of one provider in a fleet.

    ``region`` supports the paper's locality optimization ("storing the
    chunks in the locations where they are frequently used (for multi
    national companies)", Section VII-E): placement policies can prefer
    providers in the client's region, and :func:`regional_latency` derives
    a realistic RTT from region distance.
    """

    name: str
    privacy_level: PrivacyLevel
    cost_level: CostLevel
    latency: LatencyModel | None = None
    attested: bool = False
    region: str = "default"
    capacity_bytes: int | None = None  # None = unlimited


@dataclass
class RegisteredProvider:
    """A provider plus the distributor-side metadata about it."""

    provider: CloudProvider
    privacy_level: PrivacyLevel
    cost_level: CostLevel
    region: str = "default"
    capacity_bytes: int | None = None

    @property
    def name(self) -> str:
        return self.provider.name

    def used_bytes(self) -> int | None:
        """Cheaply known stored-byte count, or None when untracked.

        Simulated providers track this O(1) via their billing meter;
        querying a raw backend would cost provider requests, so capacity
        is only enforced where the meter exists.
        """
        meter = getattr(self.provider, "meter", None)
        return meter.stored_bytes if meter is not None else None

    def has_capacity_for(self, nbytes: int) -> bool:
        """True unless a known byte count would exceed a set capacity."""
        if self.capacity_bytes is None:
            return True
        used = self.used_bytes()
        if used is None:
            return True
        return used + nbytes <= self.capacity_bytes


def provider_from_url(name: str, url: str) -> CloudProvider:
    """Construct a provider backend from a scheme URL.

    Supported schemes::

        memory://                   in-process dict store
        disk:///path/to/root        directory-backed store
        remote://host:port          socket client to a chunk server
        chaos+<inner-url>?params    fault-injecting wrapper over any of them

    ``remote://`` is how a fleet file or registry call points the
    distributor at a network chunk server (:mod:`repro.net`).  URL-built
    remotes enable a 5 s circuit breaker: fleet files describe long-lived
    deployments, and a dead node should cost one retry budget per run,
    not one per chunk.

    ``chaos+`` composes: ``chaos+memory://?seed=7&error_rate=0.05`` or
    ``chaos+remote://host:port?latency_rate=0.2&latency_s=0.05`` wrap the
    inner backend in a :class:`~repro.providers.chaos.ChaosProvider` with a
    seeded deterministic fault plan (see
    :func:`repro.providers.chaos.plan_from_query` for the parameter names).
    """
    if url.startswith("chaos+"):
        from repro.providers.chaos import ChaosProvider, plan_from_query

        inner_url, _, query = url[len("chaos+") :].partition("?")
        plan, seed = plan_from_query(query)
        return ChaosProvider(provider_from_url(name, inner_url), plan, seed=seed)
    scheme, sep, rest = url.partition("://")
    if not sep:
        raise ValueError(f"not a provider URL (missing '://'): {url!r}")
    if scheme == "memory":
        return InMemoryProvider(name)
    if scheme == "disk":
        if not rest:
            raise ValueError(f"disk:// URL needs a root path: {url!r}")
        from repro.providers.disk import DiskProvider

        return DiskProvider(name, rest)
    if scheme == "remote":
        host, colon, port_text = rest.rpartition(":")
        if not colon or not port_text.isdigit():
            raise ValueError(
                f"remote:// URL must be remote://host:port, got {url!r}"
            )
        # Imported lazily: repro.net imports this package at module load.
        from repro.net.remote import RemoteProvider

        return RemoteProvider(
            name, host or "127.0.0.1", int(port_text), failfast_window=5.0
        )
    raise ValueError(f"unknown provider scheme {scheme!r} in {url!r}")


class ProviderRegistry:
    """Name-keyed catalogue of registered providers."""

    def __init__(self, attestation: AttestationRegistry | None = None) -> None:
        self._providers: dict[str, RegisteredProvider] = {}
        self.attestation = attestation or AttestationRegistry()

    def register(
        self,
        provider: CloudProvider,
        privacy_level: PrivacyLevel | int,
        cost_level: CostLevel | int,
        region: str = "default",
        capacity_bytes: int | None = None,
    ) -> RegisteredProvider:
        if provider.name in self._providers:
            raise ValueError(f"provider {provider.name!r} already registered")
        if capacity_bytes is not None and capacity_bytes <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_bytes}")
        entry = RegisteredProvider(
            provider=provider,
            privacy_level=PrivacyLevel.coerce(privacy_level),
            cost_level=CostLevel.coerce(cost_level),
            region=region,
            capacity_bytes=capacity_bytes,
        )
        self._providers[provider.name] = entry
        return entry

    def register_url(
        self,
        name: str,
        url: str,
        privacy_level: PrivacyLevel | int,
        cost_level: CostLevel | int,
        region: str = "default",
        capacity_bytes: int | None = None,
    ) -> RegisteredProvider:
        """Register a backend described by URL (see :func:`provider_from_url`)."""
        return self.register(
            provider_from_url(name, url),
            privacy_level,
            cost_level,
            region=region,
            capacity_bytes=capacity_bytes,
        )

    def get(self, name: str) -> RegisteredProvider:
        try:
            return self._providers[name]
        except KeyError:
            raise KeyError(f"no provider named {name!r}") from None

    def names(self) -> list[str]:
        return list(self._providers)

    def all(self) -> list[RegisteredProvider]:
        return list(self._providers.values())

    def eligible(self, chunk_level: PrivacyLevel | int) -> list[RegisteredProvider]:
        """Providers whose privacy level qualifies them for *chunk_level*."""
        pl = PrivacyLevel.coerce(chunk_level)
        return [
            e for e in self._providers.values() if int(e.privacy_level) >= int(pl)
        ]

    def __len__(self) -> int:
        return len(self._providers)

    def __contains__(self, name: str) -> bool:
        return name in self._providers


def build_simulated_fleet(
    specs: list[ProviderSpec],
    clock: SimulatedClock | None = None,
    seed: SeedLike = None,
) -> tuple[ProviderRegistry, list[SimulatedProvider], SimulatedClock]:
    """Instantiate a fleet of simulated providers from declarative specs.

    Returns the populated registry, the simulated-provider list (for fault
    injection), and the shared clock.  Providers marked ``attested`` get a
    trusted-measurement record in the registry's attestation registry.
    """
    clock = clock or SimulatedClock()
    registry = ProviderRegistry()
    seeds = spawn_seeds(seed, len(specs))
    simulated: list[SimulatedProvider] = []
    trusted = registry.attestation.measure("trusted-stack-v1")
    registry.attestation.trust_measurement(trusted)
    for spec, child_seed in zip(specs, seeds):
        provider = SimulatedProvider(
            backend=InMemoryProvider(spec.name),
            clock=clock,
            latency=spec.latency,
            cost_level=spec.cost_level,
            seed=child_seed,
        )
        registry.register(
            provider, spec.privacy_level, spec.cost_level, region=spec.region,
            capacity_bytes=spec.capacity_bytes,
        )
        if spec.attested:
            registry.attestation.attest(spec.name, "trusted-stack-v1")
        simulated.append(provider)
    return registry, simulated, clock


#: RTT from the client's vantage point by region distance, modelling a
#: client in one metro with providers locally, on-continent and overseas.
REGION_RTT_S = {"local": 0.020, "near": 0.080, "far": 0.220}


def regional_latency(region: str) -> LatencyModel:
    """A latency model shaped by the provider's region distance."""
    if region not in REGION_RTT_S:
        raise ValueError(
            f"region must be one of {sorted(REGION_RTT_S)}, got {region!r}"
        )
    return LatencyModel(rtt_s=REGION_RTT_S[region])


def regional_fleet_specs(per_region: int = 3) -> list[ProviderSpec]:
    """A multi-region fleet: *per_region* PL-3 providers in each of the
    three region distances, for the Section VII-E locality experiments."""
    if per_region < 1:
        raise ValueError(f"per_region must be >= 1, got {per_region}")
    specs = []
    for region in ("local", "near", "far"):
        for i in range(per_region):
            specs.append(
                ProviderSpec(
                    name=f"{region}-{i}",
                    privacy_level=PrivacyLevel.PRIVATE,
                    cost_level=CostLevel.CHEAP,
                    latency=regional_latency(region),
                    region=region,
                )
            )
    return specs


def default_fleet_specs(n: int = 7) -> list[ProviderSpec]:
    """A fleet shaped like the paper's Figure 3 provider table.

    Mixes premium PL-3 providers (Adobe/AWS/Google/Microsoft in the paper)
    with cheaper low-trust ones (Sky/Sea/Earth).
    """
    catalogue = [
        ProviderSpec("Adobe", PrivacyLevel.PRIVATE, CostLevel.PREMIUM, attested=True),
        ProviderSpec("AWS", PrivacyLevel.PRIVATE, CostLevel.PREMIUM, attested=True),
        ProviderSpec("Google", PrivacyLevel.PRIVATE, CostLevel.PREMIUM, attested=True),
        ProviderSpec("Microsoft", PrivacyLevel.PRIVATE, CostLevel.PREMIUM, attested=True),
        ProviderSpec("Sky", PrivacyLevel.MODERATE, CostLevel.CHEAP),
        ProviderSpec("Sea", PrivacyLevel.LOW, CostLevel.CHEAP),
        ProviderSpec("Earth", PrivacyLevel.LOW, CostLevel.CHEAP),
        ProviderSpec("Mist", PrivacyLevel.PUBLIC, CostLevel.CHEAPEST),
        ProviderSpec("Dust", PrivacyLevel.PUBLIC, CostLevel.CHEAPEST),
        ProviderSpec("Wind", PrivacyLevel.MODERATE, CostLevel.EXPENSIVE),
        ProviderSpec("Stone", PrivacyLevel.PRIVATE, CostLevel.EXPENSIVE, attested=True),
        ProviderSpec("River", PrivacyLevel.LOW, CostLevel.CHEAPEST),
    ]
    if n < 1:
        raise ValueError(f"fleet size must be >= 1, got {n}")
    if n <= len(catalogue):
        return catalogue[:n]
    extra = [
        ProviderSpec(
            f"CP{i}",
            PrivacyLevel(i % 4),
            CostLevel((i + 1) % 4),
            attested=(i % 4 == 3),
        )
        for i in range(len(catalogue), n)
    ]
    return catalogue + extra
