"""Fault injection for providers (Section III-A's threat catalogue).

The paper motivates distribution partly by availability failures --
"network outage, the cloud provider going out of business, malware attack"
-- and the 2011 EC2 outage.  This module schedules those events on the
shared simulated clock:

* **outages**: a provider goes down for a window and comes back;
* **churn**: a provider goes out of business (never returns; blobs gone);
* **blob loss / corruption**: silent data damage the RAID layer must catch.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.providers.memory import InMemoryProvider
from repro.providers.simulated import SimulatedProvider
from repro.util.clock import EventScheduler, SimulatedClock
from repro.util.rng import SeedLike, derive_rng


@dataclass(frozen=True)
class OutageWindow:
    provider: str
    start: float
    end: float


class FailureInjector:
    """Deterministic failure scheduling over a fleet of simulated providers."""

    def __init__(
        self,
        providers: list[SimulatedProvider],
        clock: SimulatedClock,
        seed: SeedLike = None,
    ) -> None:
        self.providers = {p.name: p for p in providers}
        if len(self.providers) != len(providers):
            raise ValueError("provider names must be unique")
        self.scheduler = EventScheduler(clock)
        self.clock = clock
        self._rng = derive_rng(seed)
        self.outage_history: list[OutageWindow] = []

    def _provider(self, name: str) -> SimulatedProvider:
        try:
            return self.providers[name]
        except KeyError:
            raise KeyError(f"no provider named {name!r}") from None

    # -- immediate faults ----------------------------------------------------

    def take_down(self, name: str) -> None:
        """Immediately mark *name* unavailable."""
        self._provider(name).set_available(False)

    def bring_up(self, name: str) -> None:
        self._provider(name).set_available(True)

    def kill_permanently(self, name: str) -> None:
        """Provider goes out of business: down forever and blobs destroyed."""
        provider = self._provider(name)
        provider.set_available(False)
        backend = provider.backend
        if isinstance(backend, InMemoryProvider):
            for key in list(backend.keys()):
                backend.drop_blob(key)

    def lose_blob(self, name: str, key: str) -> None:
        """Silently destroy one object (latent sector error)."""
        backend = self._provider(name).backend
        if not isinstance(backend, InMemoryProvider):
            raise TypeError("blob loss injection requires an InMemoryProvider backend")
        backend.drop_blob(key)

    def corrupt_blob(self, name: str, key: str) -> None:
        """Silently flip a byte of one object (bit rot)."""
        backend = self._provider(name).backend
        if not isinstance(backend, InMemoryProvider):
            raise TypeError("corruption injection requires an InMemoryProvider backend")
        backend.corrupt_blob(key)

    # -- scheduled faults ------------------------------------------------------

    def schedule_outage(self, name: str, start: float, duration: float) -> None:
        """Provider *name* is down during [start, start+duration)."""
        if duration <= 0:
            raise ValueError(f"outage duration must be positive, got {duration}")
        provider = self._provider(name)
        self.scheduler.schedule_at(start, lambda: provider.set_available(False))
        self.scheduler.schedule_at(
            start + duration, lambda: provider.set_available(True)
        )
        self.outage_history.append(OutageWindow(name, start, start + duration))

    def schedule_random_outages(
        self,
        rate_per_provider: float,
        horizon: float,
        mean_duration: float,
    ) -> int:
        """Poisson outage arrivals for every provider up to *horizon*.

        Returns the number of outages scheduled.  Deterministic given the
        injector's seed.
        """
        if horizon <= self.clock.now:
            raise ValueError("horizon must be in the simulated future")
        scheduled = 0
        for name in sorted(self.providers):
            t = self.clock.now
            while True:
                t += float(self._rng.exponential(1.0 / rate_per_provider))
                if t >= horizon:
                    break
                duration = float(self._rng.exponential(mean_duration))
                self.schedule_outage(name, t, max(duration, 1e-6))
                scheduled += 1
        return scheduled

    def run_until(self, timestamp: float) -> int:
        """Advance simulated time, firing scheduled faults; returns count."""
        return self.scheduler.run_until(timestamp)
