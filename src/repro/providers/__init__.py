"""Simulated cloud-storage providers: the paper's second system entity.

S3-like object stores (in-memory and on-disk), a latency/cost/availability
simulation wrapper, deterministic fault injection, GB-month billing, and a
TCCP-style attestation registry.
"""

from repro.providers.attestation import AttestationRecord, AttestationRegistry
from repro.providers.base import BlobStat, CloudProvider, blob_checksum
from repro.providers.billing import DEFAULT_PRICES, SECONDS_PER_MONTH, BillingMeter
from repro.providers.chaos import ChaosProvider, FaultEvent, FaultPlan
from repro.providers.disk import DiskProvider
from repro.providers.failures import FailureInjector, OutageWindow
from repro.providers.memory import InMemoryProvider
from repro.providers.registry import (
    ProviderRegistry,
    ProviderSpec,
    RegisteredProvider,
    build_simulated_fleet,
    default_fleet_specs,
    provider_from_url,
    regional_fleet_specs,
    regional_latency,
)
from repro.providers.simulated import (
    LatencyModel,
    ParallelWindow,
    RequestRecord,
    SimulatedProvider,
)

__all__ = [
    "AttestationRecord",
    "AttestationRegistry",
    "BlobStat",
    "CloudProvider",
    "blob_checksum",
    "ChaosProvider",
    "FaultEvent",
    "FaultPlan",
    "BillingMeter",
    "DEFAULT_PRICES",
    "SECONDS_PER_MONTH",
    "DiskProvider",
    "FailureInjector",
    "OutageWindow",
    "InMemoryProvider",
    "ProviderRegistry",
    "ProviderSpec",
    "RegisteredProvider",
    "build_simulated_fleet",
    "default_fleet_specs",
    "provider_from_url",
    "regional_fleet_specs",
    "regional_latency",
    "LatencyModel",
    "ParallelWindow",
    "RequestRecord",
    "SimulatedProvider",
]
