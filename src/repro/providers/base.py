"""Cloud-provider abstraction (Section IV-B).

"The main tasks of Cloud Providers are: storing chunks of data, responding
to a query by providing the desired data, and removing chunks when asked.
All these are done using virtual id which is known as key for Amazon's
simple storage service (S3)."

Every backend therefore exposes the S3-flavoured ``put``/``get``/``delete``
triple (plus ``contains``/``keys``/``head`` conveniences), keyed by opaque
strings.  Integrity is first-class: backends remember a checksum at ``put``
time and raise :class:`BlobCorruptedError` from ``get`` if the stored bytes
no longer match -- which is how injected corruption faults surface.
"""

from __future__ import annotations

import hashlib
from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.core.errors import (
    BlobNotFoundError,
    ProviderError,
    ProviderUnavailableError,
)


def blob_checksum(data: bytes) -> str:
    """Content checksum used for at-rest integrity verification."""
    return hashlib.sha256(data).hexdigest()


@dataclass(frozen=True)
class BlobStat:
    """Metadata returned by ``head``: size and integrity checksum."""

    key: str
    size: int
    checksum: str


class CloudProvider(ABC):
    """Abstract S3-like object store."""

    def __init__(self, name: str) -> None:
        if not name:
            raise ValueError("provider name must be non-empty")
        self.name = name

    # -- core S3-style interface ------------------------------------------

    @abstractmethod
    def put(self, key: str, data: bytes) -> None:
        """Store *data* under *key*, overwriting any previous object."""

    @abstractmethod
    def get(self, key: str) -> bytes:
        """Return the object at *key*.

        Raises :class:`BlobNotFoundError` if absent and
        :class:`BlobCorruptedError` if the stored bytes fail their
        integrity check.
        """

    @abstractmethod
    def delete(self, key: str) -> None:
        """Remove the object at *key* (raises if absent)."""

    @abstractmethod
    def keys(self) -> list[str]:
        """All keys currently stored, in unspecified order."""

    @abstractmethod
    def head(self, key: str) -> BlobStat:
        """Size/checksum metadata without transferring the payload."""

    # -- batched forms ------------------------------------------------------
    #
    # The distributor's pipelined data path stores/fetches every shard bound
    # for one provider in a single call.  The defaults below loop the
    # per-object primitives with per-item error capture, so any backend is
    # batch-capable; RemoteProvider overrides both with one MULTI_PUT /
    # MULTI_GET wire round-trip.  A whole-provider failure (e.g. transport
    # down) may instead be raised directly by an override.

    def put_many(
        self, items: list[tuple[str, bytes]]
    ) -> list[ProviderError | None]:
        """Store many objects; one outcome (``None`` = stored) per item."""
        outcomes: list[ProviderError | None] = []
        for key, data in items:
            try:
                self.put(key, data)
                outcomes.append(None)
            except ProviderError as exc:
                outcomes.append(exc)
        return outcomes

    def get_many(self, keys: list[str]) -> list["bytes | ProviderError"]:
        """Fetch many objects; each slot holds the bytes or the error."""
        outcomes: list[bytes | ProviderError] = []
        for key in keys:
            try:
                outcomes.append(self.get(key))
            except ProviderError as exc:
                outcomes.append(exc)
        return outcomes

    # Streaming variants: same per-item contract as put_many/get_many, but
    # the caller promises the window of items is bounded (one streaming
    # window's worth of shards), so implementations may frame items
    # individually instead of materializing one aggregate payload.
    # RemoteProvider overrides both with STREAM_PUT/STREAM_GET sessions;
    # for in-process backends the batch form is already zero-aggregation,
    # so delegating is exact.

    def put_stream(
        self, items: list[tuple[str, bytes]]
    ) -> list[ProviderError | None]:
        """Store one streaming window of objects; outcome per item."""
        return self.put_many(items)

    def get_stream(self, keys: list[str]) -> list["bytes | ProviderError"]:
        """Fetch one streaming window of objects; bytes or error per slot."""
        return self.get_many(keys)

    # -- conveniences -------------------------------------------------------

    def contains(self, key: str) -> bool:
        try:
            self.head(key)
            return True
        except BlobNotFoundError:
            return False
        except ProviderUnavailableError:
            raise

    @property
    def object_count(self) -> int:
        return len(self.keys())

    @property
    def stored_bytes(self) -> int:
        """Total payload bytes currently stored.

        Costs one ``keys`` listing plus O(keys) ``head`` calls against the
        backend -- on metered or remote providers that is one billed/network
        request per object, so avoid it on hot paths.
        """
        return sum(self.head(k).size for k in self.keys())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(name={self.name!r})"
