"""Storage billing (GB-month accounting, Section IV-A).

The distributor "maintains a cost level ... for each cloud provider
indicating its storage cost (cost of data stored per GB-Month)".  The meter
integrates stored bytes over simulated time so experiments can report the
dollar cost of a placement policy, and also counts request fees the way S3
bills PUT/GET operations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.privacy import CostLevel
from repro.util.clock import SimulatedClock
from repro.util.units import GiB

SECONDS_PER_MONTH = 30 * 24 * 3600.0

#: Default price schedule per cost level: (USD per GB-month,
#: USD per 1000 PUT requests, USD per 1000 GET requests).  Shaped after the
#: 2012-era S3 price ladder: cheaper providers are an order cheaper.
DEFAULT_PRICES: dict[CostLevel, tuple[float, float, float]] = {
    CostLevel.CHEAPEST: (0.010, 0.002, 0.0002),
    CostLevel.CHEAP: (0.030, 0.005, 0.0004),
    CostLevel.EXPENSIVE: (0.080, 0.010, 0.0010),
    CostLevel.PREMIUM: (0.125, 0.020, 0.0020),
}


@dataclass
class BillingMeter:
    """Accrues storage + request charges for one provider.

    ``record_bytes_delta`` must be called on every put/delete with the net
    change in stored bytes; storage cost is integrated piecewise-constant
    against the shared simulated clock.
    """

    clock: SimulatedClock
    cost_level: CostLevel
    _stored_bytes: int = 0
    _last_checkpoint: float = field(default=0.0)
    _gb_seconds: float = 0.0
    put_requests: int = 0
    get_requests: int = 0
    bytes_in: int = 0
    bytes_out: int = 0

    def __post_init__(self) -> None:
        self._last_checkpoint = self.clock.now

    def _accrue(self) -> None:
        now = self.clock.now
        elapsed = now - self._last_checkpoint
        if elapsed > 0:
            self._gb_seconds += (self._stored_bytes / GiB) * elapsed
            self._last_checkpoint = now

    def record_put(self, nbytes: int) -> None:
        self._accrue()
        self.put_requests += 1
        self.bytes_in += nbytes

    def record_get(self, nbytes: int) -> None:
        self._accrue()
        self.get_requests += 1
        self.bytes_out += nbytes

    def record_bytes_delta(self, delta: int) -> None:
        """Net change in stored bytes (positive on put, negative on delete)."""
        self._accrue()
        self._stored_bytes += delta
        if self._stored_bytes < 0:
            raise ValueError("stored byte count went negative")

    @property
    def stored_bytes(self) -> int:
        return self._stored_bytes

    @property
    def gb_months(self) -> float:
        """GB-months of storage accrued so far (up to the current clock)."""
        self._accrue()
        return self._gb_seconds / SECONDS_PER_MONTH

    def total_cost(
        self, prices: dict[CostLevel, tuple[float, float, float]] | None = None
    ) -> float:
        """Total accrued USD: storage + request fees at this cost level."""
        storage_rate, put_rate, get_rate = (prices or DEFAULT_PRICES)[self.cost_level]
        return (
            self.gb_months * storage_rate
            + (self.put_requests / 1000.0) * put_rate
            + (self.get_requests / 1000.0) * get_rate
        )
