"""TCCP-style attestation registry (Section V, citing Santos et al.).

The paper notes that combining the distributor with a Trusted Cloud
Computing Platform "ensures the privacy of cloud data in case of outsourced
storage and processing".  We model the composable piece: a registry that
records which providers run on attested nodes, which placement policies may
require for the most sensitive chunks.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass


@dataclass(frozen=True)
class AttestationRecord:
    """Evidence that a provider's node booted a trusted software stack."""

    provider: str
    measurement: str  # hash of the attested software stack
    nonce: int


class AttestationRegistry:
    """Tracks the trusted-measurement whitelist and per-provider evidence."""

    def __init__(self) -> None:
        self._trusted_measurements: set[str] = set()
        self._records: dict[str, AttestationRecord] = {}
        self._nonce = 0

    @staticmethod
    def measure(stack_description: str) -> str:
        """Deterministic measurement of a software stack description."""
        return hashlib.sha256(stack_description.encode("utf-8")).hexdigest()

    def trust_measurement(self, measurement: str) -> None:
        """Whitelist a software-stack measurement."""
        self._trusted_measurements.add(measurement)

    def attest(self, provider: str, stack_description: str) -> AttestationRecord:
        """Record a (fresh-nonce) attestation quote from *provider*."""
        self._nonce += 1
        record = AttestationRecord(
            provider=provider,
            measurement=self.measure(stack_description),
            nonce=self._nonce,
        )
        self._records[provider] = record
        return record

    def revoke(self, provider: str) -> None:
        self._records.pop(provider, None)

    def is_attested(self, provider: str) -> bool:
        """True iff the provider's latest quote matches a trusted measurement."""
        record = self._records.get(provider)
        return record is not None and record.measurement in self._trusted_measurements
