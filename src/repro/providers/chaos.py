"""``ChaosProvider``: seeded, deterministic fault injection over any backend.

The seed's :class:`FailureInjector` can only fault *simulated* providers;
the real disk and socket backends introduced with the network layer ran
fault-free, so the retry / circuit-breaker / degraded-read / failover stack
was never exercised where it matters.  ``ChaosProvider`` closes that gap:
it implements the full :class:`CloudProvider` contract over *any* inner
backend (memory, disk, remote socket) and injects faults according to a
:class:`FaultPlan` -- per-operation error probabilities, latency spikes,
detected and silent read corruption, torn write acknowledgements, and
periodic blackout windows.

Determinism is the point: the fault schedule is a pure function of the
seed and the operation sequence, so a chaos soak run is exactly
reproducible, and every injected fault is appended to :attr:`fault_log`
for post-run auditing.
"""

from __future__ import annotations

import threading
import time
from collections import Counter
from dataclasses import dataclass

from repro.core.errors import BlobCorruptedError, ProviderUnavailableError
from repro.providers.base import BlobStat, CloudProvider
from repro.util.rng import SeedLike, derive_rng


@dataclass(frozen=True)
class FaultPlan:
    """Probabilities and schedules for every supported fault kind.

    * ``error_rate`` -- any operation fails with
      :class:`ProviderUnavailableError` before reaching the backend;
    * ``partial_write_rate`` -- a ``put`` stores the bytes, then loses the
      acknowledgement (the torn-write case rollback must clean up);
    * ``corrupt_rate`` -- a ``get`` fails with :class:`BlobCorruptedError`
      (the provider noticed its own rot);
    * ``silent_corrupt_rate`` -- a ``get`` returns flipped bytes with no
      error (rot the provider did *not* notice; only end-to-end shard
      checksums catch it);
    * ``latency_rate`` / ``latency_s`` -- the operation stalls for
      ``latency_s`` wall-clock seconds before proceeding;
    * ``blackout_every`` / ``blackout_ops`` -- every ``blackout_every``
      operations, the first ``blackout_ops`` of the cycle fail as if the
      provider were dark (an outage window measured in requests, keeping
      the schedule independent of wall time);
    * ``key_prefix`` -- when non-empty, faults only *fire* for keys with
      this prefix.  The schedule still advances for every operation (the
      draws are identical either way), so narrowing the blast radius does
      not change which faults other keys would have seen -- essential for
      chaos drills that target one shard's namespace on a shared backend.
    """

    error_rate: float = 0.0
    partial_write_rate: float = 0.0
    corrupt_rate: float = 0.0
    silent_corrupt_rate: float = 0.0
    latency_rate: float = 0.0
    latency_s: float = 0.0
    blackout_every: int = 0
    blackout_ops: int = 0
    key_prefix: str = ""

    def __post_init__(self) -> None:
        for attr in (
            "error_rate",
            "partial_write_rate",
            "corrupt_rate",
            "silent_corrupt_rate",
            "latency_rate",
        ):
            value = getattr(self, attr)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{attr} must be in [0, 1], got {value}")
        if self.latency_s < 0:
            raise ValueError(f"latency_s must be >= 0, got {self.latency_s}")
        if self.blackout_every < 0 or self.blackout_ops < 0:
            raise ValueError("blackout parameters must be >= 0")
        if self.blackout_ops > self.blackout_every > 0:
            raise ValueError(
                "blackout_ops must not exceed blackout_every "
                f"({self.blackout_ops} > {self.blackout_every})"
            )

    @property
    def quiet(self) -> bool:
        """True when the plan injects nothing (conformance-mode chaos)."""
        return (
            self.error_rate
            == self.partial_write_rate
            == self.corrupt_rate
            == self.silent_corrupt_rate
            == self.latency_rate
            == 0.0
            and self.blackout_ops == 0
        )


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, for the reproducibility audit trail."""

    op_index: int
    op: str
    key: str
    kind: str  # blackout | error | corrupt | silent-corrupt | partial-write | latency


class ChaosProvider(CloudProvider):
    """Deterministic fault-injecting wrapper around any provider backend."""

    def __init__(
        self,
        inner: CloudProvider,
        plan: FaultPlan | None = None,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(inner.name)
        self.inner = inner
        self.plan = plan or FaultPlan()
        self._rng = derive_rng(seed)
        self._lock = threading.Lock()
        self.enabled = True
        self.op_index = 0
        self.fault_log: list[FaultEvent] = []

    # -- fault schedule ----------------------------------------------------

    def disable(self) -> None:
        """Stop injecting (the schedule keeps advancing deterministically)."""
        self.enabled = False

    def enable(self) -> None:
        self.enabled = True

    def fault_summary(self) -> dict[str, int]:
        """Injected fault counts by kind."""
        with self._lock:
            return dict(Counter(event.kind for event in self.fault_log))

    def _draw(
        self, op: str, key: str, *, read: bool = False, write: bool = False
    ) -> tuple[str | None, float]:
        """Advance the schedule one op; returns (fault kind | None, delay).

        The same uniform draws happen for every operation regardless of
        kind or the ``enabled`` flag, so the schedule stays a function of
        (seed, op sequence) alone.
        """
        plan = self.plan
        with self._lock:
            index = self.op_index
            self.op_index += 1
            r_error = float(self._rng.random())
            r_corrupt = float(self._rng.random())
            r_silent = float(self._rng.random())
            r_partial = float(self._rng.random())
            r_latency = float(self._rng.random())
            if not self.enabled:
                return None, 0.0
            if plan.key_prefix and not key.startswith(plan.key_prefix):
                # Out-of-scope key: the draws above already advanced the
                # schedule; just never let the fault fire.
                return None, 0.0
            fault: str | None = None
            if (
                plan.blackout_every > 0
                and index % plan.blackout_every < plan.blackout_ops
            ):
                fault = "blackout"
            elif r_error < plan.error_rate:
                fault = "error"
            elif read and r_corrupt < plan.corrupt_rate:
                fault = "corrupt"
            elif read and r_silent < plan.silent_corrupt_rate:
                fault = "silent-corrupt"
            elif write and r_partial < plan.partial_write_rate:
                fault = "partial-write"
            delay = plan.latency_s if r_latency < plan.latency_rate else 0.0
            if fault is not None:
                self.fault_log.append(FaultEvent(index, op, key, fault))
            elif delay > 0:
                self.fault_log.append(FaultEvent(index, op, key, "latency"))
            return fault, delay

    def _apply(self, fault: str | None, delay: float, op: str, key: str) -> None:
        if delay > 0:
            time.sleep(delay)
        if fault in ("blackout", "error"):
            raise ProviderUnavailableError(
                f"chaos: provider {self.name!r} injected {fault} on "
                f"{op} {key!r}"
            )

    # -- CloudProvider interface -------------------------------------------

    def put(self, key: str, data: bytes) -> None:
        fault, delay = self._draw("put", key, write=True)
        self._apply(fault, delay, "put", key)
        self.inner.put(key, data)
        if fault == "partial-write":
            # The bytes landed but the acknowledgement was lost: the caller
            # sees a failure while the object exists (torn write).
            raise ProviderUnavailableError(
                f"chaos: provider {self.name!r} lost the put ack for {key!r}"
            )

    def get(self, key: str) -> bytes:
        fault, delay = self._draw("get", key, read=True)
        self._apply(fault, delay, "get", key)
        data = self.inner.get(key)
        if fault == "corrupt":
            raise BlobCorruptedError(
                f"chaos: provider {self.name!r} injected detected rot on "
                f"{key!r}"
            )
        if fault == "silent-corrupt" and data:
            flipped = bytearray(data)
            flipped[0] ^= 0xFF
            return bytes(flipped)
        return data

    def delete(self, key: str) -> None:
        fault, delay = self._draw("delete", key)
        self._apply(fault, delay, "delete", key)
        self.inner.delete(key)

    def keys(self) -> list[str]:
        fault, delay = self._draw("keys", "*")
        self._apply(fault, delay, "keys", "*")
        return self.inner.keys()

    def head(self, key: str) -> BlobStat:
        fault, delay = self._draw("head", key)
        self._apply(fault, delay, "head", key)
        return self.inner.head(key)


def plan_from_query(query: str) -> tuple[FaultPlan, SeedLike]:
    """Parse a ``chaos+<url>?...`` query string into (plan, seed).

    Recognized keys are the :class:`FaultPlan` field names plus ``seed``::

        chaos+memory://?seed=7&error_rate=0.05&latency_rate=0.1&latency_s=0.02
    """
    fields = {
        "error_rate": float,
        "partial_write_rate": float,
        "corrupt_rate": float,
        "silent_corrupt_rate": float,
        "latency_rate": float,
        "latency_s": float,
        "blackout_every": int,
        "blackout_ops": int,
        "key_prefix": str,
    }
    kwargs: dict[str, float | int | str] = {}
    seed: SeedLike = None
    if query:
        for pair in query.split("&"):
            if not pair:
                continue
            name, sep, value = pair.partition("=")
            if not sep:
                raise ValueError(f"malformed chaos parameter {pair!r}")
            if name == "seed":
                seed = int(value)
            elif name in fields:
                kwargs[name] = fields[name](value)
            else:
                raise ValueError(f"unknown chaos parameter {name!r}")
    return FaultPlan(**kwargs), seed
