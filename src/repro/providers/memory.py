"""In-memory provider backend.

The workhorse backend for experiments: a dict of key -> (bytes, checksum)
with hooks the fault injector uses to silently lose or corrupt objects, the
way a misbehaving real provider would.
"""

from __future__ import annotations

from repro.core.errors import BlobCorruptedError, BlobNotFoundError
from repro.providers.base import BlobStat, CloudProvider, blob_checksum


class InMemoryProvider(CloudProvider):
    """Dictionary-backed object store with integrity verification."""

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self._blobs: dict[str, bytes] = {}
        self._checksums: dict[str, str] = {}

    def put(self, key: str, data: bytes) -> None:
        self._blobs[key] = bytes(data)
        self._checksums[key] = blob_checksum(data)

    def get(self, key: str) -> bytes:
        try:
            data = self._blobs[key]
        except KeyError:
            raise BlobNotFoundError(
                f"provider {self.name!r} has no object {key!r}"
            ) from None
        if blob_checksum(data) != self._checksums[key]:
            raise BlobCorruptedError(
                f"object {key!r} at provider {self.name!r} failed integrity check"
            )
        return data

    def delete(self, key: str) -> None:
        if key not in self._blobs:
            raise BlobNotFoundError(
                f"provider {self.name!r} has no object {key!r}"
            )
        del self._blobs[key]
        del self._checksums[key]

    def keys(self) -> list[str]:
        return list(self._blobs)

    def head(self, key: str) -> BlobStat:
        try:
            data = self._blobs[key]
        except KeyError:
            raise BlobNotFoundError(
                f"provider {self.name!r} has no object {key!r}"
            ) from None
        return BlobStat(key=key, size=len(data), checksum=self._checksums[key])

    # -- fault-injection hooks (used by repro.providers.failures) ----------

    def drop_blob(self, key: str) -> None:
        """Silently lose the object at *key* (disk death, bit rot...)."""
        self._blobs.pop(key, None)
        self._checksums.pop(key, None)

    def corrupt_blob(self, key: str, flip_index: int = 0) -> None:
        """Flip one byte of the stored object without updating its checksum."""
        if key not in self._blobs:
            raise BlobNotFoundError(
                f"provider {self.name!r} has no object {key!r}"
            )
        data = bytearray(self._blobs[key])
        if not data:
            # Empty payloads cannot be bit-flipped; model corruption as loss.
            self.drop_blob(key)
            return
        data[flip_index % len(data)] ^= 0xFF
        self._blobs[key] = bytes(data)
