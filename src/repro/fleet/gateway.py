"""Stateless multi-tenant gateway in front of the shard fleet.

The gateway holds no file metadata at all: only ring membership, tenant
credentials and quotas.  Any number of gateway processes over the same
membership route identically (consistent hashing), which is what lets the
metadata plane scale horizontally while each shard stays a small,
crash-consistent distributor.

Data-path requests are authenticated here (the paper's ⟨password, PL⟩
check via :class:`~repro.core.access_control.AccessController`), checked
against the tenant's quota, then forwarded to the owning shard -- which
authenticates *again* with its own synced credential copy, so a request
that somehow bypassed the gateway faces the same check twice.  Cross-shard
operations (list, fsck, stats, usage) fan out and merge.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.access_control import AccessController
from repro.core.errors import FleetError, QuotaExceededError, UnknownFileError
from repro.core.privacy import ChunkSizePolicy, PrivacyLevel
from repro.fleet.router import FleetRouter, fleet_key, validate_tenant
from repro.fleet.shard import FleetShard
from repro.health.fsck import FsckReport
from repro.obs.metrics import MetricsRegistry, get_metrics
from repro.providers.registry import ProviderRegistry
from repro.util.atomic import atomic_write_text
from repro.util.rng import SeedLike

FLEET_STATE_FILE = "fleet-state.json"
MIGRATION_JOURNAL_FILE = "migration.jsonl"


class TenantQuota:
    """Per-tenant ceilings; ``None`` means unlimited."""

    def __init__(
        self, max_bytes: int | None = None, max_files: int | None = None
    ) -> None:
        self.max_bytes = max_bytes
        self.max_files = max_files

    def to_dict(self) -> dict:
        return {"max_bytes": self.max_bytes, "max_files": self.max_files}

    @classmethod
    def from_dict(cls, data: dict) -> "TenantQuota":
        return cls(
            max_bytes=data.get("max_bytes"), max_files=data.get("max_files")
        )


class FleetGateway:
    """Routes tenant requests to DHT-owned shards; fans out the rest."""

    def __init__(
        self,
        base_registry: ProviderRegistry,
        state_dir: str | Path | None = None,
        *,
        m_bits: int = 32,
        seed: SeedLike = None,
        chunk_policy: ChunkSizePolicy | None = None,
        stripe_width: int | None = None,
        max_transport_workers: int | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.base_registry = base_registry
        self.state_dir = Path(state_dir) if state_dir is not None else None
        self.seed = seed
        self.chunk_policy = chunk_policy
        self.stripe_width = stripe_width
        self.max_transport_workers = max_transport_workers
        self.metrics = metrics if metrics is not None else get_metrics()
        self.router = FleetRouter(m_bits=m_bits, metrics=self.metrics)
        self.access = AccessController()
        self.quotas: dict[str, TenantQuota] = {}
        self.shards: dict[str, FleetShard] = {}
        if self.state_dir is not None:
            self.state_dir.mkdir(parents=True, exist_ok=True)

    # -- construction / persistence ----------------------------------------

    @classmethod
    def open(
        cls,
        base_registry: ProviderRegistry,
        state_dir: str | Path,
        **kwargs,
    ) -> "FleetGateway":
        """Reopen a persisted fleet: membership, tenants, then shard boot.

        Each shard replays its own intent journal during construction.
        Pending cross-shard migrations are NOT resumed here -- call
        :meth:`repro.fleet.rebalance.ShardRebalancer.resume` next, the way
        the CLI does.
        """
        state_path = Path(state_dir) / FLEET_STATE_FILE
        state = json.loads(state_path.read_text(encoding="utf-8"))
        gateway = cls(
            base_registry,
            state_dir,
            m_bits=int(state.get("m_bits", 32)),
            seed=state.get("seed"),
            **kwargs,
        )
        gateway.access.import_state(state.get("tenants", {}))
        gateway.quotas = {
            name: TenantQuota.from_dict(q)
            for name, q in state.get("quotas", {}).items()
        }
        for shard_id in state.get("shards", []):
            gateway._attach_shard(shard_id)
        return gateway

    def shard_state_dir(self, shard_id: str) -> Path | None:
        if self.state_dir is None:
            return None
        return self.state_dir / "shards" / shard_id

    @property
    def migration_journal_path(self) -> Path | None:
        if self.state_dir is None:
            return None
        return self.state_dir / MIGRATION_JOURNAL_FILE

    def save_state(self) -> None:
        """Persist the control plane (membership, tenants, quotas)."""
        if self.state_dir is None:
            return
        state = {
            "m_bits": self.router.ring.m_bits,
            "seed": self.seed if isinstance(self.seed, int) else None,
            "shards": sorted(self.shards),
            "tenants": self.access.export_state(),
            "quotas": {n: q.to_dict() for n, q in self.quotas.items()},
        }
        atomic_write_text(
            self.state_dir / FLEET_STATE_FILE,
            json.dumps(state, indent=2, sort_keys=True),
        )

    def save(self) -> None:
        """Persist control plane plus every shard's metadata snapshot."""
        self.save_state()
        for shard in self.shards.values():
            shard.save()

    def close(self) -> None:
        for shard in self.shards.values():
            shard.close()

    # -- shard membership --------------------------------------------------

    def _build_shard(self, shard_id: str) -> FleetShard:
        return FleetShard(
            shard_id,
            self.base_registry,
            self.shard_state_dir(shard_id),
            seed=self.seed,
            chunk_policy=self.chunk_policy,
            stripe_width=self.stripe_width,
            max_transport_workers=self.max_transport_workers,
        )

    def _attach_shard(self, shard_id: str) -> FleetShard:
        if shard_id in self.shards:
            raise FleetError(f"shard {shard_id!r} already in the fleet")
        shard = self._build_shard(shard_id)
        shard.sync_access(self.access.export_state())
        # Snapshot immediately: journal recovery purges committed chunks
        # whose client row is missing from the snapshot, so the tenant
        # roster must be durable on a shard BEFORE any data can land on it
        # (e.g. a migration that crashes right after the copy).
        shard.save()
        self.shards[shard_id] = shard
        self.router.add_shard(shard_id)
        return shard

    def add_shard(self, shard_id: str) -> FleetShard:
        """Join a shard to the ring (membership only -- no data moves).

        Use :class:`~repro.fleet.rebalance.ShardRebalancer` to join *and*
        migrate the affected key ranges on a fleet that already holds data.
        """
        shard = self._attach_shard(shard_id)
        self.save_state()
        return shard

    def detach_shard(self, shard_id: str) -> FleetShard:
        """Remove a (drained) shard from the ring and the fleet."""
        if shard_id not in self.shards:
            raise FleetError(f"no shard {shard_id!r} in the fleet")
        self.router.remove_shard(shard_id)
        shard = self.shards.pop(shard_id)
        self.save_state()
        return shard

    @property
    def shard_ids(self) -> list[str]:
        return sorted(self.shards)

    # -- tenant management -------------------------------------------------

    def _sync_tenants(self) -> None:
        state = self.access.export_state()
        for shard in self.shards.values():
            shard.sync_access(state)
            shard.save()  # roster must be durable before tenant data lands
        self.save_state()

    def register_tenant(self, tenant: str) -> None:
        validate_tenant(tenant)
        self.access.register_client(tenant)
        self._sync_tenants()

    def add_tenant_password(
        self, tenant: str, password: str, level: PrivacyLevel | int
    ) -> None:
        self.access.add_password(tenant, password, level)
        self._sync_tenants()

    def rotate_tenant_password(
        self, tenant: str, old_password: str, new_password: str
    ) -> PrivacyLevel:
        level = self.access.rotate_password(tenant, old_password, new_password)
        self._sync_tenants()
        return level

    def remove_tenant(self, tenant: str) -> None:
        """Deprovision a tenant; refuses while it still stores data."""
        usage = self.tenant_usage(tenant)
        if usage["files"]:
            raise FleetError(
                f"tenant {tenant!r} still stores {usage['files']} file(s); "
                f"remove them before deprovisioning"
            )
        self.access.remove_client(tenant)
        self.quotas.pop(tenant, None)
        self._sync_tenants()

    def set_quota(
        self,
        tenant: str,
        max_bytes: int | None = None,
        max_files: int | None = None,
    ) -> None:
        if not self.access.knows_client(tenant):
            validate_tenant(tenant)
            raise FleetError(f"unknown tenant {tenant!r}")
        self.quotas[tenant] = TenantQuota(max_bytes, max_files)
        self.save_state()

    def tenants(self) -> list[str]:
        return sorted(self.access.export_state())

    # -- routing helpers ---------------------------------------------------

    def _owner_shard(self, key: str, op: str) -> FleetShard:
        shard_id = self.router.route(key)
        self.metrics.counter("fleet_ops_total", op=op, shard=shard_id).inc()
        return self.shards[shard_id]

    def _locate(self, key: str, op: str) -> FleetShard:
        """Owner shard, falling back to a fan-out scan mid-migration.

        While a migration is in flight a file can briefly live on its old
        shard although the ring already routes to the new one; the scan
        keeps reads available through that window (and counts how often it
        was needed).
        """
        shard = self._owner_shard(key, op)
        if shard.has_file(key):
            return shard
        for other in self.shards.values():
            if other is not shard and other.has_file(key):
                self.metrics.counter("fleet_route_misses_total", op=op).inc()
                return other
        return shard  # let the owner raise its UnknownFileError

    # -- tenant data path --------------------------------------------------

    def upload_file(
        self,
        tenant: str,
        password: str,
        filename: str,
        data: bytes,
        level: PrivacyLevel | int,
        misleading_fraction: float = 0.0,
    ):
        key = fleet_key(tenant, filename)
        self.access.authenticate(tenant, password)
        self._check_quota(tenant, len(data))
        shard = self._owner_shard(key, "upload")
        for other_id, other in self.shards.items():
            if other is not shard and other.has_file(key):
                raise ValueError(
                    f"file {filename!r} of tenant {tenant!r} already exists "
                    f"(on shard {other_id!r})"
                )
        return shard.distributor.upload_file(
            tenant, password, key, data, level,
            misleading_fraction=misleading_fraction,
        )

    def get_file(self, tenant: str, password: str, filename: str) -> bytes:
        key = fleet_key(tenant, filename)
        shard = self._locate(key, "get")
        return shard.distributor.get_file(tenant, password, key)

    def update_chunk(
        self,
        tenant: str,
        password: str,
        filename: str,
        serial: int,
        new_payload: bytes,
    ) -> None:
        key = fleet_key(tenant, filename)
        shard = self._locate(key, "update")
        shard.distributor.update_chunk(tenant, password, key, serial, new_payload)

    def remove_file(self, tenant: str, password: str, filename: str) -> None:
        key = fleet_key(tenant, filename)
        shard = self._locate(key, "remove")
        shard.distributor.remove_file(tenant, password, key)

    def list_files(self, tenant: str, password: str) -> list[str]:
        """All of the tenant's visible filenames, fanned out and merged."""
        self.access.authenticate(tenant, password)
        prefix = f"{tenant}/"
        names: list[str] = []
        for shard in self.shards.values():
            for key in shard.distributor.list_files(tenant, password):
                if key.startswith(prefix):
                    names.append(key[len(prefix):])
        self.metrics.counter("fleet_ops_total", op="list", shard="*").inc()
        return sorted(names)

    # -- quotas ------------------------------------------------------------

    def tenant_usage(self, tenant: str) -> dict[str, int]:
        """Fleet-wide ``{"files": n, "bytes": n}`` for one tenant."""
        files = 0
        nbytes = 0
        for shard in self.shards.values():
            usage = shard.tenant_usage().get(tenant)
            if usage:
                files += usage["files"]
                nbytes += usage["bytes"]
        self.metrics.gauge("fleet_tenant_used_bytes", tenant=tenant).set(nbytes)
        self.metrics.gauge("fleet_tenant_used_files", tenant=tenant).set(files)
        return {"files": files, "bytes": nbytes}

    def _check_quota(self, tenant: str, incoming_bytes: int) -> None:
        quota = self.quotas.get(tenant)
        if quota is None or (quota.max_bytes is None and quota.max_files is None):
            return
        usage = self.tenant_usage(tenant)
        over_bytes = (
            quota.max_bytes is not None
            and usage["bytes"] + incoming_bytes > quota.max_bytes
        )
        over_files = (
            quota.max_files is not None and usage["files"] + 1 > quota.max_files
        )
        if over_bytes or over_files:
            self.metrics.counter(
                "fleet_quota_rejections_total", tenant=tenant
            ).inc()
            what = "byte" if over_bytes else "file"
            raise QuotaExceededError(
                f"tenant {tenant!r} would exceed its {what} quota "
                f"(used {usage['bytes']} B in {usage['files']} files)"
            )

    # -- fleet-wide fan-out ------------------------------------------------

    def fsck(self, repair: bool = False) -> dict[str, FsckReport]:
        """Run the cross-audit on every shard."""
        return {
            shard_id: shard.fsck(repair=repair)
            for shard_id, shard in sorted(self.shards.items())
        }

    def merged_metrics(self) -> MetricsRegistry:
        """Gateway metrics plus every shard's registry, merged."""
        merged = MetricsRegistry()
        merged.import_state(self.metrics.export_state())
        for shard in self.shards.values():
            merged.import_state(shard.metrics.export_state())
        return merged

    def shard_rows(self) -> list[dict]:
        """Per-shard status for ``repro shards``."""
        rows = []
        for shard_id in sorted(self.shards):
            shard = self.shards[shard_id]
            stats = shard.stats()
            rows.append(
                {
                    "shard": shard_id,
                    "node_id": self.router.ring.node_id_for(shard_id),
                    "files": stats["files"],
                    "chunks": stats["chunks"],
                    "tenants": stats["tenants"],
                }
            )
        return rows

    def status(self) -> dict:
        """Fleet-level view: membership, shard stats, tenant usage."""
        usage = {
            tenant: dict(
                self.tenant_usage(tenant),
                quota=self.quotas.get(tenant, TenantQuota()).to_dict(),
            )
            for tenant in self.tenants()
        }
        return {
            "m_bits": self.router.ring.m_bits,
            "shards": self.shard_rows(),
            "tenants": usage,
        }
