"""Stateless multi-tenant gateway in front of the shard fleet.

The gateway holds no file metadata at all: only ring membership, tenant
credentials and quotas.  Any number of gateway processes over the same
membership route identically (consistent hashing), which is what lets the
metadata plane scale horizontally while each shard stays a small,
crash-consistent distributor.

Data-path requests are authenticated here (the paper's ⟨password, PL⟩
check via :class:`~repro.core.access_control.AccessController`), checked
against the tenant's quota, then forwarded to the owning shard -- which
authenticates *again* with its own synced credential copy, so a request
that somehow bypassed the gateway faces the same check twice.  Cross-shard
operations (list, fsck, stats, usage) fan out and merge.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.core.access_control import AccessController
from repro.core.errors import (
    DeadlineExceeded,
    DistributorUnavailableError,
    FleetError,
    PlacementError,
    ProviderError,
    QuotaExceededError,
    ReconstructionError,
    ShardUnavailable,
    UnknownFileError,
)
from repro.core.privacy import ChunkSizePolicy, PrivacyLevel
from repro.fleet.health import ShardHealthTracker
from repro.fleet.router import FleetRouter, fleet_key, validate_tenant
from repro.fleet.shard import FleetShard
from repro.health.fsck import FsckReport
from repro.health.monitor import HealthState
from repro.net.resilience import LatencyTracker, hedged_call
from repro.obs.metrics import MetricsRegistry, get_metrics
from repro.providers.registry import ProviderRegistry
from repro.util.atomic import atomic_write_text
from repro.util.deadline import current_deadline, deadline_scope
from repro.util.rng import SeedLike

#: Exception types that count as *shard* failure evidence: the shard's data
#: path (providers, transport, reconstruction, placement) misbehaved.  A
#: PlacementError counts because a shard whose own health monitor has
#: condemned too many providers to place a write is exactly as unavailable
#: as one whose puts fail outright.  Auth, quota and unknown-file verdicts
#: are correct answers from a healthy shard, and ``DeadlineExceeded`` --
#: though a ``ProviderError`` subclass -- is carved out by
#: ``_record_shard_outcome`` because an expired caller budget says nothing
#: about the shard.
SHARD_FAILURE_ERRORS = (
    ProviderError,
    ReconstructionError,
    DistributorUnavailableError,
    PlacementError,
)

#: Hedge delay used until enough read latencies have been observed to
#: derive a p95.
DEFAULT_HEDGE_DELAY = 0.05

FLEET_STATE_FILE = "fleet-state.json"
MIGRATION_JOURNAL_FILE = "migration.jsonl"


class TenantQuota:
    """Per-tenant ceilings; ``None`` means unlimited."""

    def __init__(
        self, max_bytes: int | None = None, max_files: int | None = None
    ) -> None:
        self.max_bytes = max_bytes
        self.max_files = max_files

    def to_dict(self) -> dict:
        return {"max_bytes": self.max_bytes, "max_files": self.max_files}

    @classmethod
    def from_dict(cls, data: dict) -> "TenantQuota":
        return cls(
            max_bytes=data.get("max_bytes"), max_files=data.get("max_files")
        )


class FleetGateway:
    """Routes tenant requests to DHT-owned shards; fans out the rest."""

    def __init__(
        self,
        base_registry: ProviderRegistry,
        state_dir: str | Path | None = None,
        *,
        m_bits: int = 32,
        seed: SeedLike = None,
        chunk_policy: ChunkSizePolicy | None = None,
        stripe_width: int | None = None,
        max_transport_workers: int | None = None,
        pipelined: bool = True,
        metrics: MetricsRegistry | None = None,
        shard_health: ShardHealthTracker | None = None,
        hedge_delay: float | None = None,
        hedge_reads: bool = True,
    ) -> None:
        self.base_registry = base_registry
        self.state_dir = Path(state_dir) if state_dir is not None else None
        self.seed = seed
        self.chunk_policy = chunk_policy
        self.stripe_width = stripe_width
        self.max_transport_workers = max_transport_workers
        self.pipelined = pipelined
        self.metrics = metrics if metrics is not None else get_metrics()
        self.router = FleetRouter(m_bits=m_bits, metrics=self.metrics)
        self.access = AccessController()
        self.quotas: dict[str, TenantQuota] = {}
        self.shards: dict[str, FleetShard] = {}
        # Degraded fleet mode: per-shard verdicts from live data-path
        # outcomes; writes to a degraded shard fail fast, reads fan out.
        self.shard_health = (
            shard_health
            if shard_health is not None
            else ShardHealthTracker(metrics=self.metrics)
        )
        # Hedged reads: a fixed override, or a p95 derived from recent
        # read latencies once enough samples exist.
        self.hedge_reads = hedge_reads
        self.hedge_delay = hedge_delay
        self._read_latency = LatencyTracker()
        if self.state_dir is not None:
            self.state_dir.mkdir(parents=True, exist_ok=True)

    # -- construction / persistence ----------------------------------------

    @classmethod
    def open(
        cls,
        base_registry: ProviderRegistry,
        state_dir: str | Path,
        **kwargs,
    ) -> "FleetGateway":
        """Reopen a persisted fleet: membership, tenants, then shard boot.

        Each shard replays its own intent journal during construction.
        Pending cross-shard migrations are NOT resumed here -- call
        :meth:`repro.fleet.rebalance.ShardRebalancer.resume` next, the way
        the CLI does.
        """
        state_path = Path(state_dir) / FLEET_STATE_FILE
        state = json.loads(state_path.read_text(encoding="utf-8"))
        gateway = cls(
            base_registry,
            state_dir,
            m_bits=int(state.get("m_bits", 32)),
            seed=state.get("seed"),
            **kwargs,
        )
        gateway.access.import_state(state.get("tenants", {}))
        gateway.quotas = {
            name: TenantQuota.from_dict(q)
            for name, q in state.get("quotas", {}).items()
        }
        for shard_id in state.get("shards", []):
            gateway._attach_shard(shard_id)
        return gateway

    def shard_state_dir(self, shard_id: str) -> Path | None:
        if self.state_dir is None:
            return None
        return self.state_dir / "shards" / shard_id

    @property
    def migration_journal_path(self) -> Path | None:
        if self.state_dir is None:
            return None
        return self.state_dir / MIGRATION_JOURNAL_FILE

    def save_state(self) -> None:
        """Persist the control plane (membership, tenants, quotas)."""
        if self.state_dir is None:
            return
        state = {
            "m_bits": self.router.ring.m_bits,
            "seed": self.seed if isinstance(self.seed, int) else None,
            "shards": sorted(self.shards),
            "tenants": self.access.export_state(),
            "quotas": {n: q.to_dict() for n, q in self.quotas.items()},
        }
        atomic_write_text(
            self.state_dir / FLEET_STATE_FILE,
            json.dumps(state, indent=2, sort_keys=True),
        )

    def save(self) -> None:
        """Persist control plane plus every shard's metadata snapshot."""
        self.save_state()
        for shard in self.shards.values():
            shard.save()

    def close(self) -> None:
        for shard in self.shards.values():
            shard.close()

    # -- shard membership --------------------------------------------------

    def _build_shard(self, shard_id: str) -> FleetShard:
        return FleetShard(
            shard_id,
            self.base_registry,
            self.shard_state_dir(shard_id),
            seed=self.seed,
            chunk_policy=self.chunk_policy,
            stripe_width=self.stripe_width,
            max_transport_workers=self.max_transport_workers,
            pipelined=self.pipelined,
        )

    def _attach_shard(self, shard_id: str) -> FleetShard:
        if shard_id in self.shards:
            raise FleetError(f"shard {shard_id!r} already in the fleet")
        shard = self._build_shard(shard_id)
        shard.sync_access(self.access.export_state())
        # Snapshot immediately: journal recovery purges committed chunks
        # whose client row is missing from the snapshot, so the tenant
        # roster must be durable on a shard BEFORE any data can land on it
        # (e.g. a migration that crashes right after the copy).
        shard.save()
        self.shards[shard_id] = shard
        self.router.add_shard(shard_id)
        return shard

    def add_shard(self, shard_id: str) -> FleetShard:
        """Join a shard to the ring (membership only -- no data moves).

        Use :class:`~repro.fleet.rebalance.ShardRebalancer` to join *and*
        migrate the affected key ranges on a fleet that already holds data.
        """
        shard = self._attach_shard(shard_id)
        self.save_state()
        return shard

    def detach_shard(self, shard_id: str) -> FleetShard:
        """Remove a (drained) shard from the ring and the fleet."""
        if shard_id not in self.shards:
            raise FleetError(f"no shard {shard_id!r} in the fleet")
        self.router.remove_shard(shard_id)
        shard = self.shards.pop(shard_id)
        self.save_state()
        return shard

    @property
    def shard_ids(self) -> list[str]:
        return sorted(self.shards)

    # -- tenant management -------------------------------------------------

    def _sync_tenants(self) -> None:
        state = self.access.export_state()
        for shard in self.shards.values():
            shard.sync_access(state)
            shard.save()  # roster must be durable before tenant data lands
        self.save_state()

    def register_tenant(self, tenant: str) -> None:
        validate_tenant(tenant)
        self.access.register_client(tenant)
        self._sync_tenants()

    def add_tenant_password(
        self, tenant: str, password: str, level: PrivacyLevel | int
    ) -> None:
        self.access.add_password(tenant, password, level)
        self._sync_tenants()

    def rotate_tenant_password(
        self, tenant: str, old_password: str, new_password: str
    ) -> PrivacyLevel:
        level = self.access.rotate_password(tenant, old_password, new_password)
        self._sync_tenants()
        return level

    def remove_tenant(self, tenant: str) -> None:
        """Deprovision a tenant; refuses while it still stores data."""
        usage = self.tenant_usage(tenant)
        if usage["files"]:
            raise FleetError(
                f"tenant {tenant!r} still stores {usage['files']} file(s); "
                f"remove them before deprovisioning"
            )
        self.access.remove_client(tenant)
        self.quotas.pop(tenant, None)
        self._sync_tenants()

    def set_quota(
        self,
        tenant: str,
        max_bytes: int | None = None,
        max_files: int | None = None,
    ) -> None:
        if not self.access.knows_client(tenant):
            validate_tenant(tenant)
            raise FleetError(f"unknown tenant {tenant!r}")
        self.quotas[tenant] = TenantQuota(max_bytes, max_files)
        self.save_state()

    def tenants(self) -> list[str]:
        return sorted(self.access.export_state())

    # -- routing helpers ---------------------------------------------------

    def _owner_shard(self, key: str, op: str) -> FleetShard:
        shard_id = self.router.route(key)
        self.metrics.counter("fleet_ops_total", op=op, shard=shard_id).inc()
        return self.shards[shard_id]

    def _locate(self, key: str, op: str) -> FleetShard:
        """Owner shard, falling back to a fan-out scan mid-migration.

        While a migration is in flight a file can briefly live on its old
        shard although the ring already routes to the new one; the scan
        keeps reads available through that window (and counts how often it
        was needed).
        """
        shard = self._owner_shard(key, op)
        if shard.has_file(key):
            return shard
        for other in self.shards.values():
            if other is not shard and other.has_file(key):
                self.metrics.counter("fleet_route_misses_total", op=op).inc()
                return other
        return shard  # let the owner raise its UnknownFileError

    def _holders(self, key: str, op: str) -> list[FleetShard]:
        """Every shard holding *key*, owner first; ``[owner]`` if none do.

        More than one holder exists only in the copy->verify->remove window
        of a migration -- exactly when a hedged read has somewhere to go.
        When the first-choice holder is degraded and another holder exists,
        the healthy one is promoted to primary (degraded-mode read routing).
        """
        owner = self._owner_shard(key, op)
        holders = [owner] if owner.has_file(key) else []
        for other in self.shards.values():
            if other is not owner and other.has_file(key):
                if not holders:
                    self.metrics.counter(
                        "fleet_route_misses_total", op=op
                    ).inc()
                holders.append(other)
        if not holders:
            return [owner]  # let the owner raise its UnknownFileError
        if (
            len(holders) > 1
            and self.shard_health.state(holders[0].shard_id)
            is not HealthState.HEALTHY
        ):
            for i, shard in enumerate(holders[1:], start=1):
                if (
                    self.shard_health.state(shard.shard_id)
                    is HealthState.HEALTHY
                ):
                    self.metrics.counter(
                        "fleet_degraded_reads_total",
                        shard=holders[0].shard_id,
                    ).inc()
                    holders[0], holders[i] = holders[i], holders[0]
                    break
        return holders

    # -- degraded fleet mode ------------------------------------------------

    def _admit_write(self, shard: FleetShard, op: str) -> None:
        """Fail fast (typed) instead of timing out against a sick shard."""
        if self.shard_health.allow_write(shard.shard_id):
            return
        state = self.shard_health.state(shard.shard_id)
        self.metrics.counter(
            "fleet_writes_failed_fast_total", shard=shard.shard_id, op=op
        ).inc()
        raise ShardUnavailable(
            f"shard {shard.shard_id!r} is {state.value}; {op} refused "
            f"(reads stay available via fan-out)",
            retry_after=self.shard_health.retry_interval,
        )

    def _record_shard_outcome(self, shard: FleetShard, exc: Exception | None) -> None:
        """Fold one data-path outcome into the shard's health record.

        ``DeadlineExceeded`` is excluded even though it subclasses
        ``ProviderError``: an expired caller budget is the caller's
        verdict, not provider evidence -- a client issuing tiny deadlines
        must not be able to mark a healthy shard DOWN for everyone.
        """
        if exc is None:
            self.shard_health.record_success(shard.shard_id)
        elif isinstance(exc, SHARD_FAILURE_ERRORS) and not isinstance(
            exc, DeadlineExceeded
        ):
            self.shard_health.record_failure(shard.shard_id)

    def shard_health_states(self) -> dict[str, str]:
        """``shard_id -> verdict`` for every shard (HEALTHY when unseen)."""
        return {
            shard_id: self.shard_health.state(shard_id).value
            for shard_id in sorted(self.shards)
        }

    # -- tenant data path --------------------------------------------------

    def upload_file(
        self,
        tenant: str,
        password: str,
        filename: str,
        data: bytes,
        level: PrivacyLevel | int,
        misleading_fraction: float = 0.0,
        codec: str | None = None,
    ):
        key = fleet_key(tenant, filename)
        self.access.authenticate(tenant, password)
        self._check_quota(tenant, len(data))
        shard = self._owner_shard(key, "upload")
        self._admit_write(shard, "upload")
        for other_id, other in self.shards.items():
            if other is not shard and other.has_file(key):
                raise ValueError(
                    f"file {filename!r} of tenant {tenant!r} already exists "
                    f"(on shard {other_id!r})"
                )
        try:
            receipt = shard.distributor.upload_file(
                tenant, password, key, data, level,
                codec=codec,
                misleading_fraction=misleading_fraction,
            )
        except Exception as exc:
            self._record_shard_outcome(shard, exc)
            raise
        self._record_shard_outcome(shard, None)
        return receipt

    def get_file(self, tenant: str, password: str, filename: str) -> bytes:
        key = fleet_key(tenant, filename)
        holders = self._holders(key, "get")
        t0 = time.perf_counter()
        if len(holders) == 1 or not self.hedge_reads:
            data = self._read_from(holders[0], tenant, password, key)
        else:
            data = self._hedged_read(holders, tenant, password, key)
        self._read_latency.observe(time.perf_counter() - t0)
        return data

    def _read_from(
        self, shard: FleetShard, tenant: str, password: str, key: str
    ) -> bytes:
        try:
            data = shard.distributor.get_file(tenant, password, key)
        except Exception as exc:
            self._record_shard_outcome(shard, exc)
            raise
        self._record_shard_outcome(shard, None)
        return data

    def _hedged_read(
        self, holders: list[FleetShard], tenant: str, password: str, key: str
    ) -> bytes:
        """Race the primary holder against a backup after a p95 delay.

        Only reachable mid-migration, when two shards hold the file.  The
        hedge fires once the primary is slower than the fleet's recent p95
        read latency (or the configured fixed delay); first response wins
        and the loser's outcome is discarded.  The ambient deadline is
        re-entered inside each thunk because hedge threads are new threads.
        """
        deadline = current_deadline()

        def read_thunk(shard: FleetShard):
            def thunk() -> bytes:
                with deadline_scope(deadline):
                    return self._read_from(shard, tenant, password, key)

            return thunk

        delay = (
            self.hedge_delay
            if self.hedge_delay is not None
            else self._read_latency.percentile(95.0, DEFAULT_HEDGE_DELAY)
        )
        primary, backup = holders[0], holders[1]
        return hedged_call(
            read_thunk(primary),
            read_thunk(backup),
            delay,
            on_hedge=lambda: self.metrics.counter(
                "fleet_hedged_reads_total", shard=backup.shard_id
            ).inc(),
        )

    def update_chunk(
        self,
        tenant: str,
        password: str,
        filename: str,
        serial: int,
        new_payload: bytes,
    ) -> None:
        key = fleet_key(tenant, filename)
        shard = self._locate(key, "update")
        self._admit_write(shard, "update")
        try:
            shard.distributor.update_chunk(
                tenant, password, key, serial, new_payload
            )
        except Exception as exc:
            self._record_shard_outcome(shard, exc)
            raise
        self._record_shard_outcome(shard, None)

    def remove_file(self, tenant: str, password: str, filename: str) -> None:
        # Removal is deliberately NOT gated by _admit_write: a degraded
        # fleet must still let tenants shed data (it frees the very
        # resources that may be causing the degradation), and a failed
        # remove is evidence like any other write.
        key = fleet_key(tenant, filename)
        shard = self._locate(key, "remove")
        try:
            shard.distributor.remove_file(tenant, password, key)
        except Exception as exc:
            self._record_shard_outcome(shard, exc)
            raise
        self._record_shard_outcome(shard, None)

    def list_files(self, tenant: str, password: str) -> list[str]:
        """All of the tenant's visible filenames, fanned out and merged."""
        self.access.authenticate(tenant, password)
        prefix = f"{tenant}/"
        names: list[str] = []
        for shard in self.shards.values():
            for key in shard.distributor.list_files(tenant, password):
                if key.startswith(prefix):
                    names.append(key[len(prefix):])
        self.metrics.counter("fleet_ops_total", op="list", shard="*").inc()
        return sorted(names)

    # -- quotas ------------------------------------------------------------

    def tenant_usage(self, tenant: str) -> dict[str, int]:
        """Fleet-wide ``{"files": n, "bytes": n}`` for one tenant."""
        files = 0
        nbytes = 0
        for shard in self.shards.values():
            usage = shard.tenant_usage().get(tenant)
            if usage:
                files += usage["files"]
                nbytes += usage["bytes"]
        self.metrics.gauge("fleet_tenant_used_bytes", tenant=tenant).set(nbytes)
        self.metrics.gauge("fleet_tenant_used_files", tenant=tenant).set(files)
        return {"files": files, "bytes": nbytes}

    def _check_quota(self, tenant: str, incoming_bytes: int) -> None:
        quota = self.quotas.get(tenant)
        if quota is None or (quota.max_bytes is None and quota.max_files is None):
            return
        usage = self.tenant_usage(tenant)
        over_bytes = (
            quota.max_bytes is not None
            and usage["bytes"] + incoming_bytes > quota.max_bytes
        )
        over_files = (
            quota.max_files is not None and usage["files"] + 1 > quota.max_files
        )
        if over_bytes or over_files:
            self.metrics.counter(
                "fleet_quota_rejections_total", tenant=tenant
            ).inc()
            what = "byte" if over_bytes else "file"
            raise QuotaExceededError(
                f"tenant {tenant!r} would exceed its {what} quota "
                f"(used {usage['bytes']} B in {usage['files']} files)"
            )

    # -- fleet-wide fan-out ------------------------------------------------

    def fsck(self, repair: bool = False) -> dict[str, FsckReport]:
        """Run the cross-audit on every shard."""
        return {
            shard_id: shard.fsck(repair=repair)
            for shard_id, shard in sorted(self.shards.items())
        }

    def merged_metrics(self) -> MetricsRegistry:
        """Gateway metrics plus every shard's registry, merged."""
        merged = MetricsRegistry()
        merged.import_state(self.metrics.export_state())
        for shard in self.shards.values():
            merged.import_state(shard.metrics.export_state())
        return merged

    def shard_rows(self) -> list[dict]:
        """Per-shard status for ``repro shards``."""
        rows = []
        for shard_id in sorted(self.shards):
            shard = self.shards[shard_id]
            stats = shard.stats()
            rows.append(
                {
                    "shard": shard_id,
                    "node_id": self.router.ring.node_id_for(shard_id),
                    "files": stats["files"],
                    "chunks": stats["chunks"],
                    "tenants": stats["tenants"],
                    "health": self.shard_health.state(shard_id).value,
                }
            )
        return rows

    def status(self) -> dict:
        """Fleet-level view: membership, shard stats, tenant usage."""
        usage = {
            tenant: dict(
                self.tenant_usage(tenant),
                quota=self.quotas.get(tenant, TenantQuota()).to_dict(),
            )
            for tenant in self.tenants()
        }
        return {
            "m_bits": self.router.ring.m_bits,
            "shards": self.shard_rows(),
            "tenants": usage,
        }
