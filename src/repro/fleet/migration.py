"""Write-ahead journal for cross-shard migrations.

Ring membership changes move whole *files* between shards; a crash in the
middle must not lose a file or leave it double-counted.  The fleet keeps a
dedicated append-only journal (separate from the per-shard intent
journals, which cover the chunk-level work inside each shard):

``plan``
    The full move list, durable before the first byte moves.
``done``
    One move finished: the file is live at the destination and gone from
    the source.
``complete``
    Every planned move is done; the migration id retires.

Replay pairs plans with their done/complete records.  A migration with a
plan but no complete is *pending*: resume re-walks its remaining moves,
deciding per file from where the copies actually are (source only →
re-copy; both → finish the source removal; destination only → just mark
done).  Every step is idempotent, so crashing during resume and resuming
again converges.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field
from pathlib import Path

from repro.util.atomic import fsync_dir


@dataclass(frozen=True)
class PlannedMove:
    """One file's migration assignment."""

    key: str  # fleet key: "tenant/filename"
    src: str  # source shard id
    dst: str  # destination shard id


@dataclass
class PendingMigration:
    """A planned migration that has not recorded ``complete`` yet."""

    migration: int
    reason: str
    moves: list[PlannedMove] = field(default_factory=list)
    done: set[str] = field(default_factory=set)

    @property
    def remaining(self) -> list[PlannedMove]:
        return [m for m in self.moves if m.key not in self.done]


class MigrationJournal:
    """Append-only, fsynced journal of fleet migrations."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._lock = threading.Lock()
        self._trim_torn_tail()
        # Ids must never be reused: a completed migration's ``complete``
        # record would retroactively swallow a new plan carrying the same
        # id, so the counter advances past every id ever seen, not just
        # the pending ones.
        _, max_id = self._scan()
        self._next_id = max_id + 1

    def _trim_torn_tail(self) -> None:
        try:
            raw = self.path.read_bytes()
        except FileNotFoundError:
            return
        if not raw or raw.endswith(b"\n"):
            return
        keep = raw.rfind(b"\n") + 1
        with open(self.path, "rb+") as fh:
            fh.truncate(keep)
            fh.flush()
            os.fsync(fh.fileno())

    def _append(self, record: dict) -> None:
        line = (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")
        with self._lock:
            created = not self.path.exists()
            fd = os.open(
                str(self.path), os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
            )
            try:
                os.write(fd, line)
                os.fsync(fd)
            finally:
                os.close(fd)
            if created:
                fsync_dir(self.path.parent)

    # -- writing -----------------------------------------------------------

    def plan(self, moves: list[PlannedMove], reason: str) -> int:
        """Record a migration plan; returns its id once durable."""
        migration = self._next_id
        self._next_id += 1
        self._append(
            {
                "type": "plan",
                "migration": migration,
                "reason": reason,
                "moves": [
                    {"key": m.key, "src": m.src, "dst": m.dst} for m in moves
                ],
            }
        )
        return migration

    def mark_done(self, migration: int, key: str) -> None:
        self._append({"type": "done", "migration": migration, "key": key})

    def complete(self, migration: int) -> None:
        self._append({"type": "complete", "migration": migration})

    # -- reading -----------------------------------------------------------

    def _scan(self) -> tuple[list[PendingMigration], int]:
        """(migrations still pending, highest id ever planned).

        Records are applied in stream order, so a ``complete`` retires
        only the plan that preceded it.  A torn trailing line (crash
        mid-append) is skipped, matching the intent journal's recovery
        semantics.
        """
        try:
            raw = self.path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return [], 0
        migrations: dict[int, PendingMigration] = {}
        max_id = 0
        for line in raw.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn record from a crash mid-append
            kind = record.get("type")
            mid = int(record.get("migration", 0))
            max_id = max(max_id, mid)
            if kind == "plan":
                migrations[mid] = PendingMigration(
                    migration=mid,
                    reason=str(record.get("reason", "")),
                    moves=[
                        PlannedMove(m["key"], m["src"], m["dst"])
                        for m in record.get("moves", [])
                    ],
                )
            elif kind == "done" and mid in migrations:
                migrations[mid].done.add(record["key"])
            elif kind == "complete":
                migrations.pop(mid, None)
        return list(migrations.values()), max_id

    def pending(self) -> list[PendingMigration]:
        """Planned-but-incomplete migrations, oldest first."""
        return sorted(self._scan()[0], key=lambda p: p.migration)
