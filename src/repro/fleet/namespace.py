"""Per-shard provider key namespacing.

Every shard runs a full :class:`~repro.core.distributor.CloudDataDistributor`
with its own :class:`~repro.util.virtual_ids.VirtualIdAllocator`, so two
shards sharing one physical provider fleet would collide on object keys
(``shard_key(vid, i)`` is only unique per allocator).  The fix is a
transparent key prefix: shard ``s0`` stores ``V123:0`` as
``fleet/s0/V123:0``.  :class:`NamespacedProvider` applies the prefix on
every write/read/delete and strips it again in listings, so the
distributor, its intent-journal recovery, and ``repro fsck`` all keep
seeing the keys they wrote -- while the physical store keeps the shards
disjoint.
"""

from __future__ import annotations

from repro.providers.base import BlobStat, CloudProvider
from repro.providers.registry import ProviderRegistry


class NamespacedProvider(CloudProvider):
    """A provider view that confines all keys under ``fleet/<namespace>/``."""

    def __init__(self, inner: CloudProvider, namespace: str) -> None:
        if "/" in namespace or not namespace:
            raise ValueError(f"namespace must be a non-empty path segment, got {namespace!r}")
        super().__init__(inner.name)
        self.inner = inner
        self.namespace = namespace
        self._prefix = f"fleet/{namespace}/"

    # -- key mapping -------------------------------------------------------

    def _outer(self, key: str) -> str:
        return self._prefix + key

    def _is_ours(self, outer_key: str) -> bool:
        return outer_key.startswith(self._prefix)

    def _logical(self, outer_key: str) -> str:
        return outer_key[len(self._prefix):]

    # -- CloudProvider interface -------------------------------------------

    def put(self, key: str, data: bytes) -> None:
        self.inner.put(self._outer(key), data)

    def get(self, key: str) -> bytes:
        return self.inner.get(self._outer(key))

    def delete(self, key: str) -> None:
        self.inner.delete(self._outer(key))

    def keys(self) -> list[str]:
        return [
            self._logical(k) for k in self.inner.keys() if self._is_ours(k)
        ]

    def head(self, key: str) -> BlobStat:
        stat = self.inner.head(self._outer(key))
        return BlobStat(key=key, size=stat.size, checksum=stat.checksum)

    # -- batched ops: preserve the inner provider's batching ----------------

    def put_many(self, items: list[tuple[str, bytes]]) -> list:
        return self.inner.put_many([(self._outer(k), v) for k, v in items])

    def get_many(self, keys: list[str]) -> list:
        return self.inner.get_many([self._outer(k) for k in keys])

    def contains(self, key: str) -> bool:
        return self.inner.contains(self._outer(key))

    # -- passthroughs the distributor introspects ---------------------------

    @property
    def available(self) -> bool:
        return getattr(self.inner, "available", True)

    @property
    def meter(self):
        """The physical provider's billing meter (or None).

        Capacity accounting is a property of the underlying store: all
        shards writing to one provider draw down the same capacity, so the
        meter is deliberately NOT namespaced.
        """
        return getattr(self.inner, "meter", None)


def shard_registry(base: ProviderRegistry, shard_id: str) -> ProviderRegistry:
    """A shard-private registry wrapping every provider of *base*.

    Privacy/cost/region/capacity metadata carries over untouched -- a
    shard makes the same placement decisions the monolith would, it just
    writes under its own key prefix.  The attestation registry is shared
    (attestation is a property of the physical provider, not the view).
    """
    registry = ProviderRegistry(attestation=base.attestation)
    for entry in base.all():
        registry.register(
            NamespacedProvider(entry.provider, shard_id),
            entry.privacy_level,
            entry.cost_level,
            region=entry.region,
            capacity_bytes=entry.capacity_bytes,
        )
    return registry
