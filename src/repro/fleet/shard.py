"""One metadata shard: a full distributor scoped to a key range.

A :class:`FleetShard` owns everything the monolithic deployment owned --
chunk table, client table, write-ahead intent journal, metadata snapshot,
metrics registry -- but sees the shared provider fleet only through a
:class:`~repro.fleet.namespace.NamespacedProvider` view keyed by its shard
id, and stores only the tenant files whose fleet key hashes into its ring
range.  Boot follows the same durability discipline as the CLI: load the
metadata snapshot, replay the intent journal, re-snapshot, checkpoint.
"""

from __future__ import annotations

from pathlib import Path

from repro.core import chunking
from repro.core.distributor import CloudDataDistributor
from repro.core.journal import IntentJournal, RecoveryReport, recover_from_journal
from repro.core.persistence import load_metadata, save_metadata
from repro.core.privacy import ChunkSizePolicy, PrivacyLevel
from repro.fleet.namespace import shard_registry
from repro.fleet.router import split_fleet_key
from repro.health.fsck import FsckReport, run_fsck
from repro.obs.metrics import MetricsRegistry
from repro.providers.registry import ProviderRegistry
from repro.dht.hashing import stable_hash
from repro.util.rng import SeedLike, spawn_seeds

METADATA_FILE = "metadata.json"
JOURNAL_FILE = "journal.jsonl"


def _shard_seed(fleet_seed: SeedLike, shard_id: str) -> int:
    """A per-shard seed derived deterministically from the fleet seed.

    Folding in the shard id keeps sibling shards' placement/rng streams
    independent while the whole fleet stays reproducible from one seed.
    """
    base = spawn_seeds(fleet_seed, 1)[0]
    return (base ^ stable_hash(f"fleet-shard/{shard_id}", 63)) & ((1 << 63) - 1)


class FleetShard:
    """A distributor shard plus its durability and telemetry state."""

    def __init__(
        self,
        shard_id: str,
        base_registry: ProviderRegistry,
        state_dir: str | Path | None = None,
        *,
        seed: SeedLike = None,
        chunk_policy: ChunkSizePolicy | None = None,
        stripe_width: int | None = None,
        max_transport_workers: int | None = None,
        pipelined: bool = True,
    ) -> None:
        if "/" in shard_id or not shard_id:
            raise ValueError(f"shard id must be a non-empty path segment, got {shard_id!r}")
        self.shard_id = shard_id
        self.state_dir = Path(state_dir) if state_dir is not None else None
        self.metrics = MetricsRegistry()
        self.registry = shard_registry(base_registry, shard_id)

        journal = None
        if self.state_dir is not None:
            self.state_dir.mkdir(parents=True, exist_ok=True)
            journal = IntentJournal(self.state_dir / JOURNAL_FILE)
        self.journal = journal
        self.distributor = CloudDataDistributor(
            self.registry,
            chunk_policy=chunk_policy,
            stripe_width=stripe_width,
            seed=_shard_seed(seed, shard_id),
            max_transport_workers=max_transport_workers,
            pipelined=pipelined,
            metrics=self.metrics,
            journal=journal,
        )
        self.recovery: RecoveryReport | None = None
        if self.state_dir is not None:
            meta = self.state_dir / METADATA_FILE
            if meta.exists():
                load_metadata(self.distributor, meta)
            self.recovery = recover_from_journal(self.distributor, journal)
            self.save()

    # -- durability --------------------------------------------------------

    def save(self) -> None:
        """Snapshot metadata and checkpoint the journal (no-op in-memory)."""
        if self.state_dir is None:
            return
        save_metadata(self.distributor, self.state_dir / METADATA_FILE)
        self.journal.checkpoint()

    def fsck(self, repair: bool = False) -> FsckReport:
        return run_fsck(self.distributor, repair=repair)

    def close(self) -> None:
        self.distributor.close()

    # -- tenant state ------------------------------------------------------

    def sync_access(self, access_state: dict) -> None:
        """Install the gateway's credential snapshot on this shard.

        Every shard can then authenticate every tenant locally (defense in
        depth: a request that somehow bypassed the gateway still faces the
        same password check at the shard).  Client-table entries are
        created for tenants this shard has not seen yet, and the display
        password-level list is rebuilt from the snapshot.
        """
        d = self.distributor
        with d.op_lock:
            d.access.import_state(access_state)
            for tenant, creds in access_state.items():
                if tenant not in d.client_table:
                    d.client_table.add(tenant)
                entry = d.client_table.get(tenant)
                entry.password_levels = [
                    PrivacyLevel.coerce(level) for _, _, level in creds
                ]

    def tenants(self) -> list[str]:
        return [entry.name for entry in self.distributor.client_table]

    # -- shard inventory ---------------------------------------------------

    def files(self) -> list[str]:
        """Every fleet key (``tenant/filename``) stored on this shard."""
        d = self.distributor
        with d.op_lock:
            out: list[str] = []
            for entry in d.client_table:
                out.extend(entry.filenames())
            return sorted(out)

    def file_bytes(self, refs) -> int:
        """Logical byte count of one file from its chunk refs."""
        d = self.distributor
        total = 0
        for ref in refs:
            entry = d.chunk_table.get(ref.chunk_index)
            state = d._chunk_state.get(entry.virtual_id)
            if state is None:
                # Quarantined chunk (unknown codec): the raw packed tuple
                # still records orig_len at index 5 -- keep quota math alive.
                packed = d._codec_quarantine.get(entry.virtual_id)
                orig_len = int(packed[5]) if packed is not None else 0
            else:
                orig_len = state.stripe.orig_len
            total += orig_len - len(entry.misleading_positions)
        return total

    def tenant_usage(self) -> dict[str, dict[str, int]]:
        """Per-tenant ``{"files": n, "bytes": n}`` for quota accounting."""
        d = self.distributor
        with d.op_lock:
            usage: dict[str, dict[str, int]] = {}
            for entry in d.client_table:
                names = entry.filenames()
                usage[entry.name] = {
                    "files": len(names),
                    "bytes": sum(
                        self.file_bytes(entry.refs_for_file(name))
                        for name in names
                    ),
                }
            return usage

    def stats(self) -> dict[str, int]:
        d = self.distributor
        with d.op_lock:
            return {
                "files": sum(len(e.filenames()) for e in d.client_table),
                "chunks": len(d.chunk_table),
                "tenants": len(d.client_table),
            }

    def has_file(self, key: str) -> bool:
        tenant, _ = split_fleet_key(key)
        d = self.distributor
        with d.op_lock:
            if tenant not in d.client_table:
                return False
            return key in d.client_table.get(tenant).filenames()

    # -- migration service ops (no tenant password involved) ----------------

    def export_file(self, key: str) -> tuple[bytes, PrivacyLevel, float, str]:
        """Read one file out for migration: (data, level, fraction, codec).

        Uses the same internal surface the journal-recovery and update
        paths use: refs resolve chunks, :meth:`_fetch_chunk_payload`
        reconstructs each (RAID failover included), and the misleading
        budget is re-derived from the stored positions the way
        ``update_chunk`` does, so the re-upload at the destination carries
        the same privacy posture.  The codec label travels too, so a
        migrated file keeps its erasure codec (raid-family files re-pick
        a stripe width from the destination's fleet).
        """
        tenant, _ = split_fleet_key(key)
        d = self.distributor
        with d.op_lock:
            refs = sorted(
                d.client_table.get(tenant).refs_for_file(key),
                key=lambda r: r.serial,
            )
            level = refs[0].privacy_level
            fraction = 0.0
            codec = ""
            chunks = []
            for ref in refs:
                entry = d.chunk_table.get(ref.chunk_index)
                state = d._chunk_state_for(entry, key)
                if not codec:
                    codec = state.stripe.codec
                if entry.misleading_positions:
                    fraction = max(
                        fraction,
                        len(entry.misleading_positions)
                        / max(
                            1,
                            state.stripe.orig_len
                            - len(entry.misleading_positions),
                        ),
                    )
                chunks.append(
                    chunking.Chunk(
                        serial=ref.serial,
                        level=ref.privacy_level,
                        payload=d._fetch_chunk_payload(entry),
                    )
                )
            return chunking.join(chunks), level, fraction, codec

    def import_file(
        self,
        key: str,
        data: bytes,
        level: PrivacyLevel,
        misleading_fraction: float = 0.0,
        codec: str | None = None,
    ) -> None:
        """Store a migrated file (journaled via the shard's own journal)."""
        tenant, _ = split_fleet_key(key)
        self.distributor._upload_file_pipelined(
            tenant, PrivacyLevel.coerce(level), key, data,
            None, None, codec or None, misleading_fraction, False,
        )

    def service_remove(self, key: str) -> None:
        """Remove a migrated-away file (journaled, no password)."""
        tenant, _ = split_fleet_key(key)
        d = self.distributor
        with d.op_lock:
            entry = d.client_table.get(tenant)
            refs = entry.refs_for_file(key)
            d._remove_refs(tenant, entry, key, refs)
