"""Per-shard health verdicts driving the gateway's degraded fleet mode.

A :class:`ShardHealthTracker` applies the :class:`~repro.health.monitor.HealthMonitor`
evidence model one level up the stack: instead of judging physical
providers from distributor traffic, it judges whole *shards* from the
gateway's data-path outcomes.  The verdict vocabulary is shared
(:class:`~repro.health.monitor.HealthState`), and so are the knobs -- an
error-rate EWMA turns a shard SUSPECT, enough consecutive failures turn it
DOWN.

The consequence differs, though: a sick provider is routed *around* by
placement, but a sick shard owns a key range no other shard can serve
writes for.  So degradation is asymmetric -- writes to a SUSPECT/DOWN
shard fail fast with :class:`~repro.core.errors.ShardUnavailable` (the
caller gets a typed verdict in microseconds instead of a timeout), while
reads stay alive through the gateway's ``_locate`` fan-out.  Recovery is
half-open: every ``retry_interval`` seconds one trial write is admitted,
and its success flips the shard back to HEALTHY.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.health.monitor import HealthState
from repro.obs.metrics import MetricsRegistry, get_metrics

__all__ = ["ShardHealth", "ShardHealthTracker"]


@dataclass
class ShardHealth:
    """Mutable evidence record for one shard."""

    shard_id: str
    error_ewma: float = 0.0
    consecutive_failures: int = 0
    marked_down: bool = False
    last_trial_at: float = field(default=float("-inf"))


class ShardHealthTracker:
    """EWMA + consecutive-failure shard verdicts with half-open recovery."""

    def __init__(
        self,
        *,
        ewma_alpha: float = 0.3,
        suspect_threshold: float = 0.5,
        down_after: int = 3,
        retry_interval: float = 1.0,
        time_fn=time.monotonic,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError(f"ewma_alpha must be in (0, 1], got {ewma_alpha}")
        if not 0.0 < suspect_threshold <= 1.0:
            raise ValueError(
                f"suspect_threshold must be in (0, 1], got {suspect_threshold}"
            )
        if down_after < 1:
            raise ValueError(f"down_after must be >= 1, got {down_after}")
        if retry_interval < 0:
            raise ValueError(
                f"retry_interval must be >= 0, got {retry_interval}"
            )
        self.ewma_alpha = ewma_alpha
        self.suspect_threshold = suspect_threshold
        self.down_after = down_after
        self.retry_interval = retry_interval
        self._time = time_fn
        self.metrics = metrics if metrics is not None else get_metrics()
        self._lock = threading.RLock()
        self._records: dict[str, ShardHealth] = {}

    def _record(self, shard_id: str) -> ShardHealth:
        record = self._records.get(shard_id)
        if record is None:
            record = self._records[shard_id] = ShardHealth(shard_id)
        return record

    # -- evidence (fed by gateway data-path outcomes) ----------------------

    def record_success(self, shard_id: str) -> None:
        with self._lock:
            record = self._record(shard_id)
            was_degraded = record.marked_down or (
                record.error_ewma >= self.suspect_threshold
            )
            record.consecutive_failures = 0
            record.marked_down = False
            record.error_ewma *= 1.0 - self.ewma_alpha
            if was_degraded and record.error_ewma < self.suspect_threshold:
                self.metrics.counter(
                    "fleet_shard_recovered_total", shard=shard_id
                ).inc()

    def record_failure(self, shard_id: str) -> None:
        with self._lock:
            record = self._record(shard_id)
            record.error_ewma = (
                record.error_ewma * (1.0 - self.ewma_alpha) + self.ewma_alpha
            )
            record.consecutive_failures += 1
            if (
                record.consecutive_failures >= self.down_after
                and not record.marked_down
            ):
                record.marked_down = True
                self.metrics.counter(
                    "fleet_shard_marked_down_total", shard=shard_id
                ).inc()

    # -- verdicts ----------------------------------------------------------

    def state(self, shard_id: str) -> HealthState:
        with self._lock:
            record = self._records.get(shard_id)
            if record is None:
                return HealthState.HEALTHY
            if record.marked_down:
                return HealthState.DOWN
            if record.error_ewma >= self.suspect_threshold:
                return HealthState.SUSPECT
            return HealthState.HEALTHY

    def allow_write(self, shard_id: str) -> bool:
        """Admit a write?  HEALTHY always; degraded shards get one trial
        write per ``retry_interval`` (half-open) so recovery is automatic --
        everything else should fail fast with ``ShardUnavailable``.
        """
        with self._lock:
            if self.state(shard_id) is HealthState.HEALTHY:
                return True
            record = self._record(shard_id)
            now = self._time()
            if now - record.last_trial_at >= self.retry_interval:
                record.last_trial_at = now
                return True
            return False

    def states(self) -> dict[str, HealthState]:
        with self._lock:
            return {shard_id: self.state(shard_id) for shard_id in self._records}
