"""Tenant-key routing over the Chord ring.

The fleet partitions the ⟨tenant, filename⟩ namespace: the routing key is
the string ``"tenant/filename"``, hashed onto the identifier circle, owned
by the shard that is its successor (Section IV-C's "CHORD like hash table
that will map each pair to a provider", lifted one level up: the nodes are
metadata shards, not storage providers).
"""

from __future__ import annotations

from repro.core.errors import DHTError, FleetError
from repro.dht.chord import ChordRing
from repro.obs.metrics import MetricsRegistry, get_metrics

#: Routing-hop histogram buckets: a fleet has tens of shards, not millions
#: of nodes, so single-digit hop counts are the whole story.
HOP_BUCKETS = (0.0, 1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0)


def validate_tenant(tenant: str) -> str:
    """A tenant name must be a non-empty single path segment."""
    if not tenant or "/" in tenant:
        raise FleetError(
            f"tenant name must be non-empty and contain no '/', got {tenant!r}"
        )
    return tenant


def fleet_key(tenant: str, filename: str) -> str:
    """The fleet-wide routing key for one tenant file.

    This exact string is also the *filename* inside the owning shard's
    distributor, so journals, audit records and provider object metadata
    carry the tenant namespace end-to-end.
    """
    validate_tenant(tenant)
    if not filename:
        raise FleetError("filename must be non-empty")
    return f"{tenant}/{filename}"


def split_fleet_key(key: str) -> tuple[str, str]:
    """Inverse of :func:`fleet_key`."""
    tenant, sep, filename = key.partition("/")
    if not sep or not tenant or not filename:
        raise FleetError(f"not a tenant/filename key: {key!r}")
    return tenant, filename


class FleetRouter:
    """Shard membership + key routing, with hop accounting.

    Stateless beyond ring membership: given the same member set, any
    router instance routes any key identically (the property the
    stateless-gateway design rests on).
    """

    def __init__(
        self,
        m_bits: int = 32,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.ring = ChordRing(m_bits=m_bits)
        self.metrics = metrics if metrics is not None else get_metrics()

    # -- membership --------------------------------------------------------

    def add_shard(self, shard_id: str) -> None:
        self.ring.join(shard_id)

    def remove_shard(self, shard_id: str) -> None:
        self.ring.leave(shard_id)

    @property
    def shard_ids(self) -> list[str]:
        return self.ring.node_names

    def __len__(self) -> int:
        return len(self.ring)

    # -- routing -----------------------------------------------------------

    def route(self, key: str) -> str:
        """The shard id owning *key*, recording the Chord hop count."""
        if len(self.ring) == 0:
            raise FleetError("no shards in the fleet")
        try:
            result = self.ring.lookup(key)
        except DHTError as exc:
            raise FleetError(f"routing failed for {key!r}: {exc}") from exc
        self.metrics.histogram(
            "fleet_routing_hops", buckets=HOP_BUCKETS
        ).observe(result.hops)
        return result.owner

    def owner(self, key: str) -> str:
        """Authoritative owner of *key* (no hop accounting)."""
        return self.ring.owner(key)

    def owns(self, shard_id: str, key: str) -> bool:
        return self.ring.owns(shard_id, key)
